//! A week in the life of a fault tolerant network — under five weathers.
//!
//! The paper's opening motivation — "systems whose parts are prone to
//! sporadic failures" — as a discrete simulation, now driven by the
//! resilience engine's pluggable failure scenarios: independent
//! Bernoulli coin flips (the benign baseline), correlated regional
//! outages, adversarial replay of the construction's own witness fault
//! sets, failure bursts with slow repair, and a scripted maintenance
//! trace. The same process seed drives every (scenario, budget) cell;
//! for the budget-independent scenarios (Bernoulli, regional) that makes
//! the budget comparison fully paired — one fault trajectory faced by
//! every spanner — while the replay/burst/trace processes scale their
//! adversity with `f` by design.
//!
//! Under the hood every simulation step advances one epoch session of
//! the concurrent serving layer by an O(Δ) delta (the spanner is sealed
//! once, each step applies only the components that changed state,
//! every query of the step is costed against the step's immutable fault
//! view); the epilogue drives that API directly — an `EpochServer` over
//! the reloaded artifact, stepped window to window by `EpochDelta`s.
//!
//! ```text
//! cargo run --release --example failure_timeline
//! ```

use std::sync::Arc;
use vft_spanner::prelude::*;

fn scenario_process(
    name: &str,
    g: &Graph,
    ft: &FtSpanner,
    f: usize,
    steps: usize,
) -> Box<dyn FailureProcess> {
    match name {
        "independent-bernoulli" => Box::new(IndependentBernoulli {
            failure_probability: 0.02,
            repair_probability: 0.25,
        }),
        "correlated-regional" => {
            Box::new(CorrelatedRegional::new(g, FaultModel::Vertex, 1, 0.04, 0.3))
        }
        "witness-replay" => Box::new(AdversarialWitnessReplay::from_witnesses(ft, 5)),
        "burst-cascade" => Box::new(BurstCascade::new(0.03, 2 * f + 1, 0.1)),
        // Rolling maintenance window: exactly f routers down at a time.
        "trace" => Box::new(Trace::new(
            (0..steps)
                .map(|t| (0..f).map(|i| (t / 4 + i) % g.node_count()).collect())
                .collect(),
        )),
        other => unreachable!("unknown scenario {other}"),
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(365);
    let g = generators::random_geometric(80, 0.3, &mut rng);
    let mask = FaultMask::for_graph(&g);
    assert!(bfs::is_connected(&g, &mask));
    println!(
        "network: {} routers, {} links; one paired fault trajectory per scenario",
        g.node_count(),
        g.edge_count()
    );
    let config = ScenarioConfig {
        steps: 400,
        queries_per_step: 10,
        model: FaultModel::Vertex,
        ..ScenarioConfig::default()
    };
    let budgets = [0usize, 1, 2, 3];
    let spanners: Vec<FtSpanner> = budgets
        .iter()
        .map(|f| FtGreedy::new(&g, 3).faults(*f).run())
        .collect();
    for scenario in [
        "independent-bernoulli",
        "correlated-regional",
        "witness-replay",
        "burst-cascade",
        "trace",
    ] {
        println!();
        println!("=== scenario: {scenario} ===");
        println!(
            "  built for | links | in-budget ticks | peak down | violations | in-budget hit | overall hit | worst stretch"
        );
        println!(
            "  ----------|-------|-----------------|-----------|------------|---------------|-------------|--------------"
        );
        for (f, ft) in budgets.iter().zip(&spanners) {
            let mut process = scenario_process(scenario, &g, ft, *f, config.steps);
            // Same seed for every cell: paired comparison.
            let outcome =
                run_scenario(&g, ft.spanner().clone(), *f, &config, process.as_mut(), 777);
            assert_eq!(
                outcome.contract_violations, 0,
                "{scenario}: an in-budget query went unserved — the contract is broken"
            );
            println!(
                "  f = {f}     | {:>5} | {:>11}/{:<3} | {:>9} | {:>10} | {:>12.1}% | {:>10.1}% | {:.3}",
                ft.spanner().edge_count(),
                outcome.steps_within_budget,
                outcome.steps,
                outcome.peak_failures,
                outcome.contract_violations,
                100.0 * outcome.in_budget_hit_rate(),
                100.0 * outcome.overall_hit_rate(),
                outcome.worst_stretch_within_budget,
            );
        }
    }
    println!();
    println!("reading: whatever the weather — independent flips, regional outages,");
    println!("the construction's own recorded witness sets, bursts, or a scripted");
    println!("maintenance trace — queries issued while at most f components are down");
    println!("are always served within stretch 3 (0 violations, 100% in-budget hit).");
    println!("The overall hit rate is the graceful-degradation story: it counts the");
    println!("over-budget steps too, where the contract is suspended and bigger");
    println!("budgets simply keep more of the network reachable.");

    // The serving API those tables ran on, driven directly — through
    // the shipped path: freeze the f = 2 build, persist it in the
    // versioned binary format, reload it as a serving replica would,
    // then open one epoch per maintenance window and serve batches.
    let ft = &spanners[2];
    let bytes = ft.freeze(&g).encode();
    // Per-process filename: concurrent runs (or a stale file owned by
    // another user of a shared temp dir) must not collide.
    let artifact_path =
        std::env::temp_dir().join(format!("failure_timeline-{}.vfts", std::process::id()));
    std::fs::write(&artifact_path, &bytes).expect("write artifact");
    let artifact = Arc::new(
        FrozenSpanner::decode(&std::fs::read(&artifact_path).expect("read artifact back"))
            .expect("shipped artifact must decode"),
    );
    println!();
    println!(
        "sealed the f = 2 build into {} ({} bytes); serving from the reloaded copy",
        artifact_path.display(),
        bytes.len()
    );
    let server = EpochServer::new(artifact);
    let mut session = server.epoch_clear();
    let mut answered = 0usize;
    let mut previous: Option<(usize, usize)> = None;
    let mut delta = EpochDelta::new();
    for window_start in (0..g.node_count()).step_by(13) {
        // Advance the session by what *changed*: yesterday's window
        // comes back up, today's goes down — 4 delta operations per
        // step, however many routers the network has.
        let window = (window_start, (window_start + 1) % g.node_count());
        delta.clear();
        if let Some((a, b)) = previous {
            delta
                .restore_vertex(NodeId::new(a))
                .restore_vertex(NodeId::new(b));
        }
        delta
            .fault_vertex(NodeId::new(window.0))
            .fault_vertex(NodeId::new(window.1));
        session.advance(&delta);
        previous = Some(window);
        let pairs: Vec<(NodeId, NodeId)> = (0..g.node_count())
            .filter(|v| *v != window_start && *v != (window_start + 1) % g.node_count())
            .map(|v| (NodeId::new(v), NodeId::new((v + 5) % g.node_count())))
            .filter(|(u, v)| {
                u != v
                    && v.index() != window_start
                    && v.index() != (window_start + 1) % g.node_count()
            })
            .collect();
        let answers = session.route_batch(&pairs);
        assert!(
            answers.iter().all(|a| a.is_ok()),
            "two faults are within the f = 2 budget: every live pair is served"
        );
        answered += answers.len();
    }
    let stats = server.stats();
    println!();
    println!(
        "epilogue: {answered} routes served across {} epochs from the artifact file — \
no reconstruction, {} delta operations total (O(changes) per window, not O(n))",
        stats.epochs_opened, stats.delta_component_ops
    );
}
