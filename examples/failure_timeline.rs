//! A week in the life of a fault tolerant network.
//!
//! The paper's opening motivation — "systems whose parts are prone to
//! sporadic failures" — as a discrete simulation: routers fail and get
//! repaired over time while traffic keeps flowing over a static spanner.
//! We compare spanners built for different fault budgets under the same
//! failure process.
//!
//! ```text
//! cargo run --release --example failure_timeline
//! ```

use vft_spanner::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(365);
    let g = generators::random_geometric(80, 0.3, &mut rng);
    let mask = FaultMask::for_graph(&g);
    assert!(bfs::is_connected(&g, &mask));
    println!(
        "network: {} routers, {} links; failure process: 2% fail rate, 25% repair rate per tick",
        g.node_count(),
        g.edge_count()
    );
    println!();
    println!("  built for | links | in-budget ticks | peak down | contract violations | hit rate | worst stretch");
    println!("  ----------|-------|-----------------|-----------|---------------------|----------|--------------");
    for f in 0..=3usize {
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let links = ft.spanner().edge_count();
        let mut sim_rng = StdRng::seed_from_u64(777); // same process for all f
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            f,
            SimulationConfig {
                steps: 400,
                failure_probability: 0.02,
                repair_probability: 0.25,
                queries_per_step: 10,
                model: FaultModel::Vertex,
            },
            &mut sim_rng,
        );
        println!(
            "  f = {f}     | {links:>5} | {:>11}/{:<3} | {:>9} | {:>19} | {:>7.1}% | {:.3}",
            outcome.steps_within_budget,
            outcome.steps,
            outcome.peak_failures,
            outcome.contract_violations,
            100.0 * outcome.contract_hit_rate(),
            outcome.worst_stretch_within_budget,
        );
    }
    println!();
    println!("reading: while simultaneous failures stay within the budget the spanner");
    println!("was built for, the contract (connected + stretch <= 3) never breaks —");
    println!("violations only appear for budgets smaller than the failure process's");
    println!("typical concurrency. Peak concurrency here exceeds every budget, so the");
    println!("hit-rate column shows how gracefully each spanner degrades beyond it.");
}
