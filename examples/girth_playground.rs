//! The extremal function `b(n, k)` made tangible.
//!
//! Theorem 1's size bound is phrased through `b(n, k)`, the maximum edge
//! count at girth > k. This example builds the known witnesses (balanced
//! bicliques, projective-plane incidence graphs, cages, deletion-method
//! graphs) and lines their sizes up against the Moore upper bound.
//!
//! ```text
//! cargo run --release --example girth_playground
//! ```

use spanner_extremal::high_girth::high_girth_graph;
use spanner_extremal::moore::moore_bound;
use spanner_extremal::projective;
use vft_spanner::prelude::*;

fn show(name: &str, g: &Graph, girth_above: usize) {
    let mask = FaultMask::for_graph(g);
    let girth = girth::girth(g, &mask);
    let bound = moore_bound(g.node_count() as f64, girth_above as u64);
    println!(
        "  {name:<28} n={:>4}  m={:>5}  girth={:<8} moore(n,{girth_above})={:<8.0} fill={:>5.1}%",
        g.node_count(),
        g.edge_count(),
        girth.map_or("none".to_string(), |v| v.to_string()),
        bound,
        100.0 * g.edge_count() as f64 / bound,
    );
    assert!(girth::has_girth_greater_than(g, &mask, girth_above));
}

fn main() {
    println!("girth > 3 (triangle-free; Mantel says n^2/4 is exact):");
    show(
        "K_{16,16} (extremal)",
        &generators::complete_bipartite(16, 16),
        3,
    );

    println!();
    println!("girth > 4 and > 5 (Moore: ~n^{{3/2}}; projective planes meet it):");
    show("Petersen (3,5)-cage", &generators::petersen(), 4);
    show("Heawood = PG(2,2)", &projective::heawood(), 5);
    for q in [3u64, 5, 7] {
        let g = projective::incidence_graph(q).expect("prime");
        show(&format!("PG(2,{q}) incidence"), &g, 5);
    }

    println!();
    println!("arbitrary girth via the Erdős deletion method:");
    let mut rng = StdRng::seed_from_u64(1);
    for girth_above in [6usize, 8, 10] {
        let g = high_girth_graph(200, girth_above, &mut rng);
        show(
            &format!("deletion method, girth>{girth_above}"),
            &g,
            girth_above,
        );
    }

    println!();
    println!("these are the graphs Theorem 1's bound f^2 * b(n/f, k+1) is made of;");
    println!("the lower-bound family (see lower_bound_explorer) blows them up by f/2+1.");
}
