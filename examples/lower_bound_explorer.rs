//! Why you cannot do better: exploring the lower-bound family.
//!
//! The paper's Theorem 1 is *tight* for vertex faults because of one graph
//! family: blow every vertex of a high-girth graph into f/2+1 copies and
//! every edge into a biclique. Each edge of the result is the unique
//! survivor of its base edge under some legal fault set — so every
//! fault tolerant spanner must keep all of them. This example builds the
//! family, demonstrates per-edge criticality, and shows the greedy
//! (correctly) refusing to drop anything.
//!
//! ```text
//! cargo run --release --example lower_bound_explorer
//! ```

use spanner_extremal::lower_bound::{biclique_blowup, max_copies_for_fault_budget};
use spanner_extremal::projective;
use vft_spanner::prelude::*;

fn main() {
    let base = projective::heawood();
    let base_mask = FaultMask::for_graph(&base);
    println!(
        "base graph: Heawood (the (3,6)-cage): {} nodes, {} edges, girth {:?}",
        base.node_count(),
        base.edge_count(),
        girth::girth(&base, &base_mask)
    );

    for f in [2usize, 4] {
        let t = max_copies_for_fault_budget(f);
        let blow = biclique_blowup(&base, t);
        let g = blow.graph();
        println!();
        println!(
            "f = {f}: blow-up with t = {t} copies -> {} nodes, {} edges",
            g.node_count(),
            g.edge_count()
        );

        // Pick one edge and show its criticality certificate.
        let e = EdgeId::new(0);
        let (u, v) = g.endpoints(e);
        let faults = blow.critical_fault_set(e);
        println!(
            "  edge {e} = ({u}, {v}) is critical: fault {:?}",
            faults.iter().map(|n| n.to_string()).collect::<Vec<_>>()
        );
        let mut mask = FaultMask::for_graph(g);
        for x in &faults {
            mask.fault_vertex(*x);
        }
        mask.fault_edge(e);
        let detour = dijkstra::dist(g, u, v, &mask);
        println!(
            "  with those {} faults and the edge itself removed, the detour is {} hops (stretch target was 3)",
            faults.len(),
            detour
        );

        // The greedy keeps everything.
        let ft = FtGreedy::new(g, 3).faults(f).run();
        println!(
            "  FT-greedy at budget {f} keeps {}/{} edges ({:.0}% retention)",
            ft.spanner().edge_count(),
            g.edge_count(),
            100.0 * ft.spanner().retention(g)
        );
        assert_eq!(ft.spanner().edge_count(), g.edge_count());

        // And the family still has a small *edge* blocking set — the
        // paper's point about why EFT upper bounds can't be improved by
        // blocking sets alone.
        let b = BlockingSet::from_edge_pairs(blow.edge_blocking_set());
        let report = verify_blocking_set(g, &b, 5, 1_000_000);
        println!(
            "  edge blocking set: {} pairs (f*|E| = {}), blocks all {} short cycles: {}",
            b.len(),
            f * g.edge_count(),
            report.cycles_checked,
            if report.is_valid() { "yes" } else { "NO" }
        );
    }
}
