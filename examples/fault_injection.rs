//! Scenario: link failures in a data-center fabric (edge fault model).
//!
//! A 2D grid ("row/column switches") plus random shortcut links models a
//! fabric. We build an EFT spanner with the paper's greedy and with the
//! classic union-of-spanners baseline, then inject random link-failure
//! bursts and compare how route quality degrades.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use vft_spanner::prelude::*;

/// Grid + random shortcuts: a fabric-like topology.
fn fabric(rows: usize, cols: usize, shortcuts: usize, rng: &mut StdRng) -> Graph {
    let base = generators::grid(rows, cols);
    let n = base.node_count();
    let mut g = Graph::new(n);
    for (_, e) in base.edges() {
        g.add_edge(e.u(), e.v(), e.weight());
    }
    let mut added = 0;
    while added < shortcuts {
        let a = NodeId::new(rng.gen_range(0..n));
        let b = NodeId::new(rng.gen_range(0..n));
        if a != b && g.contains_edge(a, b).is_none() {
            g.add_edge(a, b, Weight::new(2).unwrap());
            added += 1;
        }
    }
    g
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = fabric(8, 8, 40, &mut rng);
    println!(
        "fabric: {} switches, {} links ({} grid + 40 shortcuts)",
        g.node_count(),
        g.edge_count(),
        g.edge_count() - 40
    );

    let stretch = 3u64;
    let f = 2usize;

    let greedy = FtGreedy::new(&g, stretch)
        .faults(f)
        .model(FaultModel::Edge)
        .run();
    let union = union_eft_spanner(&g, stretch, f);
    println!(
        "EFT constructions (f={f}, stretch {stretch}): greedy keeps {}, union baseline keeps {}",
        greedy.spanner().edge_count(),
        union.edge_count()
    );

    // Inject 200 random bursts of f link failures into both.
    println!();
    println!("failure drill: 200 random bursts of {f} link failures");
    for (name, spanner) in [("greedy", greedy.spanner()), ("union ", &union)] {
        let mut worst = 0.0f64;
        let mut violations = 0usize;
        for trial in 0..200u64 {
            use rand::seq::SliceRandom;
            let mut r = StdRng::seed_from_u64(999 + trial);
            let mut pool: Vec<EdgeId> = g.edge_ids().collect();
            pool.shuffle(&mut r);
            let faults = FaultSet::edges(pool[..f].iter().copied());
            let report = verify_under_faults(&g, spanner, &faults);
            if !report.satisfied {
                violations += 1;
            } else if report.max_stretch > worst {
                worst = report.max_stretch;
            }
        }
        println!("  {name}: worst stretch {worst:.3} (target {stretch}), violations {violations}");
        assert_eq!(violations, 0);
    }

    // The greedy's own adversarial fault sets — the hardest cases it saw.
    let adversarial = verify_ft_adversarial(&g, &greedy);
    println!(
        "adversarial replay on greedy: {} witness fault sets, {} violations",
        adversarial.trials, adversarial.violations
    );
    assert!(adversarial.satisfied());
}
