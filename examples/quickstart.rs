//! 60-second tour: build a fault tolerant spanner, break it, watch it hold.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vft_spanner::prelude::*;

fn main() {
    // A dense random network: 60 nodes, ~530 links.
    let mut rng = StdRng::seed_from_u64(2019);
    let g = generators::erdos_renyi(60, 0.3, &mut rng);
    println!(
        "input graph:   {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );

    // The paper's Algorithm 1: a 2-vertex-fault-tolerant 3-spanner.
    let f = 2;
    let ft = FtGreedy::new(&g, 3).faults(f).run();
    let h = ft.spanner();
    println!(
        "2-VFT 3-spanner: {} edges ({:.1}% of the input) — oracle did {} shortest-path queries",
        h.edge_count(),
        100.0 * h.retention(&g),
        ft.stats().shortest_path_queries,
    );

    // Compare with the non-fault-tolerant greedy.
    let plain = greedy_spanner(&g, 3);
    println!(
        "plain 3-spanner: {} edges (fault tolerance costs x{:.2})",
        plain.edge_count(),
        h.edge_count() as f64 / plain.edge_count() as f64
    );

    // Now break things: every pair of vertices, exhaustively.
    let audit = verify_ft_exhaustive(&g, h, f, FaultModel::Vertex);
    println!(
        "exhaustive audit: {} fault sets checked, {} violations",
        audit.trials, audit.violations
    );
    assert!(audit.satisfied());

    // The Lemma 3 blocking set falls out of the construction for free.
    let b = BlockingSet::from_witnesses(&ft);
    println!(
        "Lemma 3 blocking set: {} pairs (bound: f*|E(H)| = {})",
        b.len(),
        f * h.edge_count()
    );
    let report = verify_blocking_set(h.graph(), &b, 4, 1_000_000);
    println!(
        "  blocks all {} cycles of <= k+1 edges: {}",
        report.cycles_checked,
        if report.is_valid() { "yes" } else { "NO" }
    );
}
