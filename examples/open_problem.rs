//! The paper's open problem, live: how expensive is exactness?
//!
//! FT-greedy needs an oracle for "can ≤ f faults stretch this edge?" — a
//! length-bounded cut problem. This example races the three exact oracles
//! and the polynomial heuristic as `f` grows, and shows where the flow
//! shortcut bites.
//!
//! ```text
//! cargo run --release --example open_problem
//! ```

use std::time::Instant;
use vft_spanner::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2718);
    let g = generators::erdos_renyi(50, 0.25, &mut rng);
    println!(
        "input: G(50, 0.25) with {} edges; stretch 3; growing fault budget",
        g.edge_count()
    );
    println!();
    println!(
        "  f | exact search nodes | exact ms | heuristic ms | sizes (exact/heur) | heur audit"
    );
    println!(
        "  --|--------------------|----------|--------------|--------------------|-----------"
    );
    for f in 0..=5usize {
        let t0 = Instant::now();
        let exact = FtGreedy::new(&g, 3).faults(f).run();
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let heur = FtGreedy::new(&g, 3)
            .faults(f)
            .oracle(OracleKind::Heuristic)
            .run();
        let heur_ms = t1.elapsed().as_secs_f64() * 1e3;
        let mut audit_rng = StdRng::seed_from_u64(99 + f as u64);
        let audit = verify_ft_sampled(
            &g,
            heur.spanner(),
            f,
            FaultModel::Vertex,
            30,
            &mut audit_rng,
        );
        println!(
            "  {f} | {:>18} | {:>8.2} | {:>12.2} | {:>9}/{:<8} | {} viol/30",
            exact.stats().nodes_explored,
            exact_ms,
            heur_ms,
            exact.spanner().edge_count(),
            heur.spanner().edge_count(),
            audit.violations,
        );
    }
    println!();
    println!("what to look for:");
    println!("  • exact search nodes keep growing with f — the exponential the paper");
    println!("    calls out as its open problem (pruning helps, the shape remains);");
    println!("  • the heuristic stays flat and usually matches the exact size, but");
    println!("    nothing guarantees its output is fault tolerant (audit column!);");
    println!("  • the built-in min-cut shortcut already answers every query whose pair");
    println!("    is only f-connected in H — the hard residue is pairs that stay");
    println!("    (f+1)-connected yet lose all their SHORT paths to some fault set.");

    // Show one hard residual query explicitly.
    let ft = FtGreedy::new(&g, 3).faults(3).run();
    let stats = ft.stats();
    println!();
    println!(
        "at f=3 the construction answered {} queries by min-cut shortcut and {} by search ({} nodes).",
        stats.cut_shortcuts,
        ft.spanner().edge_count() - stats.cut_shortcuts as usize,
        stats.nodes_explored
    );
}
