//! Scenario: a metro backbone that must survive router failures.
//!
//! A geometric random graph stands in for a physical fiber layout (edge
//! weights = scaled Euclidean distances). We size VFT spanners at several
//! fault budgets, run a static failure drill (knock out random routers,
//! measure the worst route inflation), put the sized spanner through
//! the resilience engine's live drills — a correlated regional blackout
//! and an adversarial replay of the construction's own witness fault
//! sets — and finally serve query traffic from the frozen artifact
//! through a shared `EpochServer`: one epoch session per outage,
//! batches answered bit-identically to the primitive one-pair-at-a-time
//! `route_one` reference.
//!
//! ```text
//! cargo run --release --example network_resilience
//! ```

use std::sync::Arc;
use vft_spanner::graph::{DijkstraEngine, PathScratch};
use vft_spanner::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    // 150 routers scattered in a unit square, links within radius 0.22.
    let g = generators::random_geometric(150, 0.22, &mut rng);
    let mask = FaultMask::for_graph(&g);
    assert!(bfs::is_connected(&g, &mask), "topology must be connected");
    println!(
        "backbone: {} routers, {} candidate fiber links, total length {}",
        g.node_count(),
        g.edge_count(),
        g.total_weight()
    );
    println!();
    println!("  f | links kept | % of input | total fiber | drill worst stretch");
    println!("  --|------------|------------|-------------|--------------------");

    let stretch = 3u64;
    for f in 0..=3usize {
        let ft = FtGreedy::new(&g, stretch).faults(f).run();
        let h = ft.spanner();

        // Failure drill: 40 random sets of f routers go dark.
        let mut worst = 0.0f64;
        let mut drill_rng = StdRng::seed_from_u64(1000 + f as u64);
        let audit = verify_ft_sampled(&g, h, f, FaultModel::Vertex, 40, &mut drill_rng);
        assert!(
            audit.satisfied(),
            "f={f}: drill found a violation: {:?}",
            audit.first_violation
        );
        // Re-measure worst stretch over a few drills for reporting.
        for trial in 0..10u64 {
            let mut pool: Vec<NodeId> = g.nodes().collect();
            use rand::seq::SliceRandom;
            let mut r = StdRng::seed_from_u64(5000 + 17 * trial + f as u64);
            pool.shuffle(&mut r);
            let faults = FaultSet::vertices(pool[..f].iter().copied());
            let report = verify_under_faults(&g, h, &faults);
            if report.max_stretch > worst && report.max_stretch.is_finite() {
                worst = report.max_stretch;
            }
        }
        println!(
            "  {f} | {:>10} | {:>9.1}% | {:>11} | {:.3} (target {stretch})",
            h.edge_count(),
            100.0 * h.retention(&g),
            h.graph().total_weight(),
            worst
        );
    }
    println!();
    println!("reading: each +1 fault budget buys survivability for one more");
    println!("simultaneous router loss; Corollary 2 says the cost grows only");
    println!("as f^(1-1/2) = sqrt(f) at stretch 3 — check the 'links kept' column.");

    // Live drills on the f = 2 build: the scenario engine runs a
    // correlated district blackout and then replays the witness fault
    // sets FT-greedy itself recorded (the sharpest in-budget adversary).
    let f = 2usize;
    let ft = FtGreedy::new(&g, stretch).faults(f).run();
    let config = ScenarioConfig {
        steps: 200,
        queries_per_step: 8,
        model: FaultModel::Vertex,
        ..ScenarioConfig::default()
    };
    println!();
    println!(
        "live drills on the f = {f} build ({} links):",
        ft.spanner().edge_count()
    );
    println!();
    let mut regional = CorrelatedRegional::new(&g, FaultModel::Vertex, 1, 0.04, 0.3);
    let blackout = run_scenario(&g, ft.spanner().clone(), f, &config, &mut regional, 4242);
    print!("{}", ScenarioReport::new(f, stretch, &blackout));
    println!();
    let mut replay = AdversarialWitnessReplay::from_witnesses(&ft, 5);
    let adversarial = run_scenario(&g, ft.spanner().clone(), f, &config, &mut replay, 4242);
    print!("{}", ScenarioReport::new(f, stretch, &adversarial));
    assert_eq!(
        adversarial.contract_violations, 0,
        "witness replay stays within budget, so the contract must hold"
    );
    assert_eq!(adversarial.steps_within_budget, adversarial.steps);
    println!();
    println!("reading: the witness replay never leaves the budget (every recorded");
    println!("witness has size <= f), so its violation count must be exactly 0 —");
    println!("the spanner survives the very fault sets that shaped it. The regional");
    println!("blackout does overshoot the budget; there the overall hit rate shows");
    println!("what degradation beyond the contract actually looks like.");

    // Freeze, persist, reload, serve: the construction becomes an
    // immutable artifact, the artifact becomes a file (the versioned
    // binary format of docs/ARTIFACT_FORMAT.md), and the serving side
    // works from the *loaded* copy — exactly what a replica that never
    // ran FT-greedy would do. Each witness outage becomes one epoch
    // session of a shared EpochServer; whole batches are answered
    // identically to the one-pair-at-a-time `route_one` reference,
    // sequential or pooled over the server's worker pool.
    let bytes = ft.freeze(&g).encode();
    // Per-process filename: concurrent runs (or a stale file owned by
    // another user of a shared temp dir) must not collide.
    let artifact_path =
        std::env::temp_dir().join(format!("network_resilience-{}.vfts", std::process::id()));
    std::fs::write(&artifact_path, &bytes).expect("write artifact");
    let shipped = std::fs::read(&artifact_path).expect("read artifact back");
    let artifact = Arc::new(FrozenSpanner::decode(&shipped).expect("shipped artifact must decode"));
    assert_eq!(
        artifact.encode(),
        bytes,
        "decode/encode must round-trip byte-identically"
    );
    println!();
    println!(
        "persisted the frozen artifact to {} ({} bytes) and reloaded it",
        artifact_path.display(),
        bytes.len()
    );
    let server = EpochServer::new(Arc::clone(&artifact)).with_threads(4);
    let (mut engine, mut scratch) = (DijkstraEngine::new(), PathScratch::new());
    let mut served = 0usize;
    let mut epochs = 0usize;
    let mut pair_rng = StdRng::seed_from_u64(99);
    for witness in artifact
        .witnesses()
        .expect("a freshly frozen artifact carries its witnesses")
        .iter()
        .filter(|w| !w.is_empty())
        .take(8)
    {
        let mut session = server.epoch(witness);
        epochs += 1;
        let pairs: Vec<(NodeId, NodeId)> = (0..64)
            .map(|_| loop {
                let u = NodeId::new(pair_rng.gen_range(0..g.node_count()));
                let v = NodeId::new(pair_rng.gen_range(0..g.node_count()));
                let live = |x: &NodeId| !witness.vertex_faults().contains(x);
                if u != v && live(&u) && live(&v) {
                    return (u, v);
                }
            })
            .collect();
        let batched = session.route_batch(&pairs);
        let pooled = session.par_route_batch(&pairs);
        let mut mask = FaultMask::with_capacity(artifact.node_count(), artifact.edge_count());
        artifact.apply_faults(witness, &mut mask);
        let reference: Vec<_> = pairs
            .iter()
            .map(|&(u, v)| route_one(&artifact, &mut engine, &mut scratch, &mask, u, v))
            .collect();
        assert_eq!(batched, reference, "epoch batch diverged from route_one");
        assert_eq!(pooled, reference, "pooled batch diverged from route_one");
        assert!(
            batched.iter().all(|a| a.is_ok()),
            "an in-budget witness epoch must serve every live pair"
        );
        served += batched.len();
    }
    println!();
    println!("loaded-artifact serving: {served} queries over {epochs} witness epochs, batched and");
    println!("pooled answers bit-identical to the single-pair reference (asserted) — served");
    println!("entirely from the reloaded file, without re-running the construction.");
}
