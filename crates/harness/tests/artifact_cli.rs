//! Cross-process determinism of hostile-artifact handling.
//!
//! The decode determinism contract has two legs. The in-process leg
//! (same bytes ⇒ same typed error, three repeated decodes) lives in
//! `spanner_harness::corpus`. This test adds the process-boundary leg:
//! for every committed corpus entry, the `spanner-artifact` binary —
//! a separate process, decoding bytes it did not produce — must report
//! the *same* stable error code the in-process decode produced, as
//! `error[<code>]` plus a remediation hint on stderr with a non-zero
//! exit, and must do so byte-identically across repeated invocations.
//! No hostile input may panic the process.

use spanner_harness::corpus::{decode_outcome, replay_dir, DecodeOutcome};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_spanner-artifact")
}

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(rel)
}

fn inspect(path: &Path) -> Output {
    Command::new(bin())
        .arg("inspect")
        .arg(path)
        .output()
        .expect("spanner-artifact must spawn")
}

/// Extracts the stable code from an `error[<code>]` stderr line.
fn code_from_stderr(stderr: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(stderr);
    let start = text.find("error[")? + "error[".len();
    let end = text[start..].find(']')? + start;
    Some(text[start..end].to_string())
}

#[test]
fn inspect_matches_in_process_codes_deterministically_for_every_corpus_entry() {
    let dir = repo_path("fuzz/corpus");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fuzz/corpus must exist")
        .filter_map(|e| Some(e.ok()?.file_name().to_string_lossy().into_owned()))
        .filter(|n| n.ends_with(".bin"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 30,
        "corpus shrank to {} entries",
        names.len()
    );

    for name in names {
        let path = dir.join(&name);
        let bytes = std::fs::read(&path).unwrap();

        // In-process leg: three decodes, stable outcome (asserted
        // inside decode_outcome).
        let in_process = decode_outcome(&bytes)
            .unwrap_or_else(|why| panic!("{name}: in-process contract violated: {why}"));

        // Process-boundary leg, twice, byte-identical.
        let first = inspect(&path);
        let second = inspect(&path);
        assert_eq!(
            first.stderr, second.stderr,
            "{name}: hostile-input stderr must be byte-identical across runs"
        );
        assert_eq!(first.status.code(), second.status.code());

        // `inspect` speaks VFTSPANR; standalone VFTGRAPH corpus entries
        // are — correctly — a bad-magic rejection for this subcommand,
        // whatever the entry's own expected outcome is. And a
        // routing-only artifact is Rejected in-process (the witness
        // accessor's typed refusal) but inspects cleanly: inspect
        // reports metadata, it does not serve witness queries, and the
        // detached state is printed, not an error.
        let is_graph = bytes.len() >= 8 && &bytes[..8] == b"VFTGRAPH";
        let expected_code = match (&in_process, is_graph) {
            (_, true) => Some("artifact/bad-magic".to_string()),
            (DecodeOutcome::Accepted, false) => None,
            (DecodeOutcome::Rejected("artifact/witnesses-detached"), false) => None,
            (DecodeOutcome::Rejected(code), false) => Some(code.to_string()),
        };
        match expected_code {
            None => assert!(
                first.status.success(),
                "{name}: accepted artifact must inspect cleanly\nstderr: {}",
                String::from_utf8_lossy(&first.stderr)
            ),
            Some(code) => {
                assert!(
                    !first.status.success(),
                    "{name}: hostile artifact must exit non-zero"
                );
                assert_eq!(
                    code_from_stderr(&first.stderr).as_deref(),
                    Some(code.as_str()),
                    "{name}: subprocess code disagrees with in-process decode\nstderr: {}",
                    String::from_utf8_lossy(&first.stderr)
                );
                assert!(
                    String::from_utf8_lossy(&first.stderr).contains("remediation: "),
                    "{name}: hostile rejection must carry a remediation hint"
                );
            }
        }
    }
}

#[test]
fn sharded_cli_surface_round_trips_and_fails_closed() {
    let dir = std::env::temp_dir().join(format!("artifact-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |args: &[&str]| -> Output {
        Command::new(bin())
            .args(args)
            .current_dir(&dir)
            .output()
            .expect("spanner-artifact must spawn")
    };

    // build --shard-witnesses emits a decodable v2 artifact that
    // inspect reports as sharded, with index stats.
    let built = run(&[
        "build",
        "--family",
        "complete",
        "--n",
        "7",
        "--f",
        "1",
        "--shard-witnesses",
        "--out",
        "s.vfts",
    ]);
    assert!(
        built.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&built.stderr)
    );
    let inspected = run(&["inspect", "s.vfts"]);
    assert!(inspected.status.success());
    let report = String::from_utf8_lossy(&inspected.stdout).into_owned();
    assert!(report.contains("(witnesses-sharded)"), "{report}");
    assert!(report.contains("witness-index"), "{report}");
    assert!(report.contains("witness index:"), "{report}");
    assert!(report.contains("sharded per-edge index"), "{report}");

    // migrate --unshard ∘ migrate --shard is the byte identity, and a
    // plain migrate of a sharded artifact preserves the layout.
    assert!(run(&["migrate", "s.vfts", "--out", "u.vfts", "--unshard"])
        .status
        .success());
    assert!(run(&["migrate", "u.vfts", "--out", "s2.vfts", "--shard"])
        .status
        .success());
    let original = std::fs::read(dir.join("s.vfts")).unwrap();
    assert_eq!(
        original,
        std::fs::read(dir.join("s2.vfts")).unwrap(),
        "unshard ∘ shard must be the identity"
    );
    assert!(run(&["migrate", "s.vfts", "--out", "s3.vfts"])
        .status
        .success());
    assert_eq!(
        original,
        std::fs::read(dir.join("s3.vfts")).unwrap(),
        "plain migrate must preserve the sharded layout byte for byte"
    );

    // Both zero-copy and eager serve accept the sharded artifact.
    for extra in [&[][..], &["--in-place"][..]] {
        let mut args = vec!["serve", "s.vfts", "--epochs", "3", "--batch", "8"];
        args.extend_from_slice(extra);
        let served = run(&args);
        assert!(
            served.status.success(),
            "serve {extra:?} stderr: {}",
            String::from_utf8_lossy(&served.stderr)
        );
    }

    // Conflicting flags are a usage error, not a panic or a silent pick.
    let conflict = run(&[
        "build",
        "--detach-witnesses",
        "--shard-witnesses",
        "--out",
        "x.vfts",
    ]);
    assert!(!conflict.status.success());
    assert!(String::from_utf8_lossy(&conflict.stderr).contains("mutually exclusive"));
    let both = run(&["migrate", "s.vfts", "--shard", "--unshard"]);
    assert!(!both.status.success());
    assert!(String::from_utf8_lossy(&both.stderr).contains("mutually exclusive"));

    // Sharding a routing-only artifact is refused with a reason.
    assert!(run(&[
        "build",
        "--family",
        "complete",
        "--n",
        "7",
        "--f",
        "1",
        "--detach-witnesses",
        "--out",
        "d.vfts",
    ])
    .status
    .success());
    let detached = run(&["migrate", "d.vfts", "--out", "ds.vfts", "--shard"]);
    assert!(!detached.status.success());
    assert!(String::from_utf8_lossy(&detached.stderr).contains("witnesses-detached"));

    // A skewed witness index fails closed across the process boundary
    // with the new stable code. The index is canonically the last
    // section and the checksum the 8-byte trailer, so the file's
    // second-to-last u64 is the final index offset: nudge it off the
    // 8-byte grid and reseal the word-wise checksum so only the index
    // is at fault.
    let mut skewed = original.clone();
    let hit = skewed.len() - 16;
    let v = u64::from_le_bytes(skewed[hit..hit + 8].try_into().unwrap());
    skewed[hit..hit + 8].copy_from_slice(&(v + 1).to_le_bytes());
    let seal = spanner_graph::io::binary::fnv1a64_words(&skewed[..skewed.len() - 8]);
    let at = skewed.len() - 8;
    skewed[at..].copy_from_slice(&seal.to_le_bytes());
    std::fs::write(dir.join("skewed.vfts"), &skewed).unwrap();
    let hostile = run(&["inspect", "skewed.vfts"]);
    assert!(!hostile.status.success());
    assert_eq!(
        code_from_stderr(&hostile.stderr).as_deref(),
        Some("artifact/witness-index"),
        "stderr: {}",
        String::from_utf8_lossy(&hostile.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_subcommand_gates_on_corpus_health() {
    // The committed corpus replays clean through the binary.
    let good = Command::new(bin())
        .arg("replay")
        .arg(repo_path("fuzz/corpus"))
        .output()
        .expect("spawn");
    assert!(
        good.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&good.stderr)
    );
    assert!(String::from_utf8_lossy(&good.stdout).contains("replay clean"));

    // A directory with a mislabeled entry fails, loudly.
    let dir = std::env::temp_dir().join(format!("artifact-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("truncation__ok__0000000000000000.bin"),
        b"not an artifact",
    )
    .unwrap();
    let bad = Command::new(bin())
        .arg("replay")
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("MISMATCH"));
    std::fs::remove_dir_all(&dir).ok();

    // And the library-level replay agrees with the binary on the
    // committed corpus (one contract, two consumers).
    let report = replay_dir(&repo_path("fuzz/corpus"), true).unwrap();
    assert!(report.is_clean());
}
