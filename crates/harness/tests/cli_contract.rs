//! The shared CLI contract, pinned for every harness binary.
//!
//! [`spanner_harness::cli`] documents one dialect for all harness
//! binaries: `--help` prints the usage text to **stdout** and exits 0;
//! an unknown flag prints `<bin>: <message>` plus the usage to
//! **stderr** and exits non-zero, with nothing on stdout and no panic.
//! Each binary wires that contract up itself through `cli::run_main`,
//! so a new binary (or a refactored parser) can silently drift — this
//! suite spawns every one of them and checks the observable behavior,
//! not the plumbing.

use std::process::{Command, Output};

/// Every harness binary: (name, path). `env!(CARGO_BIN_EXE_*)` makes
/// cargo build each one before the test runs — a binary missing from
/// this list compiles out of the contract, so add new binaries here.
const BINS: &[(&str, &str)] = &[
    ("coldbench", env!("CARGO_BIN_EXE_coldbench")),
    ("frontierbench", env!("CARGO_BIN_EXE_frontierbench")),
    ("perfbench", env!("CARGO_BIN_EXE_perfbench")),
    ("querybench", env!("CARGO_BIN_EXE_querybench")),
    ("repro", env!("CARGO_BIN_EXE_repro")),
    ("scenarios", env!("CARGO_BIN_EXE_scenarios")),
    ("spanner-artifact", env!("CARGO_BIN_EXE_spanner-artifact")),
    ("witnessbench", env!("CARGO_BIN_EXE_witnessbench")),
];

fn run(path: &str, args: &[&str]) -> Output {
    Command::new(path)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("{path} must spawn: {e}"))
}

#[test]
fn every_binary_prints_usage_on_stdout_for_help_and_exits_zero() {
    for (name, path) in BINS {
        for flag in ["--help", "-h"] {
            let out = run(path, &[flag]);
            assert!(
                out.status.success(),
                "{name} {flag}: help is a successful outcome, got {:?}\nstderr: {}",
                out.status.code(),
                String::from_utf8_lossy(&out.stderr)
            );
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(
                stdout.contains("usage:"),
                "{name} {flag}: usage text must be on stdout, got: {stdout:?}"
            );
            assert!(
                stdout.contains(name),
                "{name} {flag}: usage must name the binary, got: {stdout:?}"
            );
            assert!(
                out.stderr.is_empty(),
                "{name} {flag}: help must not write to stderr: {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
    }
}

#[test]
fn every_binary_rejects_an_unknown_flag_on_stderr_without_panicking() {
    for (name, path) in BINS {
        let out = run(path, &["--definitely-not-a-flag"]);
        assert!(
            !out.status.success(),
            "{name}: an unknown flag must exit non-zero"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.starts_with(&format!("{name}: ")),
            "{name}: diagnostics must lead with the binary name, got: {stderr:?}"
        );
        assert!(
            stderr.contains("usage:"),
            "{name}: a usage reminder must accompany the rejection, got: {stderr:?}"
        );
        assert!(
            !stderr.contains("panicked"),
            "{name}: bad arguments must never panic: {stderr:?}"
        );
        assert!(
            out.stdout.is_empty(),
            "{name}: rejections belong on stderr, stdout got: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn every_bench_binary_rejects_a_check_flag_without_a_value() {
    // The artifact-emitting binaries share `--check PATH`; a dangling
    // `--check` must produce the consistent "needs a value" message.
    for name in [
        "coldbench",
        "perfbench",
        "querybench",
        "scenarios",
        "witnessbench",
    ] {
        let path = BINS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
            .expect("bin listed above");
        let out = run(path, &["--check"]);
        assert!(!out.status.success(), "{name}: dangling --check must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--check") && stderr.contains("needs a value"),
            "{name}: expected the shared needs-a-value diagnostic, got: {stderr:?}"
        );
    }
}
