//! Aligned ASCII tables with CSV export — the output format of every
//! experiment.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A simple rectangular table: title, column headers, string cells.
///
/// # Examples
///
/// ```
/// use spanner_harness::Table;
///
/// let mut t = Table::new("demo", ["x", "y"]);
/// t.row(["1", "2"]);
/// t.row(["10", "20"]);
/// let shown = t.to_string();
/// assert!(shown.contains("demo"));
/// assert!(shown.contains("10"));
/// assert_eq!(t.row_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<T, I, S>(title: T, headers: I) -> Self
    where
        T: Into<String>,
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Renders the table as CSV (headers first; title as a `#` comment).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&csv_line(&self.headers));
        for row in &self.rows {
            out.push_str(&csv_line(row));
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

fn csv_line(cells: &[String]) -> String {
    let escaped: Vec<String> = cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect();
    format!("{}\n", escaped.join(","))
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:>width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.is_infinite() {
        "inf".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new("t", ["a", "long_header"]);
        t.row(["1", "2"]);
        let s = t.to_string();
        assert!(s.contains("| long_header |"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", ["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", ["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn write_csv_round_trip() {
        let mut t = Table::new("t", ["x", "y"]);
        t.row(["1", "2"]);
        let dir = std::env::temp_dir().join("vft_spanner_table_test");
        let path = dir.join("nested").join("t.csv");
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.contains("x,y"));
        assert!(read.contains("1,2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(2.34567), "2.346");
        assert_eq!(fnum(42.5), "42.5");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(f64::INFINITY), "inf");
    }
}
