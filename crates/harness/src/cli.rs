//! Shared command-line plumbing for the harness binaries.
//!
//! Every harness binary (`repro`, `perfbench`, `scenarios`, `querybench`,
//! `spanner-artifact`) speaks the same dialect:
//!
//! * `--help` / `-h` prints the usage text to **stdout** and exits 0
//!   (help is a successful outcome, not an error);
//! * an unknown flag, a flag missing its value, or an unparsable value
//!   prints `<bin>: <message>` plus the usage to **stderr** and exits
//!   non-zero — no panics, no silently applied defaults;
//! * a runtime failure prints `<bin>: <message>` to stderr and exits
//!   non-zero.
//!
//! [`run_main`] packages that contract so each binary's `main` is one
//! call, and the small parsing helpers ([`value_for`], [`parsed_value`])
//! keep the per-flag error messages consistent across binaries.

use std::process::ExitCode;
use std::str::FromStr;

/// What an argument parser decided: run with the parsed configuration,
/// or print help and exit successfully.
#[derive(Debug)]
pub enum Parsed<T> {
    /// Proceed with this configuration.
    Run(T),
    /// The user asked for `--help`.
    Help,
}

/// Drives a binary's `main`: `parse` interprets the raw arguments
/// (returning [`Parsed::Help`] for `--help`, `Err` for bad input), `run`
/// does the work. See the module docs for the exit-code contract.
pub fn run_main<T>(
    bin: &str,
    usage: &str,
    parse: impl FnOnce() -> Result<Parsed<T>, String>,
    run: impl FnOnce(T) -> Result<(), String>,
) -> ExitCode {
    let config = match parse() {
        Ok(Parsed::Run(config)) => config,
        Ok(Parsed::Help) => {
            println!("{usage}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{bin}: {message}");
            eprintln!("{usage}");
            return ExitCode::FAILURE;
        }
    };
    match run(config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{bin}: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag` from the argument stream, with the
/// consistent "needs a value" error when it is absent.
pub fn value_for(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// Pulls and parses the value of `--flag`, with a consistent message
/// naming both the flag and the offending token on failure.
pub fn parsed_value<T: FromStr>(
    it: &mut impl Iterator<Item = String>,
    flag: &str,
) -> Result<T, String> {
    let raw = value_for(it, flag)?;
    raw.parse::<T>()
        .map_err(|_| format!("bad value for {flag}: {raw:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_helpers_report_flag_names() {
        let mut empty = std::iter::empty::<String>();
        let err = value_for(&mut empty, "--out").unwrap_err();
        assert!(err.contains("--out"));
        let mut bad = ["nope".to_string()].into_iter();
        let err = parsed_value::<usize>(&mut bad, "--threads").unwrap_err();
        assert!(err.contains("--threads") && err.contains("nope"));
        let mut good = ["8".to_string()].into_iter();
        assert_eq!(parsed_value::<usize>(&mut good, "--threads").unwrap(), 8);
    }

    #[test]
    fn run_main_maps_outcomes_to_exit_codes() {
        // ExitCode has no PartialEq; its Debug form is stable enough to
        // distinguish success from failure within one test.
        let repr = |code: ExitCode| format!("{code:?}");
        let ok = run_main("t", "usage", || Ok(Parsed::Run(())), |()| Ok(()));
        assert_eq!(repr(ok), repr(ExitCode::SUCCESS));
        let help = run_main("t", "usage", || Ok(Parsed::<()>::Help), |()| Ok(()));
        assert_eq!(repr(help), repr(ExitCode::SUCCESS));
        let bad_args = run_main(
            "t",
            "usage",
            || Err::<Parsed<()>, _>("nope".into()),
            |()| Ok(()),
        );
        assert_eq!(repr(bad_args), repr(ExitCode::FAILURE));
        let failed = run_main(
            "t",
            "usage",
            || Ok(Parsed::Run(())),
            |()| Err("boom".into()),
        );
        assert_eq!(repr(failed), repr(ExitCode::FAILURE));
    }
}
