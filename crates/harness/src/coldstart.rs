//! Cold-start serving cost: v2 in-place `open` vs v1 full `decode`.
//!
//! The question behind the v2 layout (`docs/ARTIFACT_FORMAT.md` §"v2")
//! is replica spin-up: how long from "artifact bytes in hand" to "first
//! query answered"? The v1 path must materialize every section — the
//! adjacency, the parent-edge tables, the embedded parent graph, the
//! witness map — before the first route. The v2 in-place path validates
//! the envelope, points the serving tables at the buffer, and defers
//! the parent and witnesses until (unless) something asks for them.
//!
//! This module measures both, open-to-first-route, on deterministically
//! rebuilt artifacts of increasing size, and emits the committed
//! `BENCH_8.json` artifact (schema [`SCHEMA`]) through the `coldbench`
//! binary. The hard gates are the ones the serving story depends on:
//! every cell's first answers must be bit-identical across the two
//! paths, and — for full-scale artifacts, i.e. the committed
//! `BENCH_8.json` — on the largest artifact the in-place open must be
//! at least [`MIN_COLD_SPEEDUP`]× faster than the full decode.

use crate::cell_seed;
use crate::experiments::ExperimentContext;
use crate::json::{num, obj, s, JsonValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{EpochServer, FrozenSpanner, FtGreedy};
use spanner_faults::FaultSet;
use spanner_graph::generators::random_geometric;
use spanner_graph::{NodeId, SharedBytes};
use std::sync::Arc;
use std::time::Instant;

/// The cold-start artifact schema tag; bump when the layout changes.
/// `coldbench-2` added the required `host` block (logical CPUs, rustc,
/// OS/arch) so artifacts are comparable across machines.
pub const SCHEMA: &str = "vft-spanner/coldbench-2";

/// The pre-host tag still accepted by [`check_artifact`], so committed
/// artifacts from earlier PRs keep validating (`host` optional there).
pub const LEGACY_SCHEMA: &str = "vft-spanner/coldbench-1";

/// The stretch target every coldbench spanner is built for.
pub const STRETCH: u64 = 3;

/// The committed gate: on the largest artifact in the document, v2
/// in-place open-to-first-route must beat v1 full decode by at least
/// this factor.
pub const MIN_COLD_SPEEDUP: f64 = 10.0;

/// One cold-start cell: one artifact size, both paths.
#[derive(Clone, Debug)]
pub struct ColdCell {
    /// Network size the artifact was built over.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Spanner edges.
    pub edges: usize,
    /// v1 artifact size in bytes.
    pub v1_bytes: usize,
    /// v2 artifact size in bytes.
    pub v2_bytes: usize,
    /// v1 full-decode open-to-first-route, seconds (min over repeats).
    pub decode_secs: f64,
    /// v2 in-place open-to-first-route, seconds (min over repeats).
    pub open_secs: f64,
    /// Whether the two paths' first answers were bit-identical.
    pub identical: bool,
}

impl ColdCell {
    /// In-place speedup over the full decode, rounded the way the
    /// artifact records it.
    pub fn speedup(&self) -> f64 {
        round2(self.decode_secs / self.open_secs)
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Times `job` `repeats` times and keeps the minimum wall time (the
/// least-noisy sample) plus the last run's value.
fn best_of<T>(repeats: usize, mut job: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let out = job();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("repeats >= 1"))
}

/// Runs the cold-start sweep: one cell per artifact size, both open
/// paths timed open-to-first-route on the same first-route query.
pub fn sweep(ctx: &ExperimentContext, repeats: usize) -> Vec<ColdCell> {
    // (n, radius, f): the largest cell doubles the fault budget — a
    // bigger witness map and a denser spanner are exactly the sections
    // the v1 path must materialize and the in-place path defers.
    let sizes: Vec<(usize, f64, usize)> = ctx.pick(
        vec![(24, 0.5, 1)],
        vec![(48, 0.35, 1), (96, 0.3, 1)],
        vec![(64, 0.3, 1), (128, 0.28, 1), (256, 0.24, 2)],
    );
    sizes
        .into_iter()
        .enumerate()
        .map(|(cell, (n, radius, f))| {
            let mut rng = StdRng::seed_from_u64(cell_seed(17, cell as u64, 0));
            let g = random_geometric(n, radius, &mut rng);
            let frozen = FtGreedy::new(&g, STRETCH).faults(f).run().freeze(&g);
            let v1 = frozen.encode();
            let v2 = frozen.to_v2().encode();
            // The first-route probe: one live pair, no failures — the
            // minimal "replica is up" signal.
            let clear = FaultSet::vertices([]);
            let pair = (NodeId::new(0), NodeId::new(n / 2));
            // The aligned buffer is built once, outside the timer: it
            // stands in for an mmap(2) region, whose setup cost is a
            // syscall, not a byte copy. Cloning a SharedBytes is an
            // Arc bump.
            let shared = SharedBytes::copy_aligned(&v2);
            let (decode_secs, decode_answer) = best_of(repeats, || {
                let artifact = FrozenSpanner::decode(&v1).expect("own v1 bytes decode");
                let server = EpochServer::new(Arc::new(artifact));
                server.epoch(&clear).route(pair.0, pair.1)
            });
            let (open_secs, open_answer) = best_of(repeats, || {
                let mapped = FrozenSpanner::open(shared.clone()).expect("own v2 bytes open");
                let server = EpochServer::from_mapped(mapped);
                server.epoch(&clear).route(pair.0, pair.1)
            });
            ColdCell {
                n,
                f,
                edges: frozen.edge_count(),
                v1_bytes: v1.len(),
                v2_bytes: v2.len(),
                decode_secs,
                open_secs,
                identical: decode_answer == open_answer,
            }
        })
        .collect()
}

fn cell_json(cell: &ColdCell) -> JsonValue {
    obj([
        ("n", num(cell.n as f64)),
        ("f", num(cell.f as f64)),
        ("edges_kept", num(cell.edges as f64)),
        ("v1_bytes", num(cell.v1_bytes as f64)),
        ("v2_bytes", num(cell.v2_bytes as f64)),
        ("decode_us", num(round2(cell.decode_secs * 1e6))),
        ("open_us", num(round2(cell.open_secs * 1e6))),
        ("speedup", num(cell.speedup())),
        ("identical", JsonValue::Bool(cell.identical)),
    ])
}

/// Builds the machine-readable cold-start artifact (the document the
/// `coldbench` binary writes as `BENCH_8.json` and CI schema-checks).
pub fn artifact(scale_name: &str, repeats: usize, cells: &[ColdCell]) -> JsonValue {
    let all_identical = cells.iter().all(|c| c.identical);
    let largest = cells
        .iter()
        .max_by_key(|c| c.v1_bytes)
        .expect("sweep emits at least one cell");
    obj([
        ("schema", s(SCHEMA)),
        (
            "generated_by",
            s("cargo run --release -p spanner-harness --bin coldbench"),
        ),
        ("host", crate::host::host_json()),
        ("scale", s(scale_name)),
        ("stretch", num(STRETCH as f64)),
        ("repeats", num(repeats as f64)),
        (
            "records",
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
        (
            "summary",
            obj([
                ("cells", num(cells.len() as f64)),
                ("results_identical_all", JsonValue::Bool(all_identical)),
                ("largest_v1_bytes", num(largest.v1_bytes as f64)),
                ("largest_speedup", num(largest.speedup())),
            ]),
        ),
    ])
}

/// Validates a parsed cold-start artifact against the `coldbench-1`
/// schema: tag, per-record keys and sanity, the bit-identity
/// certification on every record, and — at **full scale only** — the
/// committed gate: the largest artifact's in-place speedup must reach
/// [`MIN_COLD_SPEEDUP`]. Smoke/quick artifacts measure tiny containers
/// whose decode cost has nothing to amortize the envelope validation
/// against, so the floor is a property of the committed full-scale
/// `BENCH_8.json`, not of every emission.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn check_artifact(doc: &JsonValue) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCHEMA && schema != LEGACY_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (want {SCHEMA:?} or legacy {LEGACY_SCHEMA:?})"
        ));
    }
    if schema == SCHEMA {
        crate::host::check_host(doc)?;
    }
    let scale = doc
        .get("scale")
        .and_then(JsonValue::as_str)
        .ok_or("missing scale")?;
    let records = doc
        .get("records")
        .and_then(JsonValue::as_array)
        .ok_or("missing records array")?;
    if records.is_empty() {
        return Err("empty records array".into());
    }
    let mut largest_bytes = 0.0f64;
    let mut largest_speedup = 0.0f64;
    for (i, record) in records.iter().enumerate() {
        let field = |key: &str| -> Result<f64, String> {
            record
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("record {i} missing numeric key {key:?}"))
        };
        for key in ["n", "f", "edges_kept", "v1_bytes", "v2_bytes"] {
            field(key)?;
        }
        for key in ["decode_us", "open_us", "speedup"] {
            let v = field(key)?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("record {i} has a bad {key}: {v}"));
            }
        }
        if record.get("identical") != Some(&JsonValue::Bool(true)) {
            return Err(format!(
                "record {i} does not certify identical first answers across open paths"
            ));
        }
        let bytes = field("v1_bytes")?;
        if bytes > largest_bytes {
            largest_bytes = bytes;
            largest_speedup = field("speedup")?;
        }
    }
    let summary = doc.get("summary").ok_or("missing summary")?;
    if summary.get("results_identical_all") != Some(&JsonValue::Bool(true)) {
        return Err("summary does not certify identical answers".into());
    }
    for (key, want) in [
        ("largest_v1_bytes", largest_bytes),
        ("largest_speedup", largest_speedup),
    ] {
        let claimed = summary
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or(format!("summary missing {key}"))?;
        if (claimed - want).abs() > 1e-9 {
            return Err(format!(
                "summary claims {key}={claimed}, records say {want}"
            ));
        }
    }
    if scale == "full" && largest_speedup < MIN_COLD_SPEEDUP {
        return Err(format!(
            "largest artifact's in-place speedup is {largest_speedup}x, \
             below the committed {MIN_COLD_SPEEDUP}x cold-start gate"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;
    use crate::json;

    #[test]
    fn smoke_sweep_round_trips_through_the_checker() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx, 1);
        assert_eq!(cells.len(), 1);
        assert!(cells.iter().all(|c| c.identical));
        let doc = artifact("smoke", 1, &cells);
        let text = format!("{doc}\n");
        let parsed = json::parse(&text).expect("emitted artifact parses");
        // The smoke cell is too small to owe the 10x floor — the floor
        // gates only full-scale documents — so a smoke emission must
        // pass its own check (CI's bench-smoke job relies on this).
        check_artifact(&parsed).expect("smoke artifact passes without the full-scale floor");
        // The same undersized measurements *relabeled* full-scale owe
        // the floor and fail it.
        let as_full = artifact("full", 1, &cells);
        let err = check_artifact(&json::parse(&format!("{as_full}")).unwrap()).unwrap_err();
        assert!(err.contains("cold-start gate"), "wrong complaint: {err}");
    }

    #[test]
    fn checker_rejects_divergent_answers() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let mut cells = sweep(&ctx, 1);
        cells[0].identical = false;
        let doc = artifact("smoke", 1, &cells);
        let parsed = json::parse(&format!("{doc}")).unwrap();
        let err = check_artifact(&parsed).unwrap_err();
        assert!(err.contains("identical"), "wrong complaint: {err}");
    }
}
