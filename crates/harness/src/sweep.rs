//! Parallel parameter sweeps over std scoped threads.
//!
//! Experiments run many independent `(parameter, seed)` cells; this helper
//! fans them out across a bounded worker pool and returns results in input
//! order, so tables stay deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `job` to every item on up to `threads` workers, preserving input
/// order in the output.
///
/// `threads = 1` degenerates to a plain sequential map (useful for
/// debugging and for keeping experiments deterministic when the job itself
/// uses interior timing).
///
/// # Panics
///
/// Panics if any job panics (the panic is propagated).
///
/// # Examples
///
/// ```
/// use spanner_harness::parallel_map;
///
/// let squares = parallel_map(vec![1, 2, 3, 4], 3, |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, job: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(job).collect();
    }
    let n = items.len();
    let inputs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let outputs: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("input lock")
                    .take()
                    .expect("each index taken once");
                let result = job(item);
                *outputs[i].lock().expect("output lock") = Some(result);
            });
        }
    });
    outputs
        .into_iter()
        .map(|m| m.into_inner().expect("lock").expect("job completed"))
        .collect()
}

/// A deterministic per-cell seed derived from an experiment id, a cell
/// index, and a repetition index (splitmix64 over the packed inputs).
pub fn cell_seed(experiment: u64, cell: u64, rep: u64) -> u64 {
    let mut z = experiment
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(cell.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(rep.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(0x2545F4914F6CDD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<_>>(), 8, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_sequential() {
        let out = parallel_map(vec!["a", "b"], 1, |s| s.to_uppercase());
        assert_eq!(out, vec!["A", "B"]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![1, 2], 16, |x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let a = cell_seed(1, 2, 3);
        let b = cell_seed(1, 2, 3);
        assert_eq!(a, b);
        let mut seen = std::collections::HashSet::new();
        for e in 0..5u64 {
            for c in 0..5u64 {
                for r in 0..5u64 {
                    assert!(seen.insert(cell_seed(e, c, r)), "collision at {e},{c},{r}");
                }
            }
        }
    }
}
