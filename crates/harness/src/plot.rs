//! Text-mode figure rendering.
//!
//! The reproduction's "figures" deserve more than tables: this renderer
//! draws multi-series scatter/line charts into a character grid, with
//! optional log scaling — enough to see exponents and crossovers at a
//! glance in terminal output and in EXPERIMENTS.md code blocks. No
//! external plotting dependency (substrate rule).

use std::fmt;

/// One named data series.
#[derive(Clone, Debug)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
    marker: char,
}

impl Series {
    /// Creates a series with the given marker character.
    pub fn new<N: Into<String>>(name: N, marker: char) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
            marker,
        }
    }

    /// Appends a point.
    pub fn point(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push((x, y));
        self
    }

    /// Appends many points.
    pub fn points<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) -> &mut Self {
        self.points.extend(iter);
        self
    }
}

/// Axis scaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxisScale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (non-positive values are dropped).
    Log,
}

/// A text chart: series plotted onto a `width × height` character grid.
///
/// # Examples
///
/// ```
/// use spanner_harness::plot::{AxisScale, Plot, Series};
///
/// let mut quadratic = Series::new("x^2", '*');
/// quadratic.points((1..=10).map(|x| (x as f64, (x * x) as f64)));
/// let plot = Plot::new("growth", 40, 12)
///     .scale(AxisScale::Linear, AxisScale::Linear)
///     .series(quadratic);
/// let out = plot.render();
/// assert!(out.contains("growth"));
/// assert!(out.contains('*'));
/// ```
#[derive(Clone, Debug)]
pub struct Plot {
    title: String,
    width: usize,
    height: usize,
    x_scale: AxisScale,
    y_scale: AxisScale,
    series: Vec<Series>,
}

impl Plot {
    /// Creates an empty plot with the given grid size (clamped to at
    /// least 16×6).
    pub fn new<T: Into<String>>(title: T, width: usize, height: usize) -> Self {
        Plot {
            title: title.into(),
            width: width.max(16),
            height: height.max(6),
            x_scale: AxisScale::Linear,
            y_scale: AxisScale::Linear,
            series: Vec::new(),
        }
    }

    /// Sets the axis scales (consuming builder).
    pub fn scale(mut self, x: AxisScale, y: AxisScale) -> Self {
        self.x_scale = x;
        self.y_scale = y;
        self
    }

    /// Adds a series (consuming builder).
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    fn transform(scale: AxisScale, v: f64) -> Option<f64> {
        match scale {
            AxisScale::Linear => Some(v),
            AxisScale::Log => (v > 0.0).then(|| v.log10()),
        }
    }

    /// Renders the chart into a string.
    pub fn render(&self) -> String {
        let mut transformed: Vec<(usize, Vec<(f64, f64)>)> = Vec::new();
        for (i, s) in self.series.iter().enumerate() {
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .filter_map(|(x, y)| {
                    Some((
                        Self::transform(self.x_scale, *x)?,
                        Self::transform(self.y_scale, *y)?,
                    ))
                })
                .collect();
            if !pts.is_empty() {
                transformed.push((i, pts));
            }
        }
        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.title));
        if transformed.is_empty() {
            out.push_str("(no plottable points)\n");
            return out;
        }
        let all: Vec<(f64, f64)> = transformed
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in &all {
            x_min = x_min.min(*x);
            x_max = x_max.max(*x);
            y_min = y_min.min(*y);
            y_max = y_max.max(*y);
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, pts) in &transformed {
            let marker = self.series[*si].marker;
            for (x, y) in pts {
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx] = marker;
            }
        }
        let y_label = |v: f64| -> String {
            let raw = match self.y_scale {
                AxisScale::Linear => v,
                AxisScale::Log => 10f64.powf(v),
            };
            format!("{raw:>9.2}")
        };
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                y_label(y_max)
            } else if r == self.height - 1 {
                y_label(y_min)
            } else {
                " ".repeat(9)
            };
            out.push_str(&format!("{label} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{} +{}\n", " ".repeat(9), "-".repeat(self.width)));
        let x_lo = match self.x_scale {
            AxisScale::Linear => x_min,
            AxisScale::Log => 10f64.powf(x_min),
        };
        let x_hi = match self.x_scale {
            AxisScale::Linear => x_max,
            AxisScale::Log => 10f64.powf(x_max),
        };
        out.push_str(&format!(
            "{} {:<12.6}{}{:>12.6}\n",
            " ".repeat(9),
            x_lo,
            " ".repeat(self.width.saturating_sub(24)),
            x_hi
        ));
        for s in &self.series {
            out.push_str(&format!("{} {} = {}\n", " ".repeat(9), s.marker, s.name));
        }
        out
    }
}

impl fmt::Display for Plot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(f64, f64)], marker: char) -> Series {
        let mut s = Series::new("s", marker);
        s.points(points.iter().copied());
        s
    }

    #[test]
    fn renders_title_legend_and_markers() {
        let plot = Plot::new("demo", 30, 8).series(series(&[(0.0, 0.0), (1.0, 1.0)], '#'));
        let out = plot.render();
        assert!(out.contains("=== demo ==="));
        assert!(out.contains("# = s"));
        assert!(out.matches('#').count() >= 3); // 2 points + legend
    }

    #[test]
    fn corners_are_placed_correctly() {
        let plot = Plot::new("c", 20, 6).series(series(&[(0.0, 0.0), (1.0, 1.0)], '*'));
        let out = plot.render();
        let rows: Vec<&str> = out.lines().collect();
        // First grid row (index 1 after the title) carries the max-y point
        // at the far right.
        assert!(rows[1].ends_with('*'));
        // Last grid row carries the min-y point right after the axis bar.
        let bottom = rows[6];
        assert_eq!(bottom.chars().nth(11), Some('*'));
    }

    #[test]
    fn log_scale_drops_nonpositive_points() {
        let plot = Plot::new("log", 20, 6)
            .scale(AxisScale::Log, AxisScale::Log)
            .series(series(&[(0.0, 5.0), (10.0, 100.0), (100.0, 10000.0)], 'x'));
        let out = plot.render();
        // Only the two positive-x points plot; they form a straight
        // diagonal in log-log space (visual check: both corners present).
        assert!(out.matches('x').count() >= 3);
    }

    #[test]
    fn empty_plot_is_graceful() {
        let plot = Plot::new("empty", 20, 6);
        assert!(plot.render().contains("no plottable points"));
        let plot = Plot::new("empty", 20, 6)
            .scale(AxisScale::Log, AxisScale::Log)
            .series(series(&[(-1.0, -5.0)], 'x'));
        assert!(plot.render().contains("no plottable points"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let plot = Plot::new("flat", 20, 6).series(series(&[(1.0, 7.0), (2.0, 7.0)], 'o'));
        let out = plot.render();
        assert!(out.contains('o'));
    }

    #[test]
    fn display_matches_render() {
        let plot = Plot::new("d", 20, 6).series(series(&[(0.0, 1.0)], '+'));
        assert_eq!(plot.to_string(), plot.render());
    }
}
