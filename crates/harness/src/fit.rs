//! Log–log least-squares power-law fitting.
//!
//! The size theorems predict power laws (`m ∝ f^{1−1/k}`, `m ∝ n^{1+1/k}`);
//! the experiments check the *measured exponent* against the predicted one,
//! which is robust to constant factors that a simulator cannot hope to
//! match.

/// A fitted power law `y ≈ c · x^e`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerFit {
    /// The exponent `e`.
    pub exponent: f64,
    /// The coefficient `c`.
    pub coefficient: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
}

/// Fits `y = c·x^e` by least squares on `(ln x, ln y)`.
///
/// Returns `None` if fewer than two valid (positive) points are provided
/// or all `x` coincide.
///
/// # Examples
///
/// ```
/// use spanner_harness::fit_power_law;
///
/// let xs = [1.0, 2.0, 4.0, 8.0];
/// let ys = [3.0, 12.0, 48.0, 192.0]; // y = 3 x^2
/// let fit = fit_power_law(&xs, &ys).unwrap();
/// assert!((fit.exponent - 2.0).abs() < 1e-9);
/// assert!((fit.coefficient - 3.0).abs() < 1e-9);
/// assert!(fit.r_squared > 0.999);
/// ```
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> Option<PowerFit> {
    let points: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys.iter())
        .filter(|(x, y)| **x > 0.0 && **y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    // R^2 in log space.
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot <= 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(PowerFit {
        exponent: slope,
        coefficient: intercept.exp(),
        r_squared,
    })
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 * x.powf(1.5)).collect();
        let fit = fit_power_law(&xs, &ys).unwrap();
        assert!((fit.exponent - 1.5).abs() < 1e-9);
        assert!((fit.coefficient - 7.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.9999);
    }

    #[test]
    fn noisy_fit_keeps_reasonable_r2() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        // Deterministic "noise" multipliers around 1.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x.powf(2.0) * (1.0 + 0.05 * ((i % 3) as f64 - 1.0)))
            .collect();
        let fit = fit_power_law(&xs, &ys).unwrap();
        assert!((fit.exponent - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_power_law(&[1.0], &[2.0]).is_none());
        assert!(fit_power_law(&[2.0, 2.0], &[3.0, 5.0]).is_none());
        assert!(fit_power_law(&[0.0, -1.0], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn nonpositive_points_filtered() {
        let fit = fit_power_law(&[1.0, 0.0, 2.0, 4.0], &[5.0, 9.0, 10.0, 20.0]).unwrap();
        assert!((fit.exponent - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn flat_data_r2_is_one() {
        let fit = fit_power_law(&[1.0, 2.0, 4.0], &[5.0, 5.0, 5.0]).unwrap();
        assert!(fit.exponent.abs() < 1e-9);
        assert_eq!(fit.r_squared, 1.0);
    }
}
