//! `scenarios` — the resilience engine sweep, as a committed-style
//! artifact (the scenario-pipeline analogue of `perfbench`).
//!
//! Usage:
//!
//! ```text
//! scenarios [--smoke | --quick | --full] [--threads N] [--out PATH]
//! scenarios --check PATH
//! ```
//!
//! Runs the E14 sweep — five failure scenarios (independent Bernoulli,
//! correlated regional outages, adversarial witness replay, burst
//! cascades, a scripted maintenance trace) × fault budgets, one paired
//! process seed — and writes one JSON document with exact per-cell
//! contract accounting (violations, in-budget/overall hit rates,
//! availability, the bounded contract-event log). The run **fails** if
//! any cell reports a contract violation: a correctly budgeted spanner
//! must never miss an in-budget query.
//!
//! `--check` re-reads any such artifact with the strict parser in
//! [`spanner_harness::json`] and validates the `scenarios-1` schema
//! (including counter consistency and the summary's clean-contract
//! certification), which is what the CI bench-smoke job runs so the
//! scenario pipeline cannot silently rot.

use spanner_harness::cli::{self, Parsed};
use spanner_harness::experiments::{e14_scenarios, ExperimentContext, Scale};
use spanner_harness::json;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    out: PathBuf,
    threads: Option<usize>,
    check: Option<PathBuf>,
}

const USAGE: &str = "usage: scenarios [--smoke|--quick|--full] [--threads N] [--out PATH]\n       scenarios --check PATH";

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

fn parse_args() -> Result<Parsed<Args>, String> {
    let mut args = Args {
        scale: Scale::Full,
        out: PathBuf::from("SCENARIOS.json"),
        threads: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.scale = Scale::Smoke,
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--out" => args.out = PathBuf::from(cli::value_for(&mut it, "--out")?),
            "--check" => {
                args.check = Some(PathBuf::from(cli::value_for(&mut it, "--check")?));
            }
            "--threads" => args.threads = Some(cli::parsed_value(&mut it, "--threads")?),
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Parsed::Run(args))
}

fn run_sweep(args: &Args) -> Result<(), String> {
    let mut ctx = ExperimentContext::new(args.scale);
    if let Some(t) = args.threads {
        ctx.threads = t.max(1);
    }
    println!(
        "scenarios: scale={} threads={} -> {}",
        scale_name(args.scale),
        ctx.threads,
        args.out.display()
    );
    let cells = e14_scenarios::sweep(&ctx);
    let mut violations = 0usize;
    for cell in &cells {
        let o = &cell.outcome;
        violations += o.contract_violations;
        println!(
            "  {:<22} f={}  in-budget {:>4}/{:<4}  peak {:>2}  violations {:>2}  hit {:>5.1}%/{:>5.1}%  worst {:.3}",
            cell.scenario,
            cell.f,
            o.steps_within_budget,
            o.steps,
            o.peak_failures,
            o.contract_violations,
            100.0 * o.in_budget_hit_rate(),
            100.0 * o.overall_hit_rate(),
            o.worst_stretch_within_budget,
        );
    }
    let doc = e14_scenarios::artifact(scale_name(args.scale), &cells);
    let text = format!("{doc}\n");
    // Self-check before writing: the artifact must parse with the same
    // strict parser CI uses and satisfy its own schema.
    let parsed =
        json::parse(&text).map_err(|e| format!("internal error: emitted invalid JSON: {e}"))?;
    e14_scenarios::check_artifact(&parsed)
        .map_err(|e| format!("internal error: emitted off-schema artifact: {e}"))?;
    std::fs::write(&args.out, &text)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    println!("wrote {}", args.out.display());
    if violations > 0 {
        return Err(format!(
            "{violations} contract violation(s): a correctly budgeted FT spanner must serve every in-budget query"
        ));
    }
    Ok(())
}

fn run_check(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    e14_scenarios::check_artifact(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    let records = doc
        .get("records")
        .and_then(json::JsonValue::as_array)
        .expect("checked above");
    println!(
        "{}: ok ({} scenario records)",
        path.display(),
        records.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main("scenarios", USAGE, parse_args, |args| match &args.check {
        Some(path) => run_check(path),
        None => run_sweep(&args),
    })
}
