//! `repro` — regenerate every table and figure of the reproduction.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--smoke] [--out DIR] [--threads N] [all | e1 e2 ... e10]
//! ```
//!
//! Each experiment prints its tables and headline notes to stdout and
//! writes one CSV per table under the output directory (default
//! `results/`). The binary speaks the shared [`spanner_harness::cli`]
//! dialect: `--help` on stdout with exit 0, bad arguments on stderr
//! with the usage and a non-zero exit.

use spanner_harness::cli::{self, Parsed};
use spanner_harness::experiments::{registry, ExperimentContext, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    out_dir: PathBuf,
    threads: Option<usize>,
    selected: Vec<String>,
}

fn parse_args() -> Result<Parsed<Args>, String> {
    let mut args = Args {
        scale: Scale::Full,
        out_dir: PathBuf::from("results"),
        threads: None,
        selected: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.scale = Scale::Quick,
            "--smoke" => args.scale = Scale::Smoke,
            "--out" => args.out_dir = PathBuf::from(cli::value_for(&mut it, "--out")?),
            "--threads" => args.threads = Some(cli::parsed_value(&mut it, "--threads")?),
            "--help" | "-h" => return Ok(Parsed::Help),
            other if other.starts_with('-') => {
                return Err(format!("unknown argument {other:?}"));
            }
            other => args.selected.push(other.to_string()),
        }
    }
    if args.selected.is_empty() {
        return Err("no experiments selected".into());
    }
    let known: Vec<String> = registry().iter().map(|(id, _)| id.to_string()).collect();
    for id in &args.selected {
        if id != "all" && !known.contains(id) {
            return Err(format!("unknown experiment id {id}"));
        }
    }
    Ok(Parsed::Run(args))
}

fn usage() -> String {
    let ids: Vec<&str> = registry().iter().map(|(id, _)| *id).collect();
    format!(
        "usage: repro [--quick|--smoke] [--out DIR] [--threads N] [all | {}]",
        ids.join(" ")
    )
}

fn run(args: Args) -> Result<(), String> {
    let mut ctx = ExperimentContext::new(args.scale);
    if let Some(t) = args.threads {
        ctx.threads = t.max(1);
    }
    let all: Vec<String> = registry().iter().map(|(id, _)| id.to_string()).collect();
    let wanted: Vec<String> = if args.selected.iter().any(|s| s == "all") {
        all.clone()
    } else {
        args.selected.clone()
    };
    let mut failures = 0usize;
    for (id, runner) in registry() {
        if !wanted.iter().any(|w| w == id) {
            continue;
        }
        let start = std::time::Instant::now();
        let output = runner(&ctx);
        let elapsed = start.elapsed();
        println!("==========================================================");
        println!("{} — {}   [{:.2?}]", output.id, output.title, elapsed);
        println!("==========================================================");
        for (i, table) in output.tables.iter().enumerate() {
            println!("{table}");
            let file = args.out_dir.join(format!(
                "{}_{}.csv",
                output.id,
                if output.tables.len() == 1 {
                    "table".to_string()
                } else {
                    format!("table{}", i + 1)
                }
            ));
            if let Err(err) = table.write_csv(&file) {
                eprintln!("warning: could not write {}: {err}", file.display());
            } else {
                println!("(csv: {})", file.display());
            }
        }
        for (i, figure) in output.figures.iter().enumerate() {
            println!("{figure}");
            let file = args
                .out_dir
                .join(format!("{}_figure{}.txt", output.id, i + 1));
            if let Some(parent) = file.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            if let Err(err) = std::fs::write(&file, figure) {
                eprintln!("warning: could not write {}: {err}", file.display());
            }
        }
        for note in &output.notes {
            println!("  • {note}");
            if note.contains("VIOLATION") || note.contains(" NO") {
                failures += 1;
            }
        }
        println!();
    }
    if failures > 0 {
        return Err(format!("{failures} experiment note(s) flagged violations"));
    }
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main("repro", &usage(), parse_args, run)
}
