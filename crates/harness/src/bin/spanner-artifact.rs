//! `spanner-artifact` — build, inspect, and serve persistent
//! `FrozenSpanner` artifacts.
//!
//! Usage:
//!
//! ```text
//! spanner-artifact build [--family geometric|complete|grid|erdos-renyi]
//!                        [--n N] [--radius R] [--p P] [--rows R --cols C]
//!                        [--edges PATH] [--seed S] [--stretch K] [--f F]
//!                        [--model vertex|edge] [--v2] [--detach-witnesses]
//!                        [--shard-witnesses] [--out PATH]
//! spanner-artifact inspect PATH
//! spanner-artifact migrate PATH [--out PATH] [--shard|--unshard]
//! spanner-artifact serve PATH [--in-place] [--epochs N] [--batch B]
//!                        [--threads T] [--seed S]
//! ```
//!
//! The build-once / serve-many pipeline, end to end:
//!
//! * `build` constructs an FT spanner (FT-greedy over the chosen graph
//!   family or a text edge-list file), freezes it with full metadata
//!   (parent graph, budget, model, witnesses), and writes the versioned
//!   `VFTSPANR` binary artifact (`docs/ARTIFACT_FORMAT.md`). `--v2`
//!   emits the alignment-padded in-place layout; `--detach-witnesses`
//!   (implies `--v2`) drops the witness section for a routing-only
//!   replica artifact; `--shard-witnesses` (implies `--v2`, excludes
//!   `--detach-witnesses`) adds the per-edge witness offset index so
//!   zero-copy consumers resolve one edge's fault sets in O(|F_e|).
//! * `inspect` dumps the container header — version, flags, checksum,
//!   section table (including witness-index stats for sharded
//!   artifacts) — and the decoded artifact's stats, without serving
//!   anything.
//! * `migrate` re-lays a v1 artifact out as v2, byte-canonically: the
//!   output is exactly what `build --v2` of the same construction would
//!   have written, and migrating an already-v2 artifact is a verified
//!   no-op (idempotent, byte for byte). `--shard` / `--unshard` convert
//!   between the monolithic and sharded witness layouts, both
//!   byte-canonical; the round trip `--unshard` ∘ `--shard` is the
//!   identity. Without either flag the witness layout is preserved.
//! * `serve` is the roundtrip proof: it decodes the artifact in *this*
//!   process (built, typically, by another), re-runs the construction
//!   from the embedded parent graph, and drives an E15-style epoch/batch
//!   query workload through both artifacts — sequential and pooled —
//!   failing unless every answer is bit-identical and the rebuilt
//!   artifact re-encodes to the exact bytes on disk. `--in-place` (v2
//!   artifacts only) opens the file zero-copy — `mmap(2)` where the
//!   platform has it, an aligned heap copy otherwise — and serves
//!   straight out of the buffer through the same gates. CI runs
//!   build → inspect → migrate → serve as separate processes on every
//!   push.
//! * `replay` re-decodes every entry of one or more fuzz-corpus
//!   directories (`fuzz/corpus/`, `fuzz/crashes/`) under the decode
//!   contract — fail-closed, deterministic, canonical — and verifies
//!   each file's outcome against the expectation encoded in its name.
//!
//! `inspect`, `serve` and `replay` treat their input as **hostile**:
//! a malformed artifact never panics the process — it prints the
//! stable error code (`error[artifact/...]`, the taxonomy of
//! `docs/ARTIFACT_FORMAT.md` §8) plus a remediation hint on stderr and
//! exits non-zero, byte-identically for the same input every time
//! (the cross-process leg of the decode determinism contract,
//! pinned by `tests/artifact_cli.rs`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_core::frozen::{
    ARTIFACT_MAGIC, ARTIFACT_VERSION, ARTIFACT_VERSION_V2, FLAG_WITNESSES_DETACHED,
    FLAG_WITNESSES_SHARDED, SECTION_META, SECTION_PARENT, SECTION_PARENT_EDGES, SECTION_SPANNER,
    SECTION_WITNESSES, SECTION_WITNESS_INDEX,
};
use spanner_core::routing::{Route, RouteError};
use spanner_core::{EpochServer, FrozenSpanner, FtGreedy};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::io::binary::{fnv1a64, fnv1a64_words, parse_container, parse_container_v2};
use spanner_graph::{generators, io, Graph, NodeId, SharedBytes};
use spanner_harness::cli::{self, Parsed};
use spanner_harness::corpus;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: spanner-artifact build [--family geometric|complete|grid|erdos-renyi]
                              [--n N] [--radius R] [--p P] [--rows R --cols C]
                              [--edges PATH] [--seed S] [--stretch K] [--f F]
                              [--model vertex|edge] [--v2] [--detach-witnesses]
                              [--shard-witnesses] [--out PATH]
       spanner-artifact inspect PATH
       spanner-artifact migrate PATH [--out PATH] [--shard|--unshard]
       spanner-artifact serve PATH [--in-place] [--epochs N] [--batch B] [--threads T] [--seed S]
       spanner-artifact replay DIR...";

/// The graph the `build` subcommand constructs over.
enum GraphSpec {
    Geometric { n: usize, radius: f64, seed: u64 },
    Complete { n: usize },
    Grid { rows: usize, cols: usize },
    ErdosRenyi { n: usize, p: f64, seed: u64 },
    EdgeList { path: PathBuf },
}

struct BuildArgs {
    spec: GraphSpec,
    stretch: u64,
    faults: usize,
    model: FaultModel,
    v2: bool,
    detach: bool,
    shard: bool,
    out: PathBuf,
}

struct ServeArgs {
    path: PathBuf,
    in_place: bool,
    epochs: usize,
    batch: usize,
    threads: usize,
    seed: u64,
}

struct MigrateArgs {
    path: PathBuf,
    out: Option<PathBuf>,
    shard: bool,
    unshard: bool,
}

enum Command {
    Build(BuildArgs),
    Inspect(PathBuf),
    Migrate(MigrateArgs),
    Serve(ServeArgs),
    Replay(Vec<PathBuf>),
}

/// Renders a decode failure of a hostile file: the stable error code
/// first (machines match on `error[...]`), then the message, then the
/// remediation hint. Deterministic for a given input — this string is
/// the cross-process half of the decode determinism contract.
fn hostile(path: &std::path::Path, code: &str, error: impl std::fmt::Display) -> String {
    format!(
        "error[{code}] {}: {error}\nremediation: {}",
        path.display(),
        spanner_graph::io::binary::remediation_for_code(code)
    )
}

fn parse_args() -> Result<Parsed<Command>, String> {
    let mut it = std::env::args().skip(1);
    let sub = match it.next() {
        None => return Err("missing subcommand (build, inspect, or serve)".into()),
        Some(s) if s == "--help" || s == "-h" => return Ok(Parsed::Help),
        Some(s) => s,
    };
    match sub.as_str() {
        "build" => parse_build(&mut it),
        "inspect" => {
            let path = positional_path(&mut it, "inspect")?;
            reject_extra(&mut it)?;
            Ok(Parsed::Run(Command::Inspect(path)))
        }
        "migrate" => parse_migrate(&mut it),
        "serve" => parse_serve(&mut it),
        "replay" => {
            let dirs: Vec<PathBuf> = it.by_ref().map(PathBuf::from).collect();
            if dirs
                .iter()
                .any(|d| d.as_os_str() == "--help" || d.as_os_str() == "-h")
            {
                return Ok(Parsed::Help);
            }
            if dirs.is_empty() {
                return Err("replay needs at least one corpus directory".into());
            }
            Ok(Parsed::Run(Command::Replay(dirs)))
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn positional_path(it: &mut impl Iterator<Item = String>, sub: &str) -> Result<PathBuf, String> {
    match it.next() {
        None => Err(format!("{sub} needs an artifact path")),
        Some(s) if s == "--help" || s == "-h" => Err(format!("{sub} needs an artifact path")),
        Some(s) => Ok(PathBuf::from(s)),
    }
}

fn reject_extra(it: &mut impl Iterator<Item = String>) -> Result<(), String> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(format!("unexpected argument {extra:?}")),
    }
}

fn parse_build(it: &mut impl Iterator<Item = String>) -> Result<Parsed<Command>, String> {
    let mut family = "geometric".to_string();
    let mut n = 64usize;
    let mut radius = 0.3f64;
    let mut p = 0.15f64;
    let mut rows = 8usize;
    let mut cols = 8usize;
    let mut edges: Option<PathBuf> = None;
    let mut seed = 7u64;
    let mut stretch = 3u64;
    let mut faults = 1usize;
    let mut model = FaultModel::Vertex;
    let mut v2 = false;
    let mut detach = false;
    let mut shard = false;
    let mut out = PathBuf::from("spanner.vfts");
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--v2" => v2 = true,
            "--detach-witnesses" => detach = true,
            "--shard-witnesses" => shard = true,
            "--family" => family = cli::value_for(it, "--family")?,
            "--n" => n = cli::parsed_value(it, "--n")?,
            "--radius" => radius = cli::parsed_value(it, "--radius")?,
            "--p" => p = cli::parsed_value(it, "--p")?,
            "--rows" => rows = cli::parsed_value(it, "--rows")?,
            "--cols" => cols = cli::parsed_value(it, "--cols")?,
            "--edges" => edges = Some(PathBuf::from(cli::value_for(it, "--edges")?)),
            "--seed" => seed = cli::parsed_value(it, "--seed")?,
            "--stretch" => stretch = cli::parsed_value(it, "--stretch")?,
            "--f" => faults = cli::parsed_value(it, "--f")?,
            "--model" => model = parse_model(&cli::value_for(it, "--model")?)?,
            "--out" => out = PathBuf::from(cli::value_for(it, "--out")?),
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if stretch == 0 {
        return Err("--stretch must be positive".into());
    }
    if detach && shard {
        return Err(
            "--detach-witnesses and --shard-witnesses are mutually exclusive \
             (there is no witness map left to index)"
                .into(),
        );
    }
    let spec = match edges {
        Some(path) => GraphSpec::EdgeList { path },
        None => match family.as_str() {
            "geometric" => GraphSpec::Geometric { n, radius, seed },
            "complete" => GraphSpec::Complete { n },
            "grid" => GraphSpec::Grid { rows, cols },
            "erdos-renyi" => GraphSpec::ErdosRenyi { n, p, seed },
            other => {
                return Err(format!(
                    "unknown graph family {other:?} (geometric, complete, grid, erdos-renyi)"
                ))
            }
        },
    };
    Ok(Parsed::Run(Command::Build(BuildArgs {
        spec,
        stretch,
        faults,
        model,
        v2: v2 || detach || shard, // both are v2-only layout features
        detach,
        shard,
        out,
    })))
}

fn parse_migrate(it: &mut impl Iterator<Item = String>) -> Result<Parsed<Command>, String> {
    let path = positional_path(it, "migrate")?;
    let mut out = None;
    let mut shard = false;
    let mut unshard = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(cli::value_for(it, "--out")?)),
            "--shard" => shard = true,
            "--unshard" => unshard = true,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if shard && unshard {
        return Err("--shard and --unshard are mutually exclusive".into());
    }
    Ok(Parsed::Run(Command::Migrate(MigrateArgs {
        path,
        out,
        shard,
        unshard,
    })))
}

fn parse_serve(it: &mut impl Iterator<Item = String>) -> Result<Parsed<Command>, String> {
    let path = positional_path(it, "serve")?;
    let mut args = ServeArgs {
        path,
        in_place: false,
        epochs: 8,
        batch: 64,
        threads: 2,
        seed: 99,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--in-place" => args.in_place = true,
            "--epochs" => args.epochs = cli::parsed_value(it, "--epochs")?,
            "--batch" => args.batch = cli::parsed_value(it, "--batch")?,
            "--threads" => args.threads = cli::parsed_value(it, "--threads")?,
            "--seed" => args.seed = cli::parsed_value(it, "--seed")?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.epochs == 0 || args.batch == 0 || args.threads == 0 {
        return Err("--epochs, --batch and --threads must be positive".into());
    }
    Ok(Parsed::Run(Command::Serve(args)))
}

fn parse_model(raw: &str) -> Result<FaultModel, String> {
    match raw {
        "vertex" => Ok(FaultModel::Vertex),
        "edge" => Ok(FaultModel::Edge),
        other => Err(format!("bad value for --model: {other:?} (vertex or edge)")),
    }
}

fn build_graph(spec: &GraphSpec) -> Result<Graph, String> {
    Ok(match spec {
        GraphSpec::Geometric { n, radius, seed } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            generators::random_geometric(*n, *radius, &mut rng)
        }
        GraphSpec::Complete { n } => generators::complete(*n),
        GraphSpec::Grid { rows, cols } => generators::grid(*rows, *cols),
        GraphSpec::ErdosRenyi { n, p, seed } => {
            let mut rng = StdRng::seed_from_u64(*seed);
            generators::erdos_renyi(*n, *p, &mut rng)
        }
        GraphSpec::EdgeList { path } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            io::from_edge_list(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
    })
}

fn run_build(args: BuildArgs) -> Result<(), String> {
    let g = build_graph(&args.spec)?;
    if g.node_count() == 0 {
        return Err("refusing to build an artifact over an empty graph".into());
    }
    println!(
        "building: {} nodes, {} edges, stretch {}, f = {}, {} faults",
        g.node_count(),
        g.edge_count(),
        args.stretch,
        args.faults,
        args.model
    );
    let ft = FtGreedy::new(&g, args.stretch)
        .faults(args.faults)
        .model(args.model)
        .run();
    let mut frozen = ft.freeze(&g);
    if args.detach {
        frozen = frozen.detach_witnesses();
    } else if args.shard {
        frozen = frozen.to_v2_sharded();
    } else if args.v2 {
        frozen = frozen.to_v2();
    }
    let bytes = frozen.encode();
    // Sanity: our own encoding must decode before it ships.
    FrozenSpanner::decode(&bytes)
        .map_err(|e| format!("internal error: emitted an undecodable artifact: {e}"))?;
    std::fs::write(&args.out, &bytes)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    let witness_note = match frozen.witnesses() {
        Ok(w) if frozen.witnesses_sharded() => {
            format!("{} witness sets (sharded per-edge index)", w.len())
        }
        Ok(w) => format!("{} witness sets", w.len()),
        Err(_) => "witnesses detached (routing-only)".to_string(),
    };
    println!(
        "kept {} / {} edges ({:.1}%), {witness_note}",
        frozen.edge_count(),
        g.edge_count(),
        100.0 * frozen.edge_count() as f64 / g.edge_count().max(1) as f64,
    );
    println!(
        "wrote {} (v{}, {} bytes)",
        args.out.display(),
        frozen.version(),
        bytes.len()
    );
    Ok(())
}

/// Human name of an artifact section tag (tags owned by
/// `spanner_core::frozen`, so a future renumbering shows up here as a
/// compile-time pattern overlap rather than a silently wrong label).
fn section_name(tag: u32) -> &'static str {
    match tag {
        SECTION_META => "meta",
        SECTION_SPANNER => "spanner-adjacency",
        SECTION_PARENT_EDGES => "parent-edge-table",
        SECTION_WITNESSES => "witness-map",
        SECTION_PARENT => "parent-graph",
        SECTION_WITNESS_INDEX => "witness-index",
        _ => "unknown",
    }
}

fn run_inspect(path: PathBuf) -> Result<(), String> {
    let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    // Dispatch on the declared version, exactly like `FrozenSpanner::decode`;
    // a lying version field fails closed inside the matching parser.
    let is_v2 = bytes.len() >= 12 && bytes[8..12] == ARTIFACT_VERSION_V2.to_le_bytes();
    println!("{}: {} bytes", path.display(), bytes.len());
    if is_v2 {
        let container = parse_container_v2(
            &bytes,
            ARTIFACT_MAGIC,
            ARTIFACT_VERSION_V2,
            FLAG_WITNESSES_DETACHED | FLAG_WITNESSES_SHARDED,
        )
        .map_err(|e| hostile(&path, e.code(), &e))?;
        let flag_note = if container.flags & FLAG_WITNESSES_DETACHED != 0 {
            " (witnesses-detached)"
        } else if container.flags & FLAG_WITNESSES_SHARDED != 0 {
            " (witnesses-sharded)"
        } else {
            ""
        };
        println!(
            "  magic    {:?}  version {}  flags {:#010x}{flag_note}",
            String::from_utf8_lossy(&ARTIFACT_MAGIC),
            container.version,
            container.flags,
        );
        println!(
            "  checksum {:#018x} (fnv1a-64 word-wise, verified)",
            fnv1a64_words(&bytes[..bytes.len() - 8])
        );
        println!("  sections (in-place layout, 8-byte aligned):");
        for section in &container.sections {
            println!(
                "    tag {}  {:<18} offset {:>9}  {:>9} bytes",
                section.tag,
                section_name(section.tag),
                section.offset,
                section.len
            );
        }
        if let Some(idx) = container
            .sections
            .iter()
            .find(|s| s.tag == SECTION_WITNESS_INDEX)
        {
            // Index payload is count + (count+1) offsets; the decode
            // below fully validates it — this is a display of the
            // declared shape.
            let records = (idx.len / 8).saturating_sub(2);
            let map = container
                .sections
                .iter()
                .find(|s| s.tag == SECTION_WITNESSES)
                .map(|s| s.len)
                .unwrap_or(0);
            println!(
                "  witness index: {records} records indexed, {} bytes of offsets \
                 over a {map}-byte sharded witness map ({:.1} bytes/record)",
                idx.len,
                map as f64 / (records.max(1)) as f64
            );
        }
    } else {
        let container = parse_container(&bytes, ARTIFACT_MAGIC, ARTIFACT_VERSION)
            .map_err(|e| hostile(&path, e.code(), &e))?;
        println!(
            "  magic    {:?}  version {}",
            String::from_utf8_lossy(&ARTIFACT_MAGIC),
            container.version
        );
        println!(
            "  checksum {:#018x} (fnv1a-64, verified)",
            fnv1a64(&bytes[..bytes.len() - 8])
        );
        println!("  sections:");
        for section in &container.sections {
            println!(
                "    tag {}  {:<18} {:>9} bytes",
                section.tag,
                section_name(section.tag),
                section.payload.len()
            );
        }
    }
    let frozen = FrozenSpanner::decode(&bytes).map_err(|e| hostile(&path, e.code(), &e))?;
    println!("  artifact:");
    println!(
        "    spanner    {} nodes, {} edges, stretch {}",
        frozen.node_count(),
        frozen.edge_count(),
        frozen.stretch()
    );
    match frozen.budget() {
        Some(f) => println!("    built for  f = {f} {} faults", frozen.model()),
        None => println!("    built for  (no construction metadata: bare freeze)"),
    }
    match frozen.parent().map_err(|e| hostile(&path, e.code(), &e))? {
        Some(p) => println!(
            "    parent     {} nodes, {} edges ({:.1}% kept)",
            p.node_count(),
            p.edge_count(),
            100.0 * frozen.edge_count() as f64 / p.edge_count().max(1) as f64
        ),
        None => println!("    parent     not embedded"),
    }
    match frozen.witnesses() {
        Ok(w) => {
            let nonempty = w.iter().filter(|s| !s.is_empty()).count();
            println!(
                "    witnesses  {} sets ({} nonempty{})",
                w.len(),
                nonempty,
                if frozen.witnesses_sharded() {
                    ", sharded per-edge index"
                } else {
                    ""
                }
            );
        }
        Err(_) => println!("    witnesses  detached (routing-only artifact)"),
    }
    Ok(())
}

fn run_migrate(args: MigrateArgs) -> Result<(), String> {
    let bytes = std::fs::read(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path.display()))?;
    let decoded = FrozenSpanner::decode(&bytes).map_err(|e| hostile(&args.path, e.code(), &e))?;
    let from_version = decoded.version();
    let was_sharded = decoded.witnesses_sharded();
    if args.shard && decoded.witnesses_detached() {
        return Err(
            "cannot --shard a witnesses-detached (routing-only) artifact: \
             there is no witness map to index"
                .into(),
        );
    }
    // Without an explicit --shard/--unshard the witness layout is
    // preserved, so plain `migrate` of any v2 artifact stays a no-op.
    let to_sharded = if args.shard {
        true
    } else if args.unshard {
        false
    } else {
        was_sharded
    };
    let migrated = if to_sharded {
        decoded.to_v2_sharded().encode()
    } else {
        decoded.to_v2().encode()
    };
    if from_version == ARTIFACT_VERSION_V2 && to_sharded == was_sharded && migrated != bytes {
        return Err(
            "internal error: migrating a v2 artifact without a layout change \
             altered its bytes — migration must be idempotent"
                .into(),
        );
    }
    // The migrated artifact must be canonical: decode and re-encode to
    // the exact same bytes (the same gate `serve` applies to rebuilds).
    let back = FrozenSpanner::decode(&migrated)
        .map_err(|e| format!("internal error: migrated artifact does not decode: {e}"))?;
    if back.encode() != migrated {
        return Err("internal error: migrated artifact is not byte-canonical".into());
    }
    let out = args.out.unwrap_or_else(|| args.path.clone());
    std::fs::write(&out, &migrated).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "migrated {} (v{from_version}, {} bytes) -> {} (v2{}, {} bytes){}",
        args.path.display(),
        bytes.len(),
        out.display(),
        if to_sharded {
            ", sharded witnesses"
        } else {
            ""
        },
        migrated.len(),
        if from_version == ARTIFACT_VERSION_V2 && to_sharded == was_sharded {
            " — already v2, byte-identical"
        } else {
            ""
        }
    );
    Ok(())
}

/// One serve-workload epoch: a failure set plus a batch of live pairs
/// (the E15 shape: clear / random-f / witness-replay, round-robin).
fn plan_epochs(frozen: &FrozenSpanner, args: &ServeArgs) -> Vec<(FaultSet, Vec<(NodeId, NodeId)>)> {
    let n = frozen.node_count();
    let f = frozen.budget().unwrap_or(0);
    // A routing-only (witnesses-detached) artifact simply has no replay
    // epochs to offer; the clear/random scenarios still run.
    let witnesses: Vec<&FaultSet> = frozen
        .witnesses()
        .map(|w| {
            w.iter()
                .filter(|s| !s.is_empty() && s.model() == FaultModel::Vertex)
                .collect()
        })
        .unwrap_or_default();
    let mut rng = StdRng::seed_from_u64(args.seed);
    (0..args.epochs)
        .map(|epoch| {
            let failures = match epoch % 3 {
                0 => FaultSet::vertices([]),
                1 => {
                    let mut down = Vec::with_capacity(f);
                    while down.len() < f.min(n.saturating_sub(2)) {
                        let v = NodeId::new(rng.gen_range(0..n));
                        if !down.contains(&v) {
                            down.push(v);
                        }
                    }
                    FaultSet::vertices(down)
                }
                _ if !witnesses.is_empty() => witnesses[epoch % witnesses.len()].clone(),
                _ => FaultSet::vertices([]),
            };
            let live: Vec<NodeId> = (0..n)
                .map(NodeId::new)
                .filter(|v| !failures.vertex_faults().contains(v))
                .collect();
            let pairs = (0..args.batch)
                .map(|_| {
                    let i = rng.gen_range(0..live.len());
                    let mut j = rng.gen_range(0..live.len() - 1);
                    if j >= i {
                        j += 1;
                    }
                    (live[i], live[j])
                })
                .collect();
            (failures, pairs)
        })
        .collect()
}

fn run_serve(args: ServeArgs) -> Result<(), String> {
    let bytes = std::fs::read(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path.display()))?;
    let loaded = if args.in_place {
        // Zero-copy open: the serving tables stay in the file buffer —
        // mmap(2) where the platform has it, an aligned heap copy
        // otherwise (same bytes, same validation, same answers).
        let shared = if mmapio::Mmap::supported() {
            let file = std::fs::File::open(&args.path)
                .map_err(|e| format!("cannot open {}: {e}", args.path.display()))?;
            let map = mmapio::Mmap::map_file(&file)
                .map_err(|e| format!("cannot mmap {}: {e}", args.path.display()))?;
            SharedBytes::from_source(Arc::new(map))
        } else {
            SharedBytes::copy_aligned(&bytes)
        };
        let mapped = FrozenSpanner::open(shared).map_err(|e| hostile(&args.path, e.code(), &e))?;
        Arc::new(mapped.into_inner())
    } else {
        Arc::new(FrozenSpanner::decode(&bytes).map_err(|e| hostile(&args.path, e.code(), &e))?)
    };
    let parent = loaded
        .parent()
        .map_err(|e| hostile(&args.path, e.code(), &e))?
        .ok_or("artifact carries no parent graph; rebuild cross-check needs one (use `spanner-artifact build`)")?
        .clone();
    let budget = loaded
        .budget()
        .ok_or("artifact carries no fault budget; rebuild cross-check needs one")?;
    if loaded.node_count() < 3 {
        return Err("artifact too small for a serve workload (need >= 3 vertices)".into());
    }
    println!(
        "loaded {} ({}): {} nodes, {} edges, stretch {}, f = {}, {} model",
        args.path.display(),
        if args.in_place {
            if loaded.is_in_place() {
                "in place, zero-copy"
            } else {
                "in place, aligned copy"
            }
        } else {
            "eager decode"
        },
        loaded.node_count(),
        loaded.edge_count(),
        loaded.stretch(),
        budget,
        loaded.model()
    );

    // In-memory rebuild from the embedded parent: same construction, so
    // the artifact on disk must be its canonical encoding, byte for
    // byte — after re-laying the rebuild out in the on-disk artifact's
    // own version/witness layout.
    let fresh = FtGreedy::new(parent.as_ref(), loaded.stretch())
        .faults(budget)
        .model(loaded.model())
        .run()
        .freeze(parent.as_ref());
    let rebuilt = Arc::new(if loaded.witnesses_detached() {
        fresh.detach_witnesses()
    } else if loaded.witnesses_sharded() {
        fresh.to_v2_sharded()
    } else if loaded.version() == ARTIFACT_VERSION_V2 {
        fresh.to_v2()
    } else {
        fresh
    });
    if rebuilt.encode() != bytes {
        return Err(
            "rebuilt construction does not re-encode to the artifact's bytes — \
             the file does not describe this parent/stretch/budget construction"
                .into(),
        );
    }
    println!("rebuild cross-check: construction re-encodes byte-identically");

    let plan = plan_epochs(&loaded, &args);
    let from_disk = EpochServer::new(Arc::clone(&loaded));
    let from_disk_pooled = EpochServer::new(Arc::clone(&loaded)).with_threads(args.threads);
    let from_memory = EpochServer::new(Arc::clone(&rebuilt));
    let mut served = 0usize;
    let mut errors = 0usize;
    for (epoch, (failures, pairs)) in plan.iter().enumerate() {
        let reference: Vec<Result<Route, RouteError>> =
            from_memory.epoch(failures).route_batch(pairs);
        if from_disk.epoch(failures).route_batch(pairs) != reference {
            return Err(format!(
                "epoch {epoch}: decoded artifact's sequential batch diverged from the in-memory rebuild"
            ));
        }
        if from_disk_pooled.epoch(failures).par_route_batch(pairs) != reference {
            return Err(format!(
                "epoch {epoch}: decoded artifact's pooled batch diverged from the in-memory rebuild"
            ));
        }
        served += reference.len();
        errors += reference.iter().filter(|a| a.is_err()).count();
        println!(
            "  epoch {epoch}: {} faults, {} queries, {} unreachable/failed — bit-identical across disk/memory/pool",
            failures.len(),
            pairs.len(),
            reference.iter().filter(|a| a.is_err()).count()
        );
    }
    println!(
        "served {served} queries over {} epochs ({errors} error answers), all bit-identical to the in-memory rebuild",
        plan.len()
    );
    Ok(())
}

fn run_replay(dirs: Vec<PathBuf>) -> Result<(), String> {
    let mut clean = true;
    for dir in &dirs {
        let report = corpus::replay_dir(dir, true)?;
        println!("{}: {} entries", dir.display(), report.files);
        for line in report.count_lines() {
            println!("  {line}");
        }
        for mismatch in &report.mismatches {
            eprintln!("MISMATCH {}: {mismatch}", dir.display());
        }
        for failure in &report.failures {
            eprintln!("CONTRACT {}: {failure}", dir.display());
        }
        clean &= report.is_clean();
    }
    if !clean {
        return Err("corpus replay found mismatches or contract violations".into());
    }
    println!("replay clean: every entry matched its expected outcome");
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main(
        "spanner-artifact",
        USAGE,
        parse_args,
        |command| match command {
            Command::Build(args) => run_build(args),
            Command::Inspect(path) => run_inspect(path),
            Command::Migrate(args) => run_migrate(args),
            Command::Serve(args) => run_serve(args),
            Command::Replay(dirs) => run_replay(dirs),
        },
    )
}
