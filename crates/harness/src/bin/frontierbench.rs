//! `frontierbench` — the construction scale frontier, as a committed
//! artifact (the build-side analogue of `coldbench`).
//!
//! Usage:
//!
//! ```text
//! frontierbench [--smoke | --quick | --full] [--threads N] [--repeats R] [--out PATH]
//! frontierbench --check PATH
//! ```
//!
//! Builds f-VFT spanners of random geometric networks of increasing
//! `n`, through both construction paths: the partitioned sharded
//! FT-greedy with a boundary stitch (`spanner_core::partition`, with
//! per-phase partition/build/stitch wall times) and — up to a per-scale
//! cutoff — the monolithic pooled FT-greedy it replaces at the
//! frontier. Writes one JSON document (`BENCH_9.json` by default,
//! schema `frontier-1`) **after** asserting the shared worker pool
//! spawned exactly once per construction and auditing the smallest
//! cell's partitioned output against the stretch contract under
//! sampled fault sets.
//!
//! `--check` re-reads any such artifact with the strict parser in
//! [`spanner_harness::json`] and validates the schema, including — for
//! full-scale documents, i.e. the committed `BENCH_9.json` — the
//! committed gates: a partitioned build at `n ≥ 10^4`, a ≥4x speedup
//! over monolithic at the largest cell both finish, and ≤1.25x size
//! inflation at every overlapping cell. CI's bench-smoke job runs a
//! smoke emission plus that check so the construction frontier cannot
//! silently rot.

use spanner_harness::cli::{self, Parsed};
use spanner_harness::experiments::Scale;
use spanner_harness::frontier;
use spanner_harness::json;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    out: PathBuf,
    threads: usize,
    repeats: usize,
    check: Option<PathBuf>,
}

const USAGE: &str = "usage: frontierbench [--smoke|--quick|--full] [--threads N] [--repeats R] [--out PATH]\n       frontierbench --check PATH";

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

fn parse_args() -> Result<Parsed<Args>, String> {
    let mut args = Args {
        scale: Scale::Full,
        out: PathBuf::from("BENCH_9.json"),
        threads: 0, // 0 = available parallelism
        repeats: 0, // 0 = scale default
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.scale = Scale::Smoke,
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--out" => args.out = PathBuf::from(cli::value_for(&mut it, "--out")?),
            "--check" => {
                args.check = Some(PathBuf::from(cli::value_for(&mut it, "--check")?));
            }
            "--threads" => args.threads = cli::parsed_value(&mut it, "--threads")?,
            "--repeats" => args.repeats = cli::parsed_value(&mut it, "--repeats")?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.repeats == 0 {
        args.repeats = match args.scale {
            Scale::Smoke => 1,
            Scale::Quick => 2,
            Scale::Full => 2,
        };
    }
    if args.threads == 0 {
        args.threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    }
    Ok(Parsed::Run(args))
}

fn run_bench(args: &Args) -> Result<(), String> {
    println!(
        "frontierbench: scale={} repeats={} threads={} -> {}",
        scale_name(args.scale),
        args.repeats,
        args.threads,
        args.out.display()
    );
    // sweep() itself fails on a pool-reuse or contract-audit violation,
    // so a violating run never reaches the write below.
    let cells = frontier::sweep(args.scale, args.repeats, args.threads)?;
    for cell in &cells {
        let p = &cell.partitioned;
        let mono = match cell.monolithic {
            Some(m) => format!(
                "mono {:>9.1} ms  speedup {:>6.2}x  inflation {:.4}x",
                m.wall_secs * 1e3,
                cell.speedup().expect("both ran"),
                cell.inflation().expect("both ran"),
            ),
            None => "mono beyond cutoff".to_string(),
        };
        println!(
            "  n={:<6} m={:<6} shards={:<3} part {:>8.1} ms (split {:>6.1} + build {:>8.1} + stitch {:>7.1})  edges={:<6} | {}",
            cell.spec.n,
            cell.m,
            p.shards,
            p.total_secs() * 1e3,
            p.partition_secs * 1e3,
            p.build_secs * 1e3,
            p.stitch_secs * 1e3,
            p.edges_kept,
            mono,
        );
    }
    let doc = frontier::artifact(scale_name(args.scale), args.repeats, args.threads, &cells);
    let text = format!("{doc}\n");
    // Self-check before writing: the artifact must parse with the same
    // strict parser CI uses and satisfy its own schema (the full-scale
    // gates included — a regression fails here, before anything lands).
    let parsed =
        json::parse(&text).map_err(|e| format!("internal error: emitted invalid JSON: {e}"))?;
    frontier::check_artifact(&parsed)
        .map_err(|e| format!("emitted artifact fails its own schema: {e}"))?;
    std::fs::write(&args.out, &text)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    println!("wrote {}", args.out.display());
    Ok(())
}

fn run_check(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    frontier::check_artifact(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    let records = doc
        .get("records")
        .and_then(json::JsonValue::as_array)
        .expect("checked above");
    println!(
        "{}: ok ({} records, schema {})",
        path.display(),
        records.len(),
        frontier::SCHEMA
    );
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main("frontierbench", USAGE, parse_args, |args| {
        match &args.check {
            Some(path) => run_check(path),
            None => run_bench(&args),
        }
    })
}
