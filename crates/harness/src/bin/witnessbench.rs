//! `witnessbench` — the per-edge witness access trajectory, as a
//! committed artifact (the selective-access analogue of `coldbench`).
//!
//! Usage:
//!
//! ```text
//! witnessbench [--smoke | --quick | --full] [--repeats R] [--out PATH]
//! witnessbench --check PATH
//! ```
//!
//! Measures open-to-k-lookups over zero-copy opens of deterministically
//! rebuilt artifacts, through both witness layouts: the monolithic map
//! (the first `witnesses_for` decodes the whole section) and the
//! sharded offset index (two index words plus one record per lookup —
//! O(|F_e|) bytes). Bytes touched come from the spanner's own
//! instrumented counter, not wall-clock inference. Writes one JSON
//! document (`BENCH_10.json` by default, schema `witnessbench-1`)
//! **after** asserting every probed fault set was bit-identical across
//! both layouts and the eager decode.
//!
//! `--check` re-reads any such artifact with the strict parser in
//! [`spanner_harness::json`] and validates the schema, including — for
//! full-scale documents, i.e. the committed `BENCH_10.json` — the
//! committed gate: on the largest artifact the monolithic path must
//! touch at least 5x more witness bytes than the sharded path. CI's
//! bench-smoke job runs a smoke emission plus that check so the
//! sharded index cannot silently rot.

use spanner_harness::cli::{self, Parsed};
use spanner_harness::experiments::{ExperimentContext, Scale};
use spanner_harness::json;
use spanner_harness::witness_access;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    out: PathBuf,
    repeats: usize,
    check: Option<PathBuf>,
}

const USAGE: &str = "usage: witnessbench [--smoke|--quick|--full] [--repeats R] [--out PATH]\n       witnessbench --check PATH";

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

fn parse_args() -> Result<Parsed<Args>, String> {
    let mut args = Args {
        scale: Scale::Full,
        out: PathBuf::from("BENCH_10.json"),
        repeats: 0, // 0 = scale default
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.scale = Scale::Smoke,
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--out" => args.out = PathBuf::from(cli::value_for(&mut it, "--out")?),
            "--check" => {
                args.check = Some(PathBuf::from(cli::value_for(&mut it, "--check")?));
            }
            "--repeats" => args.repeats = cli::parsed_value(&mut it, "--repeats")?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.repeats == 0 {
        args.repeats = match args.scale {
            Scale::Smoke => 1,
            Scale::Quick => 3,
            Scale::Full => 5,
        };
    }
    Ok(Parsed::Run(args))
}

fn run_bench(args: &Args) -> Result<(), String> {
    let ctx = ExperimentContext::new(args.scale);
    println!(
        "witnessbench: scale={} repeats={} -> {}",
        scale_name(args.scale),
        args.repeats,
        args.out.display()
    );
    let cells = witness_access::sweep(&ctx, args.repeats);
    let mut mismatches = 0usize;
    for cell in &cells {
        if !cell.identical {
            mismatches += 1;
        }
        println!(
            "  n={:<4} edges={:<5} probes={:<2} mono touched {:>8} B | sharded {:>6} B  ({:>7.2}x)  mono {:>8.1} us | sharded {:>8.1} us  identical={}",
            cell.n,
            cell.edges,
            cell.probes,
            cell.mono_touched,
            cell.sharded_touched,
            cell.bytes_ratio(),
            cell.mono_secs * 1e6,
            cell.sharded_secs * 1e6,
            cell.identical,
        );
    }
    let doc = witness_access::artifact(scale_name(args.scale), args.repeats, &cells);
    let text = format!("{doc}\n");
    // Self-check before writing: the artifact must parse with the same
    // strict parser CI uses and satisfy its own schema (the 5x gate
    // included — a regression fails here, before anything is written).
    let parsed =
        json::parse(&text).map_err(|e| format!("internal error: emitted invalid JSON: {e}"))?;
    if mismatches == 0 {
        witness_access::check_artifact(&parsed)
            .map_err(|e| format!("emitted artifact fails its own schema: {e}"))?;
    }
    std::fs::write(&args.out, &text)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    println!("wrote {}", args.out.display());
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} cell(s) returned different fault sets across witness layouts — serving must be bit-identical"
        ));
    }
    Ok(())
}

fn run_check(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    witness_access::check_artifact(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    let records = doc
        .get("records")
        .and_then(json::JsonValue::as_array)
        .expect("checked above");
    let schema = doc
        .get("schema")
        .and_then(json::JsonValue::as_str)
        .expect("checked above");
    println!(
        "{}: ok ({} records, schema {schema})",
        path.display(),
        records.len(),
    );
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main("witnessbench", USAGE, parse_args, |args| {
        match &args.check {
            Some(path) => run_check(path),
            None => run_bench(&args),
        }
    })
}
