//! `coldbench` — the cold-start perf trajectory, as a committed
//! artifact (the replica-spin-up analogue of `querybench`).
//!
//! Usage:
//!
//! ```text
//! coldbench [--smoke | --quick | --full] [--repeats R] [--out PATH]
//! coldbench --check PATH
//! ```
//!
//! Measures open-to-first-route on deterministically rebuilt artifacts
//! of increasing size, through both open paths: v1 full `decode`
//! (every section materialized before the first answer) and v2
//! in-place `open` (envelope validated, serving tables pointed at the
//! buffer, parent and witnesses deferred). Writes one JSON document
//! (`BENCH_8.json` by default, schema `coldbench-1`) **after**
//! asserting both paths returned bit-identical first answers in every
//! cell.
//!
//! `--check` re-reads any such artifact with the strict parser in
//! [`spanner_harness::json`] and validates the schema, including — for
//! full-scale documents, i.e. the committed `BENCH_8.json` — the
//! committed gate: the largest artifact's in-place speedup must reach
//! the 10x cold-start floor. CI's bench-smoke job runs a smoke
//! emission plus that check so the zero-copy open path cannot
//! silently rot.

use spanner_harness::cli::{self, Parsed};
use spanner_harness::coldstart;
use spanner_harness::experiments::{ExperimentContext, Scale};
use spanner_harness::json;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    out: PathBuf,
    repeats: usize,
    check: Option<PathBuf>,
}

const USAGE: &str = "usage: coldbench [--smoke|--quick|--full] [--repeats R] [--out PATH]\n       coldbench --check PATH";

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

fn parse_args() -> Result<Parsed<Args>, String> {
    let mut args = Args {
        scale: Scale::Full,
        out: PathBuf::from("BENCH_8.json"),
        repeats: 0, // 0 = scale default
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.scale = Scale::Smoke,
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--out" => args.out = PathBuf::from(cli::value_for(&mut it, "--out")?),
            "--check" => {
                args.check = Some(PathBuf::from(cli::value_for(&mut it, "--check")?));
            }
            "--repeats" => args.repeats = cli::parsed_value(&mut it, "--repeats")?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.repeats == 0 {
        args.repeats = match args.scale {
            Scale::Smoke => 1,
            Scale::Quick => 3,
            Scale::Full => 5,
        };
    }
    Ok(Parsed::Run(args))
}

fn run_bench(args: &Args) -> Result<(), String> {
    let ctx = ExperimentContext::new(args.scale);
    println!(
        "coldbench: scale={} repeats={} -> {}",
        scale_name(args.scale),
        args.repeats,
        args.out.display()
    );
    let cells = coldstart::sweep(&ctx, args.repeats);
    let mut mismatches = 0usize;
    for cell in &cells {
        if !cell.identical {
            mismatches += 1;
        }
        println!(
            "  n={:<4} edges={:<5} v1 {:>7} B  v2 {:>7} B  decode {:>9.1} us | open {:>8.1} us  ({:>6.2}x)  identical={}",
            cell.n,
            cell.edges,
            cell.v1_bytes,
            cell.v2_bytes,
            cell.decode_secs * 1e6,
            cell.open_secs * 1e6,
            cell.speedup(),
            cell.identical,
        );
    }
    let doc = coldstart::artifact(scale_name(args.scale), args.repeats, &cells);
    let text = format!("{doc}\n");
    // Self-check before writing: the artifact must parse with the same
    // strict parser CI uses and satisfy its own schema (the 10x gate
    // included — a regression fails here, before anything is written).
    let parsed =
        json::parse(&text).map_err(|e| format!("internal error: emitted invalid JSON: {e}"))?;
    if mismatches == 0 {
        coldstart::check_artifact(&parsed)
            .map_err(|e| format!("emitted artifact fails its own schema: {e}"))?;
    }
    std::fs::write(&args.out, &text)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    println!("wrote {}", args.out.display());
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} cell(s) returned different first answers across open paths — serving must be bit-identical"
        ));
    }
    Ok(())
}

fn run_check(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    coldstart::check_artifact(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    let records = doc
        .get("records")
        .and_then(json::JsonValue::as_array)
        .expect("checked above");
    let schema = doc
        .get("schema")
        .and_then(json::JsonValue::as_str)
        .expect("checked above");
    println!(
        "{}: ok ({} records, schema {schema})",
        path.display(),
        records.len(),
    );
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main("coldbench", USAGE, parse_args, |args| match &args.check {
        Some(path) => run_check(path),
        None => run_bench(&args),
    })
}
