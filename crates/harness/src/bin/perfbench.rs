//! `perfbench` — the FT-greedy perf trajectory, as a committed artifact.
//!
//! Usage:
//!
//! ```text
//! perfbench [--smoke | --quick | --full] [--threads N] [--repeats R] [--out PATH]
//! perfbench --check PATH
//! ```
//!
//! Runs the E1-style workload (random geometric and complete graphs,
//! stretch 3, f ∈ {1, 2}) through three FT-greedy oracle paths —
//!
//! * `reference`: the frozen pre-optimization branching oracle
//!   (fresh allocations per query, adjacency-list Dijkstra),
//! * `optimized`: the default branching path (incremental CSR view,
//!   per-construction scratch, Zobrist memo),
//! * `pooled`: the persistent-worker-pool parallel path,
//!
//! — and writes one JSON document (`BENCH_2.json` by default) with
//! per-cell wall times, oracle work counters and speedups vs the
//! reference, after asserting that all three paths produced identical
//! spanners. `--check` re-reads any such artifact with the strict parser
//! in [`spanner_harness::json`] and verifies the schema, which is what
//! the CI bench-smoke job runs so the pipeline cannot silently rot.

use spanner_core::{FtGreedy, FtSpanner, OracleKind};
use spanner_faults::reference::ReferenceBranchingOracle;
use spanner_faults::OracleStats;
use spanner_graph::generators::{complete, random_geometric, with_uniform_weights};
use spanner_graph::Graph;
use spanner_harness::cli::{self, Parsed};
use spanner_harness::json::{self, num, obj, s, JsonValue};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// The artifact schema tag; bump when the layout changes. `bench-3`
/// added the required `host` block (logical CPUs, rustc, OS/arch) so
/// artifacts are comparable across machines.
const SCHEMA: &str = "vft-spanner/bench-3";

/// The pre-host tag `--check` still accepts, so committed artifacts
/// from earlier PRs keep validating (`host` optional there).
const LEGACY_SCHEMA: &str = "vft-spanner/bench-2";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Scale {
    Smoke,
    Quick,
    Full,
}

impl Scale {
    fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

struct Args {
    scale: Scale,
    out: PathBuf,
    threads: usize,
    repeats: usize,
    check: Option<PathBuf>,
}

const USAGE: &str = "usage: perfbench [--smoke|--quick|--full] [--threads N] [--repeats R] [--out PATH]\n       perfbench --check PATH";

fn parse_args() -> Result<Parsed<Args>, String> {
    let mut args = Args {
        scale: Scale::Full,
        out: PathBuf::from("BENCH_2.json"),
        threads: 4,
        repeats: 0, // 0 = scale default
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.scale = Scale::Smoke,
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--out" => args.out = PathBuf::from(cli::value_for(&mut it, "--out")?),
            "--check" => {
                args.check = Some(PathBuf::from(cli::value_for(&mut it, "--check")?));
            }
            "--threads" => args.threads = cli::parsed_value(&mut it, "--threads")?,
            "--repeats" => args.repeats = cli::parsed_value(&mut it, "--repeats")?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.repeats == 0 {
        args.repeats = match args.scale {
            Scale::Smoke => 1,
            Scale::Quick => 2,
            Scale::Full => 3,
        };
    }
    args.threads = args.threads.max(1);
    Ok(Parsed::Run(args))
}

/// One workload cell: a graph family instance at one fault budget.
struct Cell {
    family: &'static str,
    n: usize,
    f: usize,
    graph: Graph,
}

fn workload(scale: Scale) -> Vec<Cell> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let (n_complete, n_geometric, radius, budgets): (usize, usize, f64, &[usize]) = match scale {
        Scale::Smoke => (10, 24, 0.45, &[1]),
        Scale::Quick => (18, 48, 0.32, &[1, 2]),
        Scale::Full => (24, 64, 0.28, &[1, 2]),
    };
    let mut cells = Vec::new();
    for &f in budgets {
        // Fresh deterministic generators per cell: every oracle path sees
        // the exact same instance.
        let mut rng = StdRng::seed_from_u64(2);
        cells.push(Cell {
            family: "complete",
            n: n_complete,
            f,
            graph: with_uniform_weights(&complete(n_complete), 1, 32, &mut rng),
        });
        let mut rng = StdRng::seed_from_u64(3);
        cells.push(Cell {
            family: "geometric",
            n: n_geometric,
            f,
            graph: random_geometric(n_geometric, radius, &mut rng),
        });
    }
    cells
}

struct Measurement {
    wall_ms: f64,
    edges_kept: usize,
    stats: OracleStats,
}

/// Runs one construction `repeats` times, keeping the minimum wall time
/// (the standard "least noisy sample" estimator for short benchmarks).
fn measure(repeats: usize, mut run: impl FnMut() -> FtSpanner) -> (Measurement, FtSpanner) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let ft = run();
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(elapsed);
        last = Some(ft);
    }
    let ft = last.expect("at least one repeat");
    (
        Measurement {
            wall_ms: best_ms,
            edges_kept: ft.spanner().edge_count(),
            stats: ft.stats(),
        },
        ft,
    )
}

fn stats_json(stats: OracleStats) -> JsonValue {
    obj([
        ("nodes_explored", num(stats.nodes_explored as f64)),
        (
            "shortest_path_queries",
            num(stats.shortest_path_queries as f64),
        ),
        ("packing_prunes", num(stats.packing_prunes as f64)),
        ("memo_hits", num(stats.memo_hits as f64)),
        ("cut_shortcuts", num(stats.cut_shortcuts as f64)),
        ("scratch_rebuilds", num(stats.scratch_rebuilds as f64)),
        ("pool_spawns", num(stats.pool_spawns as f64)),
    ])
}

fn record_json(cell: &Cell, oracle: &str, m: &Measurement) -> JsonValue {
    obj([
        ("family", s(cell.family)),
        ("n", num(cell.n as f64)),
        ("m_input", num(cell.graph.edge_count() as f64)),
        ("f", num(cell.f as f64)),
        ("stretch", num(3.0)),
        ("oracle", s(oracle)),
        ("wall_ms", num((m.wall_ms * 1000.0).round() / 1000.0)),
        ("edges_kept", num(m.edges_kept as f64)),
        ("stats", stats_json(m.stats)),
    ])
}

fn run_bench(args: &Args) -> Result<(), String> {
    let mut records = Vec::new();
    let mut summary = Vec::new();
    println!(
        "perfbench: scale={} repeats={} threads={} -> {}",
        args.scale.name(),
        args.repeats,
        args.threads,
        args.out.display()
    );
    for cell in workload(args.scale) {
        let stretch = 3u64;
        let (reference, ref_ft) = measure(args.repeats, || {
            let mut oracle = ReferenceBranchingOracle::new();
            FtGreedy::new(&cell.graph, stretch)
                .faults(cell.f)
                .run_with_oracle(&mut oracle)
        });
        let (optimized, opt_ft) = measure(args.repeats, || {
            FtGreedy::new(&cell.graph, stretch).faults(cell.f).run()
        });
        let (pooled, pool_ft) = measure(args.repeats, || {
            FtGreedy::new(&cell.graph, stretch)
                .faults(cell.f)
                .oracle(OracleKind::Parallel(args.threads))
                .run()
        });
        // The perf claim is only meaningful if the outputs are identical.
        for (label, ft) in [("optimized", &opt_ft), ("pooled", &pool_ft)] {
            if ft.spanner().parent_edge_ids() != ref_ft.spanner().parent_edge_ids()
                || ft.witnesses() != ref_ft.witnesses()
            {
                return Err(format!(
                    "{label} path diverged from reference on {} n={} f={}",
                    cell.family, cell.n, cell.f
                ));
            }
        }
        let speedup_optimized = reference.wall_ms / optimized.wall_ms;
        let speedup_pooled = reference.wall_ms / pooled.wall_ms;
        println!(
            "  {:<10} n={:<3} m={:<4} f={}  reference {:>9.2} ms | optimized {:>9.2} ms ({:>4.2}x) | pooled {:>9.2} ms ({:>4.2}x)",
            cell.family,
            cell.n,
            cell.graph.edge_count(),
            cell.f,
            reference.wall_ms,
            optimized.wall_ms,
            speedup_optimized,
            pooled.wall_ms,
            speedup_pooled,
        );
        records.push(record_json(&cell, "reference", &reference));
        records.push(record_json(&cell, "optimized", &optimized));
        records.push(record_json(&cell, "pooled", &pooled));
        summary.push(obj([
            ("family", s(cell.family)),
            ("n", num(cell.n as f64)),
            ("f", num(cell.f as f64)),
            (
                "speedup_optimized",
                num((speedup_optimized * 100.0).round() / 100.0),
            ),
            (
                "speedup_pooled",
                num((speedup_pooled * 100.0).round() / 100.0),
            ),
            ("outputs_identical", JsonValue::Bool(true)),
        ]));
    }
    let doc = obj([
        ("schema", s(SCHEMA)),
        (
            "generated_by",
            s("cargo run --release -p spanner-harness --bin perfbench"),
        ),
        ("host", spanner_harness::host::host_json()),
        ("scale", s(args.scale.name())),
        ("stretch", num(3.0)),
        ("repeats", num(args.repeats as f64)),
        ("pooled_threads", num(args.threads as f64)),
        ("records", JsonValue::Array(records)),
        ("summary", JsonValue::Array(summary)),
    ]);
    let text = format!("{doc}\n");
    // Self-check before writing: the artifact must parse with the same
    // strict parser CI uses.
    json::parse(&text).map_err(|e| format!("internal error: emitted invalid JSON: {e}"))?;
    std::fs::write(&args.out, &text)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    println!("wrote {}", args.out.display());
    Ok(())
}

/// `--check`: parse the artifact and verify the bench-3 schema shape
/// (the legacy bench-2 tag stays accepted, without the host block).
fn run_check(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCHEMA && schema != LEGACY_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (want {SCHEMA:?} or legacy {LEGACY_SCHEMA:?})"
        ));
    }
    if schema == SCHEMA {
        spanner_harness::host::check_host(&doc)?;
    }
    let records = doc
        .get("records")
        .and_then(JsonValue::as_array)
        .ok_or("missing records array")?;
    if records.is_empty() {
        return Err("empty records array".into());
    }
    for (i, record) in records.iter().enumerate() {
        for key in [
            "family",
            "n",
            "f",
            "oracle",
            "wall_ms",
            "edges_kept",
            "stats",
        ] {
            if record.get(key).is_none() {
                return Err(format!("record {i} missing key {key:?}"));
            }
        }
        match record.get("wall_ms").and_then(JsonValue::as_f64) {
            Some(ms) if ms.is_finite() && ms >= 0.0 => {}
            _ => return Err(format!("record {i} has a bad wall_ms")),
        }
    }
    let summary = doc
        .get("summary")
        .and_then(JsonValue::as_array)
        .ok_or("missing summary array")?;
    for (i, row) in summary.iter().enumerate() {
        if row.get("outputs_identical") != Some(&JsonValue::Bool(true)) {
            return Err(format!(
                "summary row {i} does not certify identical outputs"
            ));
        }
    }
    println!(
        "{}: ok ({} records, {} summary rows)",
        path.display(),
        records.len(),
        summary.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main("perfbench", USAGE, parse_args, |args| match &args.check {
        Some(path) => run_check(path),
        None => run_bench(&args),
    })
}
