//! `querybench` — the serving-side perf trajectory, as a committed
//! artifact (the query-path analogue of `perfbench`).
//!
//! Usage:
//!
//! ```text
//! querybench [--smoke | --quick | --full] [--threads N] [--repeats R] [--out PATH]
//! querybench --tenants [--smoke | --quick | --full] [--repeats R] [--out PATH]
//! querybench --check PATH
//! ```
//!
//! The default family runs the E15 workload — epoch scenarios (no
//! failures, `f` random failures, witness replay) × fault budgets ×
//! batch sizes over an FT spanner of a geometric network — through
//! three read paths: the one-query-per-epoch `route_one` reference
//! (fresh fault mask per query), sequential `EpochServer` session
//! batches, and the pooled `par_route_batch` worker-pool path. Writes
//! one JSON document
//! (`BENCH_4.json` by default, schema `querybench-1`) with per-cell
//! queries/second and speedups vs the router baseline, **after**
//! asserting all three paths returned bit-identical answers — the run
//! fails on any sequential-vs-parallel (or router) mismatch.
//!
//! `--tenants` runs the E16 workload instead — tenants × serving
//! threads × batch over one shared `EpochServer` — through the
//! per-tenant router reference, shared scoped-thread sessions, and the
//! `BatchCoalescer` flush path; `BENCH_6.json` by default, schema
//! `querybench-2`, with the additional hard gate that tenant sessions
//! certifiably shared interned fault views.
//!
//! `--check` re-reads any such artifact with the strict parser in
//! [`spanner_harness::json`], dispatches on the document's schema tag,
//! and validates the matching schema (including every record's
//! identity certification), which is what the CI bench-smoke job runs
//! so the serving pipeline cannot silently rot.

use spanner_harness::cli::{self, Parsed};
use spanner_harness::experiments::{e15_throughput, e16_tenants, ExperimentContext, Scale};
use spanner_harness::json;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    tenants: bool,
    out: Option<PathBuf>,
    threads: usize,
    repeats: usize,
    check: Option<PathBuf>,
}

const USAGE: &str = "usage: querybench [--smoke|--quick|--full] [--threads N] [--repeats R] [--out PATH]\n       querybench --tenants [--smoke|--quick|--full] [--repeats R] [--out PATH]\n       querybench --check PATH";

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

fn parse_args() -> Result<Parsed<Args>, String> {
    let mut args = Args {
        scale: Scale::Full,
        tenants: false,
        out: None, // None = family default (BENCH_4.json / BENCH_6.json)
        threads: 4,
        repeats: 0, // 0 = scale default
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.scale = Scale::Smoke,
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--tenants" => args.tenants = true,
            "--out" => args.out = Some(PathBuf::from(cli::value_for(&mut it, "--out")?)),
            "--check" => {
                args.check = Some(PathBuf::from(cli::value_for(&mut it, "--check")?));
            }
            "--threads" => args.threads = cli::parsed_value(&mut it, "--threads")?,
            "--repeats" => args.repeats = cli::parsed_value(&mut it, "--repeats")?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.repeats == 0 {
        args.repeats = match args.scale {
            Scale::Smoke => 1,
            Scale::Quick => 2,
            Scale::Full => 3,
        };
    }
    args.threads = args.threads.max(2);
    Ok(Parsed::Run(args))
}

fn run_bench(args: &Args) -> Result<(), String> {
    let ctx = ExperimentContext::new(args.scale);
    let out = args.out.clone().unwrap_or_else(|| {
        PathBuf::from(if args.tenants {
            "BENCH_6.json"
        } else {
            "BENCH_4.json"
        })
    });
    println!(
        "querybench{}: scale={} repeats={} threads={} -> {}",
        if args.tenants { " --tenants" } else { "" },
        scale_name(args.scale),
        args.repeats,
        args.threads,
        out.display()
    );
    let (doc, mismatches) = if args.tenants {
        tenants_doc(&ctx, args)
    } else {
        throughput_doc(&ctx, args)
    };
    let text = format!("{doc}\n");
    // Self-check before writing: the artifact must parse with the same
    // strict parser CI uses and satisfy its own schema. A mismatch cell
    // makes this fail too, but report it with the sharper message below.
    let parsed =
        json::parse(&text).map_err(|e| format!("internal error: emitted invalid JSON: {e}"))?;
    if mismatches == 0 {
        check_by_schema(&parsed)
            .map_err(|e| format!("internal error: emitted off-schema artifact: {e}"))?;
    }
    std::fs::write(&out, &text).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("wrote {}", out.display());
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} cell(s) returned different answers across read paths — serving must be bit-identical"
        ));
    }
    Ok(())
}

/// The default (E15) family: scenarios × budgets × batch sizes.
fn throughput_doc(ctx: &ExperimentContext, args: &Args) -> (json::JsonValue, usize) {
    let cells = e15_throughput::sweep(ctx, args.threads, args.repeats);
    let mut mismatches = 0usize;
    for cell in &cells {
        if !cell.identical {
            mismatches += 1;
        }
        println!(
            "  {:<15} f={} batch={:<4}  router {:>9.0} q/s | batch {:>9.0} q/s ({:>5.2}x) | par(x{}) {:>9.0} q/s ({:>5.2}x)  identical={}",
            cell.scenario,
            cell.f,
            cell.batch,
            cell.router_qps,
            cell.batch_qps,
            cell.speedup_batch(),
            cell.threads,
            cell.par_qps,
            cell.speedup_par(),
            cell.identical,
        );
    }
    let doc = e15_throughput::artifact(scale_name(args.scale), args.threads, args.repeats, &cells);
    (doc, mismatches)
}

/// The `--tenants` (E16) family: tenants × serving threads × batch.
fn tenants_doc(ctx: &ExperimentContext, args: &Args) -> (json::JsonValue, usize) {
    let cells = e16_tenants::sweep(ctx, args.repeats);
    let mut mismatches = 0usize;
    for cell in &cells {
        if !cell.identical {
            mismatches += 1;
        }
        println!(
            "  tenants={:<3} views={:<2} threads={} batch={:<4}  router {:>9.0} q/s | shared {:>9.0} q/s ({:>5.2}x) | coalesced {:>9.0} q/s ({:>5.2}x)  identical={}",
            cell.tenants,
            cell.views,
            cell.threads,
            cell.batch,
            cell.router_qps,
            cell.shared_qps,
            cell.speedup_shared(),
            cell.coalesced_qps,
            cell.speedup_coalesced(),
            cell.identical,
        );
    }
    let doc = e16_tenants::artifact(scale_name(args.scale), args.repeats, &cells);
    (doc, mismatches)
}

/// Dispatches a parsed artifact to the checker matching its schema tag.
fn check_by_schema(doc: &json::JsonValue) -> Result<(), String> {
    match doc.get("schema").and_then(json::JsonValue::as_str) {
        Some(e15_throughput::SCHEMA | e15_throughput::LEGACY_SCHEMA) => {
            e15_throughput::check_artifact(doc)
        }
        Some(e16_tenants::SCHEMA | e16_tenants::LEGACY_SCHEMA) => e16_tenants::check_artifact(doc),
        Some(other) => Err(format!(
            "unknown schema {other:?} (want {:?} or {:?}, or their legacy tags)",
            e15_throughput::SCHEMA,
            e16_tenants::SCHEMA
        )),
        None => Err("missing schema tag".into()),
    }
}

fn run_check(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    check_by_schema(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    let schema = doc
        .get("schema")
        .and_then(json::JsonValue::as_str)
        .expect("checked above");
    let records = doc
        .get("records")
        .and_then(json::JsonValue::as_array)
        .expect("checked above");
    println!(
        "{}: ok ({} records, schema {schema})",
        path.display(),
        records.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main("querybench", USAGE, parse_args, |args| match &args.check {
        Some(path) => run_check(path),
        None => run_bench(&args),
    })
}
