//! `querybench` — the serving-side perf trajectory, as a committed
//! artifact (the query-path analogue of `perfbench`).
//!
//! Usage:
//!
//! ```text
//! querybench [--smoke | --quick | --full] [--threads N] [--repeats R] [--out PATH]
//! querybench --check PATH
//! ```
//!
//! Runs the E15 workload — epoch scenarios (no failures, `f` random
//! failures, witness replay) × fault budgets × batch sizes over an FT
//! spanner of a geometric network — through three read paths: the
//! one-query-per-epoch `ResilientRouter` (the compatibility shim, every
//! call re-applies the failure set), sequential `QueryEngine` epoch
//! batches, and the pooled `par_route_batch` worker-pool path. Writes
//! one JSON document (`BENCH_4.json` by default) with per-cell
//! queries/second and speedups vs the router baseline, **after**
//! asserting all three paths returned bit-identical answers — the run
//! fails on any sequential-vs-parallel (or router) mismatch.
//!
//! `--check` re-reads any such artifact with the strict parser in
//! [`spanner_harness::json`] and validates the `querybench-1` schema
//! (including every record's identity certification), which is what the
//! CI bench-smoke job runs so the serving pipeline cannot silently rot.

use spanner_harness::cli::{self, Parsed};
use spanner_harness::experiments::{e15_throughput, ExperimentContext, Scale};
use spanner_harness::json;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    scale: Scale,
    out: PathBuf,
    threads: usize,
    repeats: usize,
    check: Option<PathBuf>,
}

const USAGE: &str = "usage: querybench [--smoke|--quick|--full] [--threads N] [--repeats R] [--out PATH]\n       querybench --check PATH";

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Smoke => "smoke",
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

fn parse_args() -> Result<Parsed<Args>, String> {
    let mut args = Args {
        scale: Scale::Full,
        out: PathBuf::from("BENCH_4.json"),
        threads: 4,
        repeats: 0, // 0 = scale default
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.scale = Scale::Smoke,
            "--quick" => args.scale = Scale::Quick,
            "--full" => args.scale = Scale::Full,
            "--out" => args.out = PathBuf::from(cli::value_for(&mut it, "--out")?),
            "--check" => {
                args.check = Some(PathBuf::from(cli::value_for(&mut it, "--check")?));
            }
            "--threads" => args.threads = cli::parsed_value(&mut it, "--threads")?,
            "--repeats" => args.repeats = cli::parsed_value(&mut it, "--repeats")?,
            "--help" | "-h" => return Ok(Parsed::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.repeats == 0 {
        args.repeats = match args.scale {
            Scale::Smoke => 1,
            Scale::Quick => 2,
            Scale::Full => 3,
        };
    }
    args.threads = args.threads.max(2);
    Ok(Parsed::Run(args))
}

fn run_bench(args: &Args) -> Result<(), String> {
    let ctx = ExperimentContext::new(args.scale);
    println!(
        "querybench: scale={} repeats={} threads={} -> {}",
        scale_name(args.scale),
        args.repeats,
        args.threads,
        args.out.display()
    );
    let cells = e15_throughput::sweep(&ctx, args.threads, args.repeats);
    let mut mismatches = 0usize;
    for cell in &cells {
        if !cell.identical {
            mismatches += 1;
        }
        println!(
            "  {:<15} f={} batch={:<4}  router {:>9.0} q/s | batch {:>9.0} q/s ({:>5.2}x) | par(x{}) {:>9.0} q/s ({:>5.2}x)  identical={}",
            cell.scenario,
            cell.f,
            cell.batch,
            cell.router_qps,
            cell.batch_qps,
            cell.speedup_batch(),
            cell.threads,
            cell.par_qps,
            cell.speedup_par(),
            cell.identical,
        );
    }
    let doc = e15_throughput::artifact(scale_name(args.scale), args.threads, args.repeats, &cells);
    let text = format!("{doc}\n");
    // Self-check before writing: the artifact must parse with the same
    // strict parser CI uses and satisfy its own schema. A mismatch cell
    // makes this fail too, but report it with the sharper message below.
    let parsed =
        json::parse(&text).map_err(|e| format!("internal error: emitted invalid JSON: {e}"))?;
    if mismatches == 0 {
        e15_throughput::check_artifact(&parsed)
            .map_err(|e| format!("internal error: emitted off-schema artifact: {e}"))?;
    }
    std::fs::write(&args.out, &text)
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
    println!("wrote {}", args.out.display());
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} cell(s) returned different answers across read paths — serving must be bit-identical"
        ));
    }
    Ok(())
}

fn run_check(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    e15_throughput::check_artifact(&doc).map_err(|e| format!("{}: {e}", path.display()))?;
    let records = doc
        .get("records")
        .and_then(json::JsonValue::as_array)
        .expect("checked above");
    println!(
        "{}: ok ({} throughput records)",
        path.display(),
        records.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    cli::run_main("querybench", USAGE, parse_args, |args| match &args.check {
        Some(path) => run_check(path),
        None => run_bench(&args),
    })
}
