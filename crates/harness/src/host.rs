//! Host metadata for bench envelopes.
//!
//! `BENCH_*.json` artifacts are committed and compared across PRs — and
//! eventually across machines (the reference container is 1-CPU; the
//! ROADMAP calls for regenerating the serving numbers on a real
//! multi-core box). Every envelope therefore records **where** it was
//! measured: logical CPU count, the exact `rustc` that built the bench,
//! and the OS/arch pair. The schema-bumped checkers
//! (`bench-3` / `querybench-3` / `querybench-4` / `coldbench-2` /
//! `frontier-1`) require the block; legacy tags stay checkable without
//! it so committed artifacts from earlier PRs keep validating.

use crate::json::{num, obj, s, JsonValue};

/// Number of logical CPUs visible to this process (at least 1).
pub fn logical_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The `rustc --version` banner of the toolchain on `PATH`, or
/// `"unknown"` when it cannot be queried (the bench still runs; the
/// artifact just says so).
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The host block recorded under the `"host"` key of every bench
/// envelope: `{logical_cpus, rustc, os, arch}`.
pub fn host_json() -> JsonValue {
    obj([
        ("logical_cpus", num(logical_cpus() as f64)),
        ("rustc", s(rustc_version())),
        ("os", s(std::env::consts::OS)),
        ("arch", s(std::env::consts::ARCH)),
    ])
}

/// Validates the `"host"` block of a parsed artifact (required for the
/// bumped schema tags).
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn check_host(doc: &JsonValue) -> Result<(), String> {
    let host = doc.get("host").ok_or("missing host block")?;
    let cpus = host
        .get("logical_cpus")
        .and_then(JsonValue::as_f64)
        .ok_or("host.logical_cpus missing or not a number")?;
    if !(cpus >= 1.0 && cpus.fract() == 0.0 && cpus.is_finite()) {
        return Err(format!(
            "host.logical_cpus {cpus} is not a positive integer"
        ));
    }
    for key in ["rustc", "os", "arch"] {
        let value = host
            .get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("host.{key} missing or not a string"))?;
        if value.is_empty() {
            return Err(format!("host.{key} is empty"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn host_json_is_self_checking() {
        let doc = obj([("host", host_json())]);
        check_host(&doc).expect("emitted host block must validate");
    }

    #[test]
    fn host_json_round_trips_through_the_strict_parser() {
        let doc = obj([("host", host_json())]);
        let reparsed = json::parse(&doc.to_string()).expect("host block must be valid JSON");
        check_host(&reparsed).expect("reparsed host block must validate");
    }

    #[test]
    fn check_host_rejects_missing_and_malformed() {
        assert!(check_host(&obj([])).is_err());
        let bad_cpus = obj([(
            "host",
            obj([
                ("logical_cpus", num(0.0)),
                ("rustc", s("rustc 1.0")),
                ("os", s("linux")),
                ("arch", s("x86_64")),
            ]),
        )]);
        assert!(check_host(&bad_cpus).is_err());
        let empty_rustc = obj([(
            "host",
            obj([
                ("logical_cpus", num(2.0)),
                ("rustc", s("")),
                ("os", s("linux")),
                ("arch", s("x86_64")),
            ]),
        )]);
        assert!(check_host(&empty_rustc).is_err());
    }

    #[test]
    fn rustc_version_is_nonempty() {
        assert!(!rustc_version().is_empty());
        assert!(logical_cpus() >= 1);
    }
}
