//! Per-edge witness access cost: sharded offset index vs monolithic map.
//!
//! The question behind the sharded witness layout
//! (`docs/ARTIFACT_FORMAT.md` §"tag 6") is selective access: a replica
//! serving a handful of witness-replay epochs needs the fault sets of a
//! few edges, not all of them. A monolithic witness map makes the first
//! `witnesses_for` decode the *entire* section; the sharded layout
//! resolves two index offsets and decodes exactly one record —
//! O(|F_e|) bytes per lookup.
//!
//! This module measures both layouts, open-to-k-lookups over zero-copy
//! opens of deterministically rebuilt artifacts, using the
//! instrumented byte accounting on the frozen spanner itself
//! ([`FrozenSpanner::witness_bytes_touched`]), and emits the committed
//! `BENCH_10.json` artifact (schema [`SCHEMA`]) through the
//! `witnessbench` binary. The hard gates: every probed edge's fault
//! set must be bit-identical across layouts (and the eager decode),
//! and — for full-scale documents, i.e. the committed `BENCH_10.json`
//! — on the largest artifact the monolithic path must touch at least
//! [`MIN_BYTES_RATIO`]× more witness bytes than the sharded path.

use crate::cell_seed;
use crate::experiments::ExperimentContext;
use crate::json::{num, obj, s, JsonValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{FrozenSpanner, FtGreedy};
use spanner_graph::generators::random_geometric;
use spanner_graph::{EdgeId, SharedBytes};
use std::time::Instant;

/// The witness-access artifact schema tag; bump when the layout changes.
pub const SCHEMA: &str = "vft-spanner/witnessbench-1";

/// The stretch target every witnessbench spanner is built for.
pub const STRETCH: u64 = 3;

/// The committed gate: on the largest full-scale artifact, resolving
/// the probe set through the monolithic layout must touch at least
/// this many times more witness bytes than through the sharded index.
pub const MIN_BYTES_RATIO: f64 = 5.0;

/// How many per-edge lookups each cell drives through both layouts.
pub const PROBES: usize = 8;

/// One witness-access cell: one artifact size, both layouts.
#[derive(Clone, Debug)]
pub struct WitnessCell {
    /// Network size the artifact was built over.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Spanner edges (== witness records).
    pub edges: usize,
    /// Per-edge lookups driven through each layout.
    pub probes: usize,
    /// Monolithic v2 artifact size in bytes.
    pub mono_artifact_bytes: usize,
    /// Sharded v2 artifact size in bytes.
    pub sharded_artifact_bytes: usize,
    /// Witness bytes touched resolving the probes, monolithic layout.
    pub mono_touched: u64,
    /// Witness bytes touched resolving the probes, sharded layout.
    pub sharded_touched: u64,
    /// Open-to-k-lookups wall time, monolithic (min over repeats).
    pub mono_secs: f64,
    /// Open-to-k-lookups wall time, sharded (min over repeats).
    pub sharded_secs: f64,
    /// Whether every probed fault set was bit-identical across the
    /// monolithic open, the sharded open, and the eager decode.
    pub identical: bool,
}

impl WitnessCell {
    /// Monolithic-over-sharded bytes-touched ratio, rounded the way the
    /// artifact records it.
    pub fn bytes_ratio(&self) -> f64 {
        round2(self.mono_touched as f64 / self.sharded_touched.max(1) as f64)
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Times `job` `repeats` times and keeps the minimum wall time (the
/// least-noisy sample) plus the last run's value.
fn best_of<T>(repeats: usize, mut job: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let out = job();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("repeats >= 1"))
}

/// The deterministic probe set: `PROBES` edge ids spread evenly across
/// the spanner's edge table (every cell resolves the same fraction of
/// its map, so cells are comparable).
fn probe_edges(edge_count: usize) -> Vec<EdgeId> {
    let k = PROBES.min(edge_count);
    (0..k)
        .map(|i| EdgeId::new(i * edge_count / k.max(1)))
        .collect()
}

/// Runs the witness-access sweep: one cell per artifact size, both
/// layouts opened zero-copy and driven through the same probe set.
pub fn sweep(ctx: &ExperimentContext, repeats: usize) -> Vec<WitnessCell> {
    // (n, radius, f): the largest cell doubles the fault budget — fatter
    // witness records are exactly what the monolithic path decodes
    // wholesale and the sharded index skips.
    let sizes: Vec<(usize, f64, usize)> = ctx.pick(
        vec![(24, 0.5, 1)],
        vec![(48, 0.35, 1), (96, 0.3, 1)],
        vec![(64, 0.3, 1), (128, 0.28, 1), (256, 0.24, 2)],
    );
    sizes
        .into_iter()
        .enumerate()
        .map(|(cell, (n, radius, f))| {
            let mut rng = StdRng::seed_from_u64(cell_seed(19, cell as u64, 0));
            let g = random_geometric(n, radius, &mut rng);
            let frozen = FtGreedy::new(&g, STRETCH).faults(f).run().freeze(&g);
            let mono = frozen.to_v2().encode();
            let sharded = frozen.to_v2_sharded().encode();
            let edges = frozen.edge_count();
            let probes = probe_edges(edges);
            // Aligned buffers are built once, outside the timer: they
            // stand in for mmap(2) regions, whose setup cost is a
            // syscall, not a byte copy.
            let mono_shared = SharedBytes::copy_aligned(&mono);
            let sharded_shared = SharedBytes::copy_aligned(&sharded);
            let lookups = |shared: &SharedBytes| {
                let mapped = FrozenSpanner::open(shared.clone()).expect("own v2 bytes open");
                let spanner = mapped.into_inner();
                let answers: Vec<_> = probes
                    .iter()
                    .map(|&e| {
                        spanner
                            .witnesses_for(e)
                            .expect("own witness record decodes")
                    })
                    .collect();
                (spanner.witness_bytes_touched(), answers)
            };
            let (mono_secs, (mono_touched, mono_answers)) =
                best_of(repeats, || lookups(&mono_shared));
            let (sharded_secs, (sharded_touched, sharded_answers)) =
                best_of(repeats, || lookups(&sharded_shared));
            let reference: Vec<_> = probes
                .iter()
                .map(|&e| frozen.witnesses_for(e).expect("own witness record decodes"))
                .collect();
            WitnessCell {
                n,
                f,
                edges,
                probes: probes.len(),
                mono_artifact_bytes: mono.len(),
                sharded_artifact_bytes: sharded.len(),
                mono_touched,
                sharded_touched,
                mono_secs,
                sharded_secs,
                identical: mono_answers == reference && sharded_answers == reference,
            }
        })
        .collect()
}

fn cell_json(cell: &WitnessCell) -> JsonValue {
    obj([
        ("n", num(cell.n as f64)),
        ("f", num(cell.f as f64)),
        ("edges_kept", num(cell.edges as f64)),
        ("probes", num(cell.probes as f64)),
        ("mono_artifact_bytes", num(cell.mono_artifact_bytes as f64)),
        (
            "sharded_artifact_bytes",
            num(cell.sharded_artifact_bytes as f64),
        ),
        ("mono_touched_bytes", num(cell.mono_touched as f64)),
        ("sharded_touched_bytes", num(cell.sharded_touched as f64)),
        ("mono_us", num(round2(cell.mono_secs * 1e6))),
        ("sharded_us", num(round2(cell.sharded_secs * 1e6))),
        ("bytes_ratio", num(cell.bytes_ratio())),
        ("identical", JsonValue::Bool(cell.identical)),
    ])
}

/// Builds the machine-readable witness-access artifact (the document
/// the `witnessbench` binary writes as `BENCH_10.json` and CI
/// schema-checks).
pub fn artifact(scale_name: &str, repeats: usize, cells: &[WitnessCell]) -> JsonValue {
    let all_identical = cells.iter().all(|c| c.identical);
    let largest = cells
        .iter()
        .max_by_key(|c| c.mono_artifact_bytes)
        .expect("sweep emits at least one cell");
    obj([
        ("schema", s(SCHEMA)),
        (
            "generated_by",
            s("cargo run --release -p spanner-harness --bin witnessbench"),
        ),
        ("host", crate::host::host_json()),
        ("scale", s(scale_name)),
        ("stretch", num(STRETCH as f64)),
        ("repeats", num(repeats as f64)),
        (
            "records",
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
        (
            "summary",
            obj([
                ("cells", num(cells.len() as f64)),
                ("results_identical_all", JsonValue::Bool(all_identical)),
                (
                    "largest_mono_artifact_bytes",
                    num(largest.mono_artifact_bytes as f64),
                ),
                ("largest_bytes_ratio", num(largest.bytes_ratio())),
            ]),
        ),
    ])
}

/// Validates a parsed witness-access artifact against the
/// `witnessbench-1` schema: tag, host block, per-record keys and
/// sanity, the bit-identity certification on every record, and — at
/// **full scale only** — the committed gate: the largest artifact's
/// monolithic-over-sharded bytes-touched ratio must reach
/// [`MIN_BYTES_RATIO`]. Smoke/quick artifacts probe tiny witness maps
/// where a handful of lookups *is* most of the section, so the floor
/// is a property of the committed full-scale `BENCH_10.json`, not of
/// every emission.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn check_artifact(doc: &JsonValue) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema {schema:?} (want {SCHEMA:?})"));
    }
    crate::host::check_host(doc)?;
    let scale = doc
        .get("scale")
        .and_then(JsonValue::as_str)
        .ok_or("missing scale")?;
    let records = doc
        .get("records")
        .and_then(JsonValue::as_array)
        .ok_or("missing records array")?;
    if records.is_empty() {
        return Err("empty records array".into());
    }
    let mut largest_bytes = 0.0f64;
    let mut largest_ratio = 0.0f64;
    for (i, record) in records.iter().enumerate() {
        let field = |key: &str| -> Result<f64, String> {
            record
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("record {i} missing numeric key {key:?}"))
        };
        for key in ["n", "f", "edges_kept", "probes"] {
            field(key)?;
        }
        for key in [
            "mono_artifact_bytes",
            "sharded_artifact_bytes",
            "mono_touched_bytes",
            "sharded_touched_bytes",
            "mono_us",
            "sharded_us",
            "bytes_ratio",
        ] {
            let v = field(key)?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("record {i} has a bad {key}: {v}"));
            }
        }
        // The ratio must be what the touched counters say it is — a
        // hand-edited headline number fails here.
        let claimed = field("bytes_ratio")?;
        let derived =
            round2(field("mono_touched_bytes")? / field("sharded_touched_bytes")?.max(1.0));
        if (claimed - derived).abs() > 0.011 {
            return Err(format!(
                "record {i} claims bytes_ratio={claimed}, its counters say {derived}"
            ));
        }
        if record.get("identical") != Some(&JsonValue::Bool(true)) {
            return Err(format!(
                "record {i} does not certify identical fault sets across layouts"
            ));
        }
        let bytes = field("mono_artifact_bytes")?;
        if bytes > largest_bytes {
            largest_bytes = bytes;
            largest_ratio = claimed;
        }
    }
    let summary = doc.get("summary").ok_or("missing summary")?;
    if summary.get("results_identical_all") != Some(&JsonValue::Bool(true)) {
        return Err("summary does not certify identical fault sets".into());
    }
    for (key, want) in [
        ("largest_mono_artifact_bytes", largest_bytes),
        ("largest_bytes_ratio", largest_ratio),
    ] {
        let claimed = summary
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or(format!("summary missing {key}"))?;
        if (claimed - want).abs() > 1e-9 {
            return Err(format!(
                "summary claims {key}={claimed}, records say {want}"
            ));
        }
    }
    if scale == "full" && largest_ratio < MIN_BYTES_RATIO {
        return Err(format!(
            "largest artifact's monolithic/sharded bytes-touched ratio is \
             {largest_ratio}x, below the committed {MIN_BYTES_RATIO}x witness-access gate"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;
    use crate::json;

    #[test]
    fn smoke_sweep_round_trips_through_the_checker() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx, 1);
        assert_eq!(cells.len(), 1);
        assert!(cells.iter().all(|c| c.identical));
        // The sharded path must already touch strictly fewer bytes than
        // the monolithic force, even at smoke scale.
        assert!(cells[0].sharded_touched < cells[0].mono_touched);
        let doc = artifact("smoke", 1, &cells);
        let text = format!("{doc}\n");
        let parsed = json::parse(&text).expect("emitted artifact parses");
        check_artifact(&parsed).expect("smoke artifact passes without the full-scale floor");
    }

    #[test]
    fn checker_rejects_divergent_answers_and_cooked_ratios() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx, 1);

        let mut divergent = cells.clone();
        divergent[0].identical = false;
        let doc = artifact("smoke", 1, &divergent);
        let err = check_artifact(&json::parse(&format!("{doc}")).unwrap()).unwrap_err();
        assert!(err.contains("identical"), "wrong complaint: {err}");

        // A headline ratio the counters do not support is rejected:
        // force the honest ratio to exactly 1.00, then textually
        // inflate only the claimed bytes_ratio.
        let mut cooked = cells.clone();
        cooked[0].sharded_touched = cooked[0].mono_touched;
        let text = format!("{}", artifact("smoke", 1, &cooked));
        let tampered = text.replace("\"bytes_ratio\": 1", "\"bytes_ratio\": 99");
        assert_ne!(tampered, text, "ratio field must appear in the document");
        let err = check_artifact(&json::parse(&tampered).unwrap()).unwrap_err();
        assert!(
            err.contains("counters say") || err.contains("largest_bytes_ratio"),
            "wrong complaint: {err}"
        );
    }
}
