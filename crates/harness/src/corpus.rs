//! The fuzz regression corpus: file conventions and deterministic replay.
//!
//! The decode path (`parse_container`, `decode_frozen_csr`,
//! `FrozenSpanner::decode`) is a trust boundary — replicas ingest
//! artifact bytes they did not produce. The offline fuzzer
//! (`spanner-fuzz`, `crates/fuzz`) hunts that boundary and commits what
//! it finds under `fuzz/corpus/` (labeled hostile mutants plus
//! legitimate seeds) and `fuzz/crashes/` (any input that ever caused a
//! panic, a nondeterministic error signature, or an accepted-but-
//! non-canonical decode — empty for as long as the contract holds).
//! This module is the *replay* half, shared by the `spanner-artifact
//! replay` subcommand, the `spanner-fuzz` binary, and the tier-1
//! regression tests, so every consumer applies the identical contract:
//!
//! * **Fail closed, never open** — decoding returns `Ok` or a typed
//!   error; a panic is a finding.
//! * **Determinism** — the same bytes yield the same stable error code
//!   and the same message, every time ([`DETERMINISM_RUNS`] repeated
//!   in-process decodes; `crates/harness/tests/artifact_cli.rs` adds
//!   the cross-process leg through the `spanner-artifact` binary).
//! * **Canonical acceptance** — bytes that decode must re-encode to
//!   themselves; an accepted-but-different artifact is a finding.
//!
//! Corpus file names carry their expected outcome:
//! `<class>__<code-slug>__<fnv64-hex>.bin`, where `<class>` is the
//! attack class that produced the input, `<code-slug>` is the expected
//! stable error code with `/` written as `.` (or `ok` for inputs that
//! must decode), and the hash is FNV-1a 64 of the bytes. Replay
//! verifies the detected outcome against the name, which is what turns
//! the corpus into a regression gate on the error taxonomy itself.

use spanner_core::FrozenSpanner;
use spanner_graph::io::binary::{self, fnv1a64};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// How many times replay decodes each input in-process when asserting a
/// stable error signature.
pub const DETERMINISM_RUNS: usize = 3;

/// File-name label for inputs that must decode successfully.
pub const OK_LABEL: &str = "ok";

/// Extensions replay considers corpus entries (everything else in a
/// corpus directory — READMEs, manifests — is ignored).
pub const CORPUS_EXTENSIONS: &[&str] = &["bin", "vfts"];

/// Encodes a stable error code as a file-name-safe slug (`/` → `.`;
/// codes contain no dots, so the mapping is invertible).
pub fn code_to_slug(code: &str) -> String {
    code.replace('/', ".")
}

/// Inverts [`code_to_slug`].
pub fn slug_to_code(slug: &str) -> String {
    slug.replace('.', "/")
}

/// The canonical corpus file name for `bytes`: attack class, expected
/// outcome (`None` = must decode), content hash.
pub fn corpus_file_name(class: &str, expected_code: Option<&str>, bytes: &[u8]) -> String {
    let slug = match expected_code {
        None => OK_LABEL.to_string(),
        Some(code) => code_to_slug(code),
    };
    format!("{class}__{slug}__{:016x}.bin", fnv1a64(bytes))
}

/// The outcome a corpus file's name promises: `None` = must decode
/// successfully, `Some(code)` = must fail with exactly that stable
/// code. Returns `None` when the name does not follow the convention
/// (such files are replayed, but only for the fail-closed and
/// determinism contracts, not for an expected code).
pub fn expected_from_name(name: &str) -> Option<Option<String>> {
    let stem = name.rsplit_once('.').map(|(s, _)| s).unwrap_or(name);
    let mut parts = stem.split("__");
    let (_class, slug, _hash) = (parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() {
        return None;
    }
    Some((slug != OK_LABEL).then(|| slug_to_code(slug)))
}

/// What one deterministic decode of untrusted bytes produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// The bytes decoded, and re-encoded to exactly themselves.
    Accepted,
    /// The bytes were rejected with this stable error code.
    Rejected(&'static str),
}

impl DecodeOutcome {
    /// The code replay tallies this outcome under (`"ok"` for
    /// accepted).
    pub fn label(&self) -> &'static str {
        match self {
            DecodeOutcome::Accepted => OK_LABEL,
            DecodeOutcome::Rejected(code) => code,
        }
    }
}

/// One decode through the codec the magic selects: `VFTGRAPH` files go
/// through [`binary::decode_frozen_csr`], everything else (including
/// garbage too short to carry a magic) through [`FrozenSpanner::decode`].
/// Returns the outcome plus the error's display string (the
/// "signature" the determinism contract compares), and re-encodes
/// accepted inputs to prove canonical acceptance. Accepted spanner
/// artifacts additionally have their witness accessor probed, so a
/// routing-only artifact is tallied under
/// `artifact/witnesses-detached` — the typed refusal witness queries
/// against it receive — keeping the detached arm inside the corpus's
/// taxonomy-coverage gate.
fn decode_once(bytes: &[u8]) -> Result<(DecodeOutcome, String), String> {
    let is_graph = bytes.len() >= 8 && bytes[..8] == *b"VFTGRAPH";
    let run = |bytes: &[u8]| -> Result<(DecodeOutcome, String), String> {
        if is_graph {
            match binary::decode_frozen_csr(bytes) {
                Ok(csr) => {
                    if binary::encode_frozen_csr(&csr) != bytes {
                        return Err("accepted input does not re-encode canonically".into());
                    }
                    Ok((DecodeOutcome::Accepted, String::new()))
                }
                Err(e) => Ok((DecodeOutcome::Rejected(e.code()), e.to_string())),
            }
        } else {
            match FrozenSpanner::decode(bytes) {
                Ok(frozen) => {
                    if frozen.encode() != bytes {
                        return Err("accepted input does not re-encode canonically".into());
                    }
                    // Witness availability is part of the replayed
                    // contract: a routing-only (witnesses-detached)
                    // artifact decodes, but serving witness queries from
                    // it must refuse with its typed code — pin that
                    // refusal rather than letting detachment blend into
                    // "ok".
                    if let Err(e) = frozen.witnesses() {
                        return Ok((DecodeOutcome::Rejected(e.code()), e.to_string()));
                    }
                    Ok((DecodeOutcome::Accepted, String::new()))
                }
                Err(e) => Ok((DecodeOutcome::Rejected(e.code()), e.to_string())),
            }
        }
    };
    // The decode contract says no input can panic; hold the line even
    // if that contract regresses, and report the panic as the finding
    // it is instead of tearing down the replay.
    catch_unwind(AssertUnwindSafe(|| run(bytes))).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        format!("decode panicked: {msg}")
    })?
}

/// Decodes `bytes` [`DETERMINISM_RUNS`] times, asserting the fail-closed,
/// determinism, and canonical-acceptance contracts.
///
/// # Errors
///
/// A human-readable description of the violated contract (panic,
/// unstable error signature, or non-canonical acceptance).
pub fn decode_outcome(bytes: &[u8]) -> Result<DecodeOutcome, String> {
    let (outcome, signature) = decode_once(bytes)?;
    for run in 1..DETERMINISM_RUNS {
        let (again, sig_again) = decode_once(bytes)?;
        if again != outcome || sig_again != signature {
            return Err(format!(
                "nondeterministic decode: run 0 gave {}/{signature:?}, run {run} gave {}/{sig_again:?}",
                outcome.label(),
                again.label(),
            ));
        }
    }
    Ok(outcome)
}

/// The result of replaying a corpus directory.
#[derive(Debug, Default)]
pub struct ReplayReport {
    /// Corpus entries replayed.
    pub files: usize,
    /// Outcomes tallied per label: stable error code, or `"ok"`.
    pub by_code: BTreeMap<String, usize>,
    /// Entries whose detected outcome contradicts their file name —
    /// the error taxonomy moved under the corpus.
    pub mismatches: Vec<String>,
    /// Entries that violated the fail-closed / determinism / canonical
    /// contracts outright.
    pub failures: Vec<String>,
}

impl ReplayReport {
    /// Whether every entry met its expectation and every contract held.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty() && self.failures.is_empty()
    }

    /// Replays one named corpus entry into the tallies.
    pub fn replay_entry(&mut self, name: &str, bytes: &[u8]) {
        self.files += 1;
        let outcome = match decode_outcome(bytes) {
            Ok(outcome) => outcome,
            Err(why) => {
                self.failures.push(format!("{name}: {why}"));
                return;
            }
        };
        *self.by_code.entry(outcome.label().to_string()).or_insert(0) += 1;
        if let Some(expected) = expected_from_name(name) {
            let got = match &outcome {
                DecodeOutcome::Accepted => None,
                DecodeOutcome::Rejected(code) => Some(code.to_string()),
            };
            if got != expected {
                self.mismatches.push(format!(
                    "{name}: expected {}, got {}",
                    expected.as_deref().unwrap_or(OK_LABEL),
                    outcome.label(),
                ));
            }
        }
    }

    /// Per-class count lines for human output, `code  count` in code
    /// order.
    pub fn count_lines(&self) -> Vec<String> {
        self.by_code
            .iter()
            .map(|(code, count)| format!("{code:<26} {count:>6}"))
            .collect()
    }
}

/// Replays every corpus entry in `dir` (non-recursive; files matching
/// [`CORPUS_EXTENSIONS`], in name order so reports are deterministic).
/// A missing or empty directory is an error only if `required` — the
/// crash corpus is expected to be empty.
///
/// # Errors
///
/// I/O problems reading the directory or a file. Contract violations
/// are *not* errors here; they land in the report's `failures` /
/// `mismatches` so the caller can print all of them before failing.
pub fn replay_dir(dir: &Path, required: bool) -> Result<ReplayReport, String> {
    let mut report = ReplayReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) if !required => return Ok(report),
        Err(e) => return Err(format!("cannot read corpus dir {}: {e}", dir.display())),
    };
    let mut names: Vec<String> = entries
        .filter_map(|entry| Some(entry.ok()?.file_name().to_string_lossy().into_owned()))
        .filter(|name| {
            name.rsplit_once('.')
                .is_some_and(|(_, ext)| CORPUS_EXTENSIONS.contains(&ext))
        })
        .collect();
    names.sort();
    if names.is_empty() && required {
        return Err(format!("corpus dir {} holds no entries", dir.display()));
    }
    for name in names {
        let path = dir.join(&name);
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        report.replay_entry(&name, &bytes);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_core::FtGreedy;
    use spanner_graph::generators::complete;

    #[test]
    fn file_name_round_trips_expectation() {
        let name = corpus_file_name("bit-flip", Some("artifact/bit-flip"), b"xyz");
        assert!(name.starts_with("bit-flip__artifact.bit-flip__"));
        assert_eq!(
            expected_from_name(&name),
            Some(Some("artifact/bit-flip".to_string()))
        );
        let seed = corpus_file_name("seed", None, b"xyz");
        assert_eq!(expected_from_name(&seed), Some(None));
        assert_eq!(expected_from_name("README.md"), None);
    }

    #[test]
    fn replay_tallies_and_checks_expectations() {
        let g = complete(6);
        let bytes = FtGreedy::new(&g, 3).faults(1).run().freeze(&g).encode();
        // Cut below the header + checksum minimum: longer cuts hit the
        // checksum gate first (the trailing bytes of a mid-stream cut
        // parse as a wrong checksum ⇒ artifact/bit-flip).
        let mut truncated = bytes.clone();
        truncated.truncate(10);

        let mut report = ReplayReport::default();
        report.replay_entry(&corpus_file_name("seed", None, &bytes), &bytes);
        report.replay_entry(
            &corpus_file_name("truncation", Some("artifact/truncation"), &truncated),
            &truncated,
        );
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.by_code.get(OK_LABEL), Some(&1));
        assert_eq!(report.by_code.get("artifact/truncation"), Some(&1));

        // A name that promises the wrong outcome is a mismatch.
        let mut bad = ReplayReport::default();
        bad.replay_entry(&corpus_file_name("seed", None, &truncated), &truncated);
        assert_eq!(bad.mismatches.len(), 1);
        assert!(!bad.is_clean());
    }

    #[test]
    fn missing_dir_is_only_an_error_when_required() {
        let missing = Path::new("/definitely/not/a/corpus");
        assert!(replay_dir(missing, false).unwrap().files == 0);
        assert!(replay_dir(missing, true).is_err());
    }
}
