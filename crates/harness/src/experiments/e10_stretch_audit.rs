//! E10 / Table 6 — fault-injection stretch audit across constructions.
//!
//! The final cross-cutting check: every construction in the repository
//! (FT-greedy VFT, FT-greedy EFT, the DK-style baseline, the union
//! baseline), audited under randomized fault injection plus the
//! adversarial witness replay. Claims: zero violations everywhere, and
//! observed worst stretch at most the target `k`.

use super::{ExperimentContext, ExperimentOutput};
use crate::{cell_seed, fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::baselines::{dk_spanner, union_eft_spanner, DkParams};
use spanner_core::verify::{
    certify_vft_exact, verify_ft_adversarial, verify_ft_sampled, verify_spanner,
};
use spanner_core::FtGreedy;
use spanner_faults::FaultModel;
use spanner_graph::generators::erdos_renyi;

/// Runs E10. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(24, 50, 80);
    let p = ctx.pick(0.35, 0.2, 0.15);
    let stretch = 3u64;
    let f = 2usize;
    let trials = ctx.pick(15usize, 40, 80);

    let mut rng = StdRng::seed_from_u64(cell_seed(10, 0, 0));
    let g = erdos_renyi(n, p, &mut rng);

    let mut table = Table::new(
        format!(
            "E10: stretch audit under fault injection  (G(n={n}, p={p}), stretch {stretch}, f={f}, {trials} sampled fault sets)"
        ),
        [
            "construction",
            "model",
            "|E(H)|",
            "plain max stretch",
            "sampled viol",
            "adversarial viol",
            "exact ∀F certificate",
        ],
    );
    let mut notes = Vec::new();
    let mut total_violations = 0usize;

    // FT-greedy, vertex model.
    let vft = FtGreedy::new(&g, stretch).faults(f).run();
    let plain = verify_spanner(&g, vft.spanner());
    let sampled = verify_ft_sampled(&g, vft.spanner(), f, FaultModel::Vertex, trials, &mut rng);
    let adversarial = verify_ft_adversarial(&g, &vft);
    let certificate = certify_vft_exact(&g, vft.spanner(), f);
    if certificate.is_some() {
        total_violations += 1;
    }
    total_violations += sampled.violations + adversarial.violations;
    table.row([
        "ft-greedy".to_string(),
        "vertex".to_string(),
        vft.spanner().edge_count().to_string(),
        fnum(plain.max_stretch),
        sampled.violations.to_string(),
        adversarial.violations.to_string(),
        if certificate.is_none() {
            "clean"
        } else {
            "VIOLATION"
        }
        .to_string(),
    ]);

    // FT-greedy, edge model.
    let eft = FtGreedy::new(&g, stretch)
        .faults(f)
        .model(FaultModel::Edge)
        .run();
    let plain = verify_spanner(&g, eft.spanner());
    let sampled = verify_ft_sampled(&g, eft.spanner(), f, FaultModel::Edge, trials, &mut rng);
    let adversarial = verify_ft_adversarial(&g, &eft);
    total_violations += sampled.violations + adversarial.violations;
    table.row([
        "ft-greedy".to_string(),
        "edge".to_string(),
        eft.spanner().edge_count().to_string(),
        fnum(plain.max_stretch),
        sampled.violations.to_string(),
        adversarial.violations.to_string(),
        "- (edge model)".to_string(),
    ]);

    // DK baseline (vertex model).
    let dk = dk_spanner(&g, stretch, DkParams::heuristic(n, f, 3.0), &mut rng);
    let plain = verify_spanner(&g, &dk);
    let sampled = verify_ft_sampled(&g, &dk, f, FaultModel::Vertex, trials, &mut rng);
    let dk_certificate = certify_vft_exact(&g, &dk, f);
    if dk_certificate.is_some() {
        total_violations += 1;
    }
    total_violations += sampled.violations;
    table.row([
        "dk-baseline".to_string(),
        "vertex".to_string(),
        dk.edge_count().to_string(),
        fnum(plain.max_stretch),
        sampled.violations.to_string(),
        "-".to_string(),
        if dk_certificate.is_none() {
            "clean"
        } else {
            "VIOLATION"
        }
        .to_string(),
    ]);

    // Union baseline (edge model).
    let union = union_eft_spanner(&g, stretch, f);
    let plain = verify_spanner(&g, &union);
    let sampled = verify_ft_sampled(&g, &union, f, FaultModel::Edge, trials, &mut rng);
    total_violations += sampled.violations;
    table.row([
        "union-baseline".to_string(),
        "edge".to_string(),
        union.edge_count().to_string(),
        fnum(plain.max_stretch),
        sampled.violations.to_string(),
        "-".to_string(),
        "- (edge model)".to_string(),
    ]);

    notes.push(format!(
        "total violations across all constructions and audits: {total_violations} (must be 0)"
    ));
    notes.push(
        "vertex-model rows additionally carry an EXACT ∀F certificate via per-edge oracle queries"
            .to_string(),
    );
    ExperimentOutput {
        id: "e10",
        title: "Table 6: stretch audit under fault injection",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_has_zero_violations() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert!(out.notes.iter().any(|n| n.contains(": 0 (must be 0)")));
        assert_eq!(out.tables[0].row_count(), 4);
    }
}
