//! E5 / Table 5 — EFT greedy against the union-of-spanners baseline.
//!
//! The classic EFT construction unions `f + 1` edge-disjoint greedy layers
//! and so grows linearly in `f`; Theorem 1 gives the EFT greedy the same
//! `f^{1−1/κ}`-type bound as VFT. Shape claims: greedy ≤ union at every
//! `f`, with the gap widening as `f` grows; both audit clean.

use super::{ExperimentContext, ExperimentOutput};
use crate::{cell_seed, fnum, mean, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::baselines::union_eft_spanner;
use spanner_core::verify::verify_ft_sampled;
use spanner_core::FtGreedy;
use spanner_faults::FaultModel;
use spanner_graph::generators::{erdos_renyi, grid, watts_strogatz};
use spanner_graph::Graph;

/// A named seeded graph family compared by the experiment.
type GraphFamily<'a> = (&'a str, Box<dyn Fn(u64) -> Graph + Sync>);

/// Runs E5. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(28, 60, 100);
    let p = ctx.pick(0.3, 0.18, 0.12);
    let stretch = 3u64;
    let fs: Vec<usize> = ctx.pick(vec![1], vec![1, 2], vec![1, 2, 3]);
    let seeds = ctx.pick(1u64, 2, 2);
    let audit_trials = ctx.pick(10, 25, 40);
    let side = ctx.pick(4usize, 7, 10);

    let mut table = Table::new(
        format!("E5: EFT greedy vs union baseline  (stretch {stretch}, mean over {seeds} seeds)"),
        [
            "graph",
            "f",
            "greedy |E(H)|",
            "union |E(H)|",
            "union/greedy",
            "audits",
        ],
    );
    let mut notes = Vec::new();
    let mut greedy_never_larger = true;
    let families: Vec<GraphFamily> = vec![
        (
            "G(n,p)",
            Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                erdos_renyi(n, p, &mut rng)
            }),
        ),
        ("grid", Box::new(move |_| grid(side, side))),
        (
            "small-world",
            Box::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5757);
                watts_strogatz(n, 6, 0.2, &mut rng)
            }),
        ),
    ];
    for (name, make) in &families {
        for &f in &fs {
            let cells: Vec<u64> = (0..seeds).collect();
            let results = parallel_map(cells, ctx.threads, |s| {
                let seed = cell_seed(5, f as u64, s);
                let g = make(seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
                let greedy = FtGreedy::new(&g, stretch)
                    .faults(f)
                    .model(FaultModel::Edge)
                    .run();
                let union = union_eft_spanner(&g, stretch, f);
                let ga = verify_ft_sampled(
                    &g,
                    greedy.spanner(),
                    f,
                    FaultModel::Edge,
                    audit_trials,
                    &mut rng,
                );
                let ua = verify_ft_sampled(&g, &union, f, FaultModel::Edge, audit_trials, &mut rng);
                (
                    greedy.spanner().edge_count() as f64,
                    union.edge_count() as f64,
                    ga.violations + ua.violations,
                )
            });
            let m_greedy = mean(&results.iter().map(|r| r.0).collect::<Vec<_>>());
            let m_union = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
            let viol: usize = results.iter().map(|r| r.2).sum();
            if m_greedy > m_union + 1e-9 {
                greedy_never_larger = false;
            }
            table.row([
                name.to_string(),
                f.to_string(),
                fnum(m_greedy),
                fnum(m_union),
                fnum(m_union / m_greedy),
                format!("{viol} viol"),
            ]);
            if viol > 0 {
                notes.push(format!("VIOLATION: audit failed on {name} at f={f}"));
            }
        }
    }
    notes.push(format!(
        "EFT greedy never larger than the union baseline: {}",
        if greedy_never_larger { "yes" } else { "NO" }
    ));
    ExperimentOutput {
        id: "e5",
        title: "Table 5: EFT greedy vs union-of-spanners baseline",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_covers_all_families() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.tables[0].row_count(), 3);
        assert!(!out.notes.iter().any(|n| n.contains("VIOLATION")));
    }
}
