//! E15 / Table 11 — serving throughput: the freeze-and-serve read path.
//!
//! The ROADMAP's north star is a spanner you *serve queries against*
//! under failures (Bodwin–Dinitz–Parter–Vassilevska Williams frame
//! exactly this spanner-as-distance-oracle use case). E13/E14 measure
//! *correctness* of that serving under scenarios; E15 measures its
//! *speed*. Three read paths answer identical workloads over the same
//! FT spanner of a geometric network:
//!
//! * `router` — the one-query-per-epoch baseline: every call re-applies
//!   the failure set and serves one pair through the primitive
//!   [`spanner_core::serve::route_one`] reference (the
//!   pre-PR-4 consumer behavior, reproduced without the deleted
//!   `ResilientRouter` shim — the JSON schema keeps the `router` label);
//! * `batch` — an [`EpochServer`] session over the shared frozen
//!   artifact: the failure set is applied **once** per epoch, the batch
//!   served against the interned fault view;
//! * `par` — the same server's pooled batch entry point
//!   ([`EpochHandle::par_route_batch`](spanner_core::EpochHandle::par_route_batch)),
//!   persistent workers, answers reassembled in input order.
//!
//! Grid: failure scenario (`clear` / `random-f` / `witness-replay`) ×
//! fault budget × batch size, at a fixed worker-pool width. Every cell
//! first asserts all three paths returned **bit-identical answers**
//! (routes, edges, distances, errors — the property the proptest suite
//! pins), then reports queries/second and speedups vs the router
//! baseline. The same sweep backs the `querybench` binary, which emits
//! the machine-readable `BENCH_4.json` artifact CI schema-checks.

use super::{ExperimentContext, ExperimentOutput};
use crate::json::{num, obj, s, JsonValue};
use crate::{cell_seed, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_core::routing::{Route, RouteError};
use spanner_core::serve::route_one;
use spanner_core::{EpochServer, FtGreedy};
use spanner_faults::FaultSet;
use spanner_graph::generators::random_geometric;
use spanner_graph::{DijkstraEngine, FaultMask, NodeId, PathScratch};
use std::sync::Arc;
use std::time::Instant;

/// The query-bench artifact schema tag; bump when the layout changes.
/// `querybench-3` added the required `host` block (logical CPUs, rustc,
/// OS/arch) so artifacts are comparable across machines.
pub const SCHEMA: &str = "vft-spanner/querybench-3";

/// The pre-host tag still accepted by [`check_artifact`], so committed
/// artifacts from earlier PRs keep validating (`host` optional there).
pub const LEGACY_SCHEMA: &str = "vft-spanner/querybench-1";

/// The stretch target every E15 spanner is built for.
pub const STRETCH: u64 = 3;

/// The epoch scenarios E15 sweeps, in table order: no failures, `f`
/// random vertex failures per epoch (exactly the budget), and replay of
/// the construction's own recorded witness fault sets.
pub const SCENARIOS: [&str; 3] = ["clear", "random-f", "witness-replay"];

/// One cell of the sweep: one scenario × budget × batch size, measured
/// over all three read paths.
#[derive(Clone, Debug)]
pub struct ThroughputCell {
    /// The scenario name (one of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Network size.
    pub n: usize,
    /// Spanner size.
    pub edges: usize,
    /// The fault budget the spanner was built for (= faults per epoch in
    /// `random-f`).
    pub f: usize,
    /// Queries per epoch.
    pub batch: usize,
    /// Fault epochs served.
    pub epochs: usize,
    /// Total queries per path (`epochs × batch`).
    pub queries: usize,
    /// Worker-pool width of the `par` path.
    pub threads: usize,
    /// Single-query router throughput (queries/second).
    pub router_qps: f64,
    /// Sequential epoch-batch throughput.
    pub batch_qps: f64,
    /// Pooled epoch-batch throughput.
    pub par_qps: f64,
    /// Whether all three paths returned bit-identical answers.
    pub identical: bool,
}

impl ThroughputCell {
    /// Sequential-batch speedup over the router baseline, rounded the
    /// way the artifact records it.
    pub fn speedup_batch(&self) -> f64 {
        round2(self.batch_qps / self.router_qps)
    }

    /// Pooled-batch speedup over the router baseline, rounded the way
    /// the artifact records it.
    pub fn speedup_par(&self) -> f64 {
        round2(self.par_qps / self.router_qps)
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// One epoch's workload: the failure set and the batch of live pairs.
struct EpochPlan {
    failures: FaultSet,
    pairs: Vec<(NodeId, NodeId)>,
}

/// Builds the per-epoch failure sets + query batches for one cell,
/// deterministically from the cell seed. Pairs have live, distinct
/// endpoints (as the scenario engine samples them), so the only errors
/// serving can return are genuine disconnections.
fn plan_epochs(
    n: usize,
    f: usize,
    scenario: &str,
    witnesses: &[FaultSet],
    epochs: usize,
    batch: usize,
    seed: u64,
) -> Vec<EpochPlan> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nonempty: Vec<&FaultSet> = witnesses.iter().filter(|w| !w.is_empty()).collect();
    (0..epochs)
        .map(|epoch| {
            let failures = match scenario {
                "clear" => FaultSet::vertices([]),
                "random-f" => {
                    let mut down = Vec::with_capacity(f);
                    while down.len() < f {
                        let v = NodeId::new(rng.gen_range(0..n));
                        if !down.contains(&v) {
                            down.push(v);
                        }
                    }
                    FaultSet::vertices(down)
                }
                "witness-replay" => {
                    if nonempty.is_empty() {
                        FaultSet::vertices([])
                    } else {
                        (*nonempty[epoch % nonempty.len()]).clone()
                    }
                }
                other => unreachable!("unknown scenario {other}"),
            };
            let live: Vec<NodeId> = (0..n)
                .map(NodeId::new)
                .filter(|v| !failures.vertex_faults().contains(v))
                .collect();
            let pairs = (0..batch)
                .map(|_| {
                    let i = rng.gen_range(0..live.len());
                    let mut j = rng.gen_range(0..live.len() - 1);
                    if j >= i {
                        j += 1;
                    }
                    (live[i], live[j])
                })
                .collect();
            EpochPlan { failures, pairs }
        })
        .collect()
}

type Answers = Vec<Vec<Result<Route, RouteError>>>;

/// Times `serve` over the whole epoch plan `repeats` times, keeping the
/// minimum wall time (least-noisy sample) and the last run's answers.
fn measure(
    repeats: usize,
    plan: &[EpochPlan],
    mut serve: impl FnMut(&EpochPlan) -> Vec<Result<Route, RouteError>>,
) -> (f64, Answers) {
    let mut best = f64::INFINITY;
    let mut answers = Vec::new();
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let run: Answers = plan.iter().map(&mut serve).collect();
        best = best.min(start.elapsed().as_secs_f64());
        answers = run;
    }
    (best, answers)
}

/// Runs the scenario × budget × batch sweep and returns every cell
/// (table rendering and JSON emission both feed off this). `threads` is
/// the pooled path's worker count; `repeats` the min-of-N methodology.
pub fn sweep(ctx: &ExperimentContext, threads: usize, repeats: usize) -> Vec<ThroughputCell> {
    let n = ctx.pick(24, 64, 96);
    let radius = ctx.pick(0.5, 0.3, 0.27);
    let epochs = ctx.pick(4, 6, 8);
    let fs: Vec<usize> = ctx.pick(vec![1], vec![1, 2], vec![1, 2]);
    let batches: Vec<usize> = ctx.pick(vec![8], vec![16, 256], vec![16, 1024]);
    let threads = threads.max(2);

    let mut graph_rng = StdRng::seed_from_u64(cell_seed(15, 0, 0));
    let g = random_geometric(n, radius, &mut graph_rng);

    let mut cells = Vec::new();
    for &f in &fs {
        // One construction per budget; every path serves the same
        // artifact data.
        let ft = FtGreedy::new(&g, STRETCH).faults(f).run();
        let frozen = Arc::new(ft.freeze(&g));
        let witnesses = ft.witnesses().to_vec();
        for (s_idx, scenario) in SCENARIOS.iter().enumerate() {
            for &batch in &batches {
                let seed = cell_seed(15, (f * 16 + s_idx * 4) as u64, batch as u64);
                let plan = plan_epochs(n, f, scenario, &witnesses, epochs, batch, seed);

                // Path 1: the one-query-per-epoch baseline (failure set
                // re-applied on every single call, one `route_one` per
                // pair — what the deleted router shim used to do).
                let mut engine = DijkstraEngine::new();
                let mut scratch = PathScratch::new();
                let mut mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
                let (router_secs, router_answers) = measure(repeats, &plan, |epoch| {
                    epoch
                        .pairs
                        .iter()
                        .map(|&(u, v)| {
                            mask.reset_for(frozen.node_count(), frozen.edge_count());
                            frozen.apply_faults(&epoch.failures, &mut mask);
                            route_one(&frozen, &mut engine, &mut scratch, &mask, u, v)
                        })
                        .collect()
                });

                // Path 2: sequential epoch batches over the frozen
                // artifact (failure set applied once per epoch; one
                // server session per epoch).
                let server = EpochServer::new(Arc::clone(&frozen));
                let (batch_secs, batch_answers) = measure(repeats, &plan, |epoch| {
                    server.epoch(&epoch.failures).route_batch(&epoch.pairs)
                });

                // Path 3: pooled epoch batches over a shared server.
                // Warm the pool outside the timed region (worker spawn
                // is a one-off cost).
                let pooled = EpochServer::new(Arc::clone(&frozen)).with_threads(threads);
                let _ = pooled
                    .epoch(&plan[0].failures)
                    .par_route_batch(&plan[0].pairs);
                let (par_secs, par_answers) = measure(repeats, &plan, |epoch| {
                    pooled.epoch(&epoch.failures).par_route_batch(&epoch.pairs)
                });

                let identical = router_answers == batch_answers && batch_answers == par_answers;
                let queries = epochs * batch;
                cells.push(ThroughputCell {
                    scenario,
                    n,
                    edges: frozen.edge_count(),
                    f,
                    batch,
                    epochs,
                    queries,
                    threads,
                    router_qps: queries as f64 / router_secs.max(1e-9),
                    batch_qps: queries as f64 / batch_secs.max(1e-9),
                    par_qps: queries as f64 / par_secs.max(1e-9),
                    identical,
                });
            }
        }
    }
    cells
}

fn cell_json(cell: &ThroughputCell) -> JsonValue {
    obj([
        ("scenario", s(cell.scenario)),
        ("n", num(cell.n as f64)),
        ("edges_kept", num(cell.edges as f64)),
        ("f", num(cell.f as f64)),
        ("batch", num(cell.batch as f64)),
        ("epochs", num(cell.epochs as f64)),
        ("queries", num(cell.queries as f64)),
        ("threads", num(cell.threads as f64)),
        ("router_qps", num(cell.router_qps.round())),
        ("batch_qps", num(cell.batch_qps.round())),
        ("par_qps", num(cell.par_qps.round())),
        ("speedup_batch", num(cell.speedup_batch())),
        ("speedup_par", num(cell.speedup_par())),
        ("identical", JsonValue::Bool(cell.identical)),
    ])
}

/// Builds the machine-readable query-bench artifact (the document the
/// `querybench` binary writes as `BENCH_4.json` and CI schema-checks).
pub fn artifact(
    scale_name: &str,
    threads: usize,
    repeats: usize,
    cells: &[ThroughputCell],
) -> JsonValue {
    let all_identical = cells.iter().all(|c| c.identical);
    let best_batch = cells
        .iter()
        .map(ThroughputCell::speedup_batch)
        .fold(0.0, f64::max);
    let best_par = cells
        .iter()
        .map(ThroughputCell::speedup_par)
        .fold(0.0, f64::max);
    obj([
        ("schema", s(SCHEMA)),
        (
            "generated_by",
            s("cargo run --release -p spanner-harness --bin querybench"),
        ),
        ("host", crate::host::host_json()),
        ("scale", s(scale_name)),
        ("stretch", num(STRETCH as f64)),
        ("repeats", num(repeats as f64)),
        ("pooled_threads", num(threads as f64)),
        (
            "records",
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
        (
            "summary",
            obj([
                ("cells", num(cells.len() as f64)),
                ("results_identical_all", JsonValue::Bool(all_identical)),
                ("best_speedup_batch", num(best_batch)),
                ("best_speedup_par", num(best_par)),
            ]),
        ),
    ])
}

/// Validates a parsed query-bench artifact against the `querybench-1`
/// schema: tag, per-record keys and sanity, the hard requirement that
/// **every** record certifies bit-identical answers across the three
/// read paths, and the summary's agreement with its records.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn check_artifact(doc: &JsonValue) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCHEMA && schema != LEGACY_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (want {SCHEMA:?} or legacy {LEGACY_SCHEMA:?})"
        ));
    }
    if schema == SCHEMA {
        crate::host::check_host(doc)?;
    }
    let records = doc
        .get("records")
        .and_then(JsonValue::as_array)
        .ok_or("missing records array")?;
    if records.is_empty() {
        return Err("empty records array".into());
    }
    let mut best_batch = 0.0f64;
    let mut best_par = 0.0f64;
    for (i, record) in records.iter().enumerate() {
        if record.get("scenario").and_then(JsonValue::as_str).is_none() {
            return Err(format!("record {i} missing scenario name"));
        }
        let field = |key: &str| -> Result<f64, String> {
            record
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("record {i} missing numeric key {key:?}"))
        };
        for key in [
            "n",
            "edges_kept",
            "f",
            "batch",
            "epochs",
            "queries",
            "threads",
        ] {
            field(key)?;
        }
        for key in ["router_qps", "batch_qps", "par_qps"] {
            let qps = field(key)?;
            if !qps.is_finite() || qps <= 0.0 {
                return Err(format!("record {i} has a bad {key}: {qps}"));
            }
        }
        best_batch = best_batch.max(field("speedup_batch")?);
        best_par = best_par.max(field("speedup_par")?);
        // The hard gate: a single sequential-vs-parallel (or router)
        // mismatch fails the whole artifact.
        if record.get("identical") != Some(&JsonValue::Bool(true)) {
            return Err(format!(
                "record {i} does not certify identical answers across read paths"
            ));
        }
    }
    let summary = doc.get("summary").ok_or("missing summary")?;
    if summary.get("results_identical_all") != Some(&JsonValue::Bool(true)) {
        return Err("summary does not certify identical answers".into());
    }
    for (key, want) in [
        ("best_speedup_batch", best_batch),
        ("best_speedup_par", best_par),
    ] {
        let claimed = summary
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or(format!("summary missing {key}"))?;
        if (claimed - want).abs() > 1e-9 {
            return Err(format!(
                "summary claims {key}={claimed}, records say {want}"
            ));
        }
    }
    Ok(())
}

/// Runs E15. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let threads = ctx.threads.clamp(2, 4);
    let cells = sweep(ctx, threads, ctx.pick(1, 2, 3));
    let mut table = Table::new(
        "E15: serving throughput  (freeze-and-serve epochs vs one-query-per-epoch router)",
        [
            "scenario",
            "f",
            "batch",
            "queries",
            "router q/s",
            "batch q/s",
            "batch x",
            "par q/s",
            "par x",
            "identical",
        ],
    );
    let mut all_identical = true;
    let mut best = 0.0f64;
    for cell in &cells {
        all_identical &= cell.identical;
        best = best.max(cell.speedup_batch()).max(cell.speedup_par());
        table.row([
            cell.scenario.to_string(),
            cell.f.to_string(),
            cell.batch.to_string(),
            cell.queries.to_string(),
            format!("{:.0}", cell.router_qps),
            format!("{:.0}", cell.batch_qps),
            format!("{:.2}x", cell.speedup_batch()),
            format!("{:.0}", cell.par_qps),
            format!("{:.2}x", cell.speedup_par()),
            if cell.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let notes = vec![
        format!(
            "all read paths bit-identical (routes, edges, dists, errors): {}",
            if all_identical { "yes" } else { "NO" }
        ),
        format!("best epoch-serving speedup vs single-query router: {best:.2}x"),
    ];
    ExperimentOutput {
        id: "e15",
        title: "Table 11: serving throughput over the frozen artifact",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;
    use crate::json;

    #[test]
    fn smoke_sweep_is_identical_and_covers_the_grid() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx, 2, 1);
        assert_eq!(
            cells.len(),
            SCENARIOS.len(),
            "3 scenarios x 1 budget x 1 batch"
        );
        for cell in &cells {
            assert!(
                cell.identical,
                "{} f={} batch={}: read paths diverged",
                cell.scenario, cell.f, cell.batch
            );
            assert!(cell.router_qps > 0.0 && cell.batch_qps > 0.0 && cell.par_qps > 0.0);
        }
    }

    #[test]
    fn smoke_run_reports_identity() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.id, "e15");
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("bit-identical") && n.contains("yes")));
        assert_eq!(out.tables[0].row_count(), SCENARIOS.len());
    }

    #[test]
    fn artifact_round_trips_and_checks() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx, 2, 1);
        let doc = artifact("smoke", 2, 1, &cells);
        let text = doc.to_string();
        let back = json::parse(&text).expect("artifact must be valid JSON");
        check_artifact(&back).expect("artifact must satisfy its own schema");
    }

    #[test]
    fn check_rejects_tampered_artifacts() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx, 2, 1);
        let doc = artifact("smoke", 2, 1, &cells);
        // Flip one identity certification: must be caught.
        let text = doc
            .to_string()
            .replacen("\"identical\": true", "\"identical\": false", 1);
        let back = json::parse(&text).unwrap();
        assert!(check_artifact(&back).is_err());
        assert!(check_artifact(&json::parse("{\"schema\": \"nope\"}").unwrap()).is_err());
    }

    #[test]
    fn epoch_plans_are_deterministic_and_live() {
        let witnesses = vec![FaultSet::vertices([NodeId::new(3)])];
        for scenario in SCENARIOS {
            let a = plan_epochs(20, 2, scenario, &witnesses, 4, 8, 77);
            let b = plan_epochs(20, 2, scenario, &witnesses, 4, 8, 77);
            assert_eq!(a.len(), 4);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.failures, y.failures, "{scenario}: fault sets drifted");
                assert_eq!(x.pairs, y.pairs, "{scenario}: pairs drifted");
                for &(u, v) in &x.pairs {
                    assert_ne!(u, v);
                    assert!(!x.failures.vertex_faults().contains(&u));
                    assert!(!x.failures.vertex_faults().contains(&v));
                }
            }
        }
    }
}
