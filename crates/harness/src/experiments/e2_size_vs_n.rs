//! E2 / Table 2 — VFT greedy size as a function of `n`.
//!
//! Corollary 2's `n`-dependence is `n^{1+1/κ}` at stretch `2κ−1`. We sweep
//! `n` on dense random inputs at fixed `f` and fit the measured exponent.
//! Shape claim: exponent ≈ `1 + 1/κ` (so below 1.5 for stretch 3 and
//! below 1.34 for stretch 5 at these scales, up to additive low-order
//! terms), and it should *not* depend much on `f`.

use super::{ExperimentContext, ExperimentOutput};
use crate::plot::{AxisScale, Plot, Series};
use crate::{cell_seed, fit_power_law, fnum, mean, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::FtGreedy;
use spanner_graph::generators::erdos_renyi;

/// Runs E2. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let ns: Vec<usize> = ctx.pick(
        vec![24, 36, 48],
        vec![40, 60, 90, 130],
        vec![60, 90, 130, 180, 250],
    );
    let p = 0.3;
    let stretches: &[u64] = ctx.pick(&[3][..], &[3], &[3, 5]);
    let fs: &[usize] = ctx.pick(&[1][..], &[0, 2], &[0, 2]);
    let seeds = ctx.pick(1u64, 2, 2);

    let mut table = Table::new(
        format!("E2: VFT greedy size vs n  (G(n, p={p}), mean over {seeds} seeds)"),
        ["stretch", "f", "n", "|E(G)|", "|E(H)|"],
    );
    let mut notes = Vec::new();
    let mut figure =
        Plot::new("Figure E2: |E(H)| vs n, log-log", 56, 14).scale(AxisScale::Log, AxisScale::Log);
    let markers = ['#', 'o', '+', 'x'];
    let mut marker_idx = 0usize;
    for &stretch in stretches {
        let kappa = stretch.div_ceil(2);
        for &f in fs {
            let cells: Vec<(usize, u64)> = ns
                .iter()
                .flat_map(|&n| (0..seeds).map(move |s| (n, s)))
                .collect();
            let results = parallel_map(cells, ctx.threads, |(n, s)| {
                let mut rng =
                    StdRng::seed_from_u64(cell_seed(2, n as u64 * 10 + stretch + f as u64, s));
                let g = erdos_renyi(n, p, &mut rng);
                let ft = FtGreedy::new(&g, stretch).faults(f).run();
                (n, g.edge_count() as f64, ft.spanner().edge_count() as f64)
            });
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for &n in &ns {
                let outs: Vec<f64> = results
                    .iter()
                    .filter(|(rn, _, _)| *rn == n)
                    .map(|(_, _, m)| *m)
                    .collect();
                let ins: Vec<f64> = results
                    .iter()
                    .filter(|(rn, _, _)| *rn == n)
                    .map(|(_, m, _)| *m)
                    .collect();
                let m_out = mean(&outs);
                table.row([
                    stretch.to_string(),
                    f.to_string(),
                    n.to_string(),
                    fnum(mean(&ins)),
                    fnum(m_out),
                ]);
                xs.push(n as f64);
                ys.push(m_out);
            }
            let mut series = Series::new(
                format!("stretch {stretch}, f={f}"),
                markers[marker_idx % markers.len()],
            );
            marker_idx += 1;
            series.points(xs.iter().copied().zip(ys.iter().copied()));
            figure = figure.series(series);
            let ceiling = 1.0 + 1.0 / kappa as f64;
            if let Some(fit) = fit_power_law(&xs, &ys) {
                // Corollary 2 is a worst-case UPPER bound; random inputs may
                // (and do) grow slower. The claim is exponent ≤ ceiling.
                notes.push(format!(
                    "stretch {stretch}, f={f}: measured n-exponent {:.3} (R²={:.3}) within the Corollary 2 ceiling {:.3}: {}",
                    fit.exponent,
                    fit.r_squared,
                    ceiling,
                    if fit.exponent <= ceiling + 0.05 { "yes" } else { "NO" }
                ));
            }
        }
    }
    ExperimentOutput {
        id: "e2",
        title: "Table 2: VFT greedy size vs graph size",
        tables: vec![table],
        figures: vec![figure.render()],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_fits_an_exponent() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.tables[0].row_count(), 3);
        assert!(out.notes[0].contains("n-exponent"));
    }
}
