//! E7 / Figure 2 — Lemma 4 measured: peeling a high-girth witness.
//!
//! Lemma 4: sample `⌈n/2f⌉` vertices, delete blocked edges; the remainder
//! has girth > k+1 and `Ω(m/f²)` edges in expectation. We repeat the
//! sampling many times and report: girth success rate (must be 100% —
//! it is a deterministic consequence of blocking-set validity), the mean
//! edge yield against the expectation formula `m/(4f²) − |B|/(8f³)`, and
//! the minimum yield seen.

use super::{ExperimentContext, ExperimentOutput};
use crate::{cell_seed, fnum, mean, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{expected_yield, peel, BlockingSet, FtGreedy};
use spanner_graph::generators::erdos_renyi;

/// Runs E7. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(40, 90, 150);
    let p = ctx.pick(0.3, 0.2, 0.15);
    let stretch = 3u64;
    let fs: Vec<usize> = ctx.pick(vec![2], vec![2, 3], vec![2, 3]);
    let rounds = ctx.pick(20usize, 100, 300);

    let mut table = Table::new(
        format!(
            "E7 (Lemma 4): peeled witness subgraphs  (G(n={n}, p={p}), stretch {stretch}, {rounds} samples)"
        ),
        [
            "f",
            "|E(H)|",
            "|B|",
            "nodes sampled",
            "mean edges",
            "expected ≥",
            "min edges",
            "girth ok",
        ],
    );
    let mut notes = Vec::new();
    let mut girth_always = true;
    for &f in &fs {
        let mut rng = StdRng::seed_from_u64(cell_seed(7, f as u64, 0));
        let g = erdos_renyi(n, p, &mut rng);
        let ft = FtGreedy::new(&g, stretch).faults(f).run();
        let b = BlockingSet::from_witnesses(&ft);
        let m = ft.spanner().edge_count();
        let expect = expected_yield(m, b.len(), f);
        let h = ft.spanner().graph().clone();
        let blocking = b.clone();
        let cells: Vec<u64> = (0..rounds as u64).collect();
        let outcomes = parallel_map(cells, ctx.threads, |round| {
            let mut rng = StdRng::seed_from_u64(cell_seed(7, f as u64 + 100, round));
            let out = peel(&h, &blocking, f, (stretch + 1) as usize, &mut rng);
            (out.sampled_nodes, out.final_edges(), out.girth_ok)
        });
        let nodes = outcomes[0].0;
        let edge_counts: Vec<f64> = outcomes.iter().map(|o| o.1 as f64).collect();
        let girth_ok = outcomes.iter().all(|o| o.2);
        if !girth_ok {
            girth_always = false;
        }
        table.row([
            f.to_string(),
            m.to_string(),
            b.len().to_string(),
            nodes.to_string(),
            fnum(mean(&edge_counts)),
            fnum(expect),
            fnum(edge_counts.iter().copied().fold(f64::INFINITY, f64::min)),
            if girth_ok { "100%" } else { "NO" }.to_string(),
        ]);
        if mean(&edge_counts) < expect / 2.0 {
            notes.push(format!(
                "NOTE: f={f} mean yield {:.1} below half the expectation {:.1}",
                mean(&edge_counts),
                expect
            ));
        }
    }
    notes.push(format!(
        "girth(H'') > k+1 on every sample (Lemma 4 guarantee): {}",
        if girth_always { "yes" } else { "NO" }
    ));
    ExperimentOutput {
        id: "e7",
        title: "Figure 2: Lemma 4 peeling, measured",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_confirms_girth() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("girth") && n.contains("yes")));
    }
}
