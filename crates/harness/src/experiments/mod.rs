//! The experiment suite: one module per table/figure of EXPERIMENTS.md.
//!
//! The paper (a theory paper) has no empirical section; DESIGN.md §1 maps
//! each of its claims to a measurable experiment. Every module here
//! regenerates one table or figure:
//!
//! | id | claim | output |
//! |----|-------|--------|
//! | e1 | Corollary 2 (size vs `f`)          | Table 1 |
//! | e2 | Corollary 2 (size vs `n`)          | Table 2 |
//! | e3 | Theorem 1 (size vs stretch)        | Table 3 |
//! | e4 | greedy vs DK11 baseline (VFT)      | Table 4 |
//! | e5 | greedy vs union baseline (EFT)     | Table 5 |
//! | e6 | Lemma 3 (blocking sets)            | Figure 1 |
//! | e7 | Lemma 4 (peeling)                  | Figure 2 |
//! | e8 | lower-bound family tightness       | Figure 3 |
//! | e9 | oracle cost exponential in `f`     | Figure 4 |
//! | e10| fault-injection stretch audit      | Table 6 |
//! | e13| sporadic-failure simulation        | Table 9 |
//! | e14| failure-scenario resilience engine | Table 10 |
//! | e15| freeze-and-serve query throughput  | Table 11 |
//! | e16| concurrent multi-tenant serving    | Table 12 |

pub mod e10_stretch_audit;
pub mod e11_heuristic;
pub mod e12_lightness;
pub mod e13_simulation;
pub mod e14_scenarios;
pub mod e15_throughput;
pub mod e16_tenants;
pub mod e1_size_vs_f;
pub mod e2_size_vs_n;
pub mod e3_size_vs_k;
pub mod e4_vft_baselines;
pub mod e5_eft_baselines;
pub mod e6_blocking;
pub mod e7_peeling;
pub mod e8_lower_bound;
pub mod e9_oracle_cost;

use crate::Table;

/// How big the experiment instances should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes: exercises every code path in tests within seconds.
    Smoke,
    /// Reduced sizes for a fast interactive run (`repro --quick`).
    Quick,
    /// The sizes EXPERIMENTS.md reports.
    Full,
}

/// Shared experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentContext {
    /// Instance scale.
    pub scale: Scale,
    /// Worker threads for parameter sweeps.
    pub threads: usize,
}

impl ExperimentContext {
    /// Context with the given scale and all available parallelism.
    pub fn new(scale: Scale) -> Self {
        ExperimentContext {
            scale,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Picks a value per scale.
    pub fn pick<T>(&self, smoke: T, quick: T, full: T) -> T {
        match self.scale {
            Scale::Smoke => smoke,
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The output of one experiment: tables plus free-form observations.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Short id (`"e1"` … `"e10"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The regenerated tables.
    pub tables: Vec<Table>,
    /// Rendered text figures (see [`crate::plot`]); may be empty.
    pub figures: Vec<String>,
    /// Headline observations (printed and recorded in EXPERIMENTS.md).
    pub notes: Vec<String>,
}

/// An experiment entry point, as stored in the [`registry`].
pub type ExperimentFn = fn(&ExperimentContext) -> ExperimentOutput;

/// The full registry in canonical order.
pub fn registry() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("e1", e1_size_vs_f::run as ExperimentFn),
        ("e2", e2_size_vs_n::run),
        ("e3", e3_size_vs_k::run),
        ("e4", e4_vft_baselines::run),
        ("e5", e5_eft_baselines::run),
        ("e6", e6_blocking::run),
        ("e7", e7_peeling::run),
        ("e8", e8_lower_bound::run),
        ("e9", e9_oracle_cost::run),
        ("e10", e10_stretch_audit::run),
        ("e11", e11_heuristic::run),
        ("e12", e12_lightness::run),
        ("e13", e13_simulation::run),
        ("e14", e14_scenarios::run),
        ("e15", e15_throughput::run),
        ("e16", e16_tenants::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let ids: Vec<&str> = registry().iter().map(|(id, _)| *id).collect();
        assert_eq!(
            ids,
            vec![
                "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
                "e14", "e15", "e16"
            ]
        );
    }

    #[test]
    fn pick_respects_scale() {
        let ctx = ExperimentContext::new(Scale::Quick);
        assert_eq!(ctx.pick(1, 2, 3), 2);
        assert_eq!(ExperimentContext::new(Scale::Smoke).pick(1, 2, 3), 1);
        assert_eq!(ExperimentContext::new(Scale::Full).pick(1, 2, 3), 3);
        assert!(ctx.threads >= 1);
    }
}
