//! E6 / Figure 1 — Lemma 3 measured: blocking sets from witnesses.
//!
//! Lemma 3 promises the FT-greedy output a `(k+1)`-blocking set of size at
//! most `f·|E(H)|`, assembled from the recorded witness fault sets. We
//! measure `|B|/|E(H)|` (must be ≤ f; in practice noticeably smaller,
//! since many witnesses are small) and *verify* the blocking property
//! against fully enumerated short cycles.

use super::{ExperimentContext, ExperimentOutput};
use crate::{cell_seed, fnum, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{verify_blocking_set, BlockingSet, FtGreedy};
use spanner_faults::FaultModel;
use spanner_graph::generators::erdos_renyi;

/// Runs E6. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(30, 60, 100);
    let p = ctx.pick(0.3, 0.2, 0.15);
    let stretch = 3u64;
    let fs: Vec<usize> = ctx.pick(vec![1, 2], vec![1, 2, 3], vec![1, 2, 3, 4]);
    let cycle_cap = 500_000usize;

    let mut table = Table::new(
        format!("E6 (Lemma 3): blocking sets from witnesses  (G(n={n}, p={p}), stretch {stretch})"),
        [
            "model",
            "f",
            "|E(H)|",
            "|B|",
            "f*|E(H)|",
            "|B|/|E(H)|",
            "cycles checked",
            "valid",
        ],
    );
    let mut notes = Vec::new();
    let mut all_within_budget = true;
    let mut all_valid = true;
    for model in [FaultModel::Vertex, FaultModel::Edge] {
        let cells: Vec<usize> = fs.clone();
        let results = parallel_map(cells, ctx.threads, |f| {
            let mut rng = StdRng::seed_from_u64(cell_seed(6, f as u64, 0));
            let g = erdos_renyi(n, p, &mut rng);
            let ft = FtGreedy::new(&g, stretch).faults(f).model(model).run();
            let b = BlockingSet::from_witnesses(&ft);
            let report =
                verify_blocking_set(ft.spanner().graph(), &b, (stretch + 1) as usize, cycle_cap);
            (
                f,
                ft.spanner().edge_count(),
                b.len(),
                report.cycles_checked,
                report.is_valid(),
                report.truncated,
                b.is_well_formed(ft.spanner().graph()),
            )
        });
        for (f, m, b_len, cycles, valid, truncated, well_formed) in results {
            if b_len > f * m {
                all_within_budget = false;
            }
            if !valid {
                all_valid = false;
            }
            table.row([
                model.to_string(),
                f.to_string(),
                m.to_string(),
                b_len.to_string(),
                (f * m).to_string(),
                fnum(if m == 0 { 0.0 } else { b_len as f64 / m as f64 }),
                if truncated {
                    format!("{cycles}+ (truncated)")
                } else {
                    cycles.to_string()
                },
                if valid { "yes" } else { "NO" }.to_string(),
            ]);
            if !well_formed {
                notes.push(format!("VIOLATION: malformed pairs at {model}, f={f}"));
            }
        }
    }
    notes.push(format!(
        "|B| ≤ f·|E(H)| everywhere (Lemma 3 size bound): {}",
        if all_within_budget { "yes" } else { "NO" }
    ));
    notes.push(format!(
        "every ≤(k+1)-cycle blocked (Lemma 3 property): {}",
        if all_valid { "yes" } else { "NO" }
    ));
    ExperimentOutput {
        id: "e6",
        title: "Figure 1: Lemma 3 blocking sets, measured",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_validates_lemma3() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert!(out.notes.iter().any(|n| n.contains("yes")));
        assert!(!out.notes.iter().any(|n| n.contains("NO")));
        assert_eq!(out.tables[0].row_count(), 4); // 2 models x 2 f values
    }
}
