//! E3 / Table 3 — size as a function of the stretch parameter.
//!
//! Theorem 1 routes through `b(n/f, k+1)`: larger stretch ⇒ higher girth
//! allowed ⇒ sparser output. Shape claims: size decreases monotonically in
//! the stretch at every `f`, and the `f = 0` column's output girth always
//! exceeds `stretch + 1` (the structural fact behind the bound).

use super::{ExperimentContext, ExperimentOutput};
use crate::{cell_seed, fnum, mean, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::FtGreedy;
use spanner_extremal::moore::theorem1_bound;
use spanner_graph::generators::erdos_renyi;
use spanner_graph::{girth, FaultMask};

/// Runs E3. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(36, 70, 120);
    let p = ctx.pick(0.3, 0.2, 0.15);
    let stretches: Vec<u64> = ctx.pick(vec![1, 3], vec![1, 3, 5], vec![1, 3, 5, 7]);
    let fs: &[usize] = ctx.pick(&[0, 1][..], &[0, 2], &[0, 2]);
    let seeds = ctx.pick(1u64, 2, 2);

    let mut table = Table::new(
        format!("E3: greedy size vs stretch  (G(n={n}, p={p}), mean over {seeds} seeds)"),
        ["f", "stretch", "|E(H)|", "Thm1 ref", "girth(H) > k+1"],
    );
    let mut notes = Vec::new();
    for &f in fs {
        let mut last: Option<f64> = None;
        let mut monotone = true;
        for &stretch in &stretches {
            let cells: Vec<u64> = (0..seeds).collect();
            let results = parallel_map(cells, ctx.threads, |s| {
                // Seed depends only on (f, s): stretch values are compared
                // on the SAME graphs, making the monotonicity check paired.
                let mut rng = StdRng::seed_from_u64(cell_seed(3, 31 * f as u64, s));
                let g = erdos_renyi(n, p, &mut rng);
                let ft = FtGreedy::new(&g, stretch).faults(f).run();
                let h = ft.spanner().graph();
                let girth_ok = girth::has_girth_greater_than(
                    h,
                    &FaultMask::for_graph(h),
                    (stretch + 1) as usize,
                );
                (ft.spanner().edge_count() as f64, girth_ok)
            });
            let sizes: Vec<f64> = results.iter().map(|(m, _)| *m).collect();
            // The girth property is guaranteed for the f = 0 greedy; for
            // f > 0 short cycles are expected (they are what fault
            // tolerance pays for).
            let girth_all = results.iter().all(|(_, ok)| *ok);
            let m_out = mean(&sizes);
            table.row([
                f.to_string(),
                stretch.to_string(),
                fnum(m_out),
                fnum(theorem1_bound(n as f64, f as u64, stretch)),
                if girth_all { "yes" } else { "no" }.to_string(),
            ]);
            if f == 0 && !girth_all {
                notes.push(format!(
                    "VIOLATION: f=0 stretch {stretch} produced a short cycle"
                ));
            }
            if let Some(prev) = last {
                // Allow 2% slack: FT-greedy sizes at f > 0 are not
                // theoretically monotone per instance, only their bound is.
                if m_out > prev * 1.02 {
                    monotone = false;
                }
            }
            last = Some(m_out);
        }
        notes.push(format!(
            "f={f}: size decreases (2% tolerance) as stretch grows: {}",
            if monotone { "yes" } else { "NO (check table)" }
        ));
    }
    ExperimentOutput {
        id: "e3",
        title: "Table 3: size vs stretch parameter",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_reports_monotonicity() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert!(out.notes.iter().any(|n| n.contains("size decreases")));
        assert!(!out.notes.iter().any(|n| n.contains("VIOLATION")));
        assert_eq!(out.tables[0].row_count(), 4); // 2 f-values x 2 stretches
    }
}
