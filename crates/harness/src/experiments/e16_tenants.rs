//! E16 / Table 12 — concurrent multi-tenant epoch serving.
//!
//! E15 measures the single-tenant read paths; E16 measures the PR-6
//! serving layer doing what it was built for: **many tenants, one
//! frozen artifact, one shared [`EpochServer`]**. Tenants are assigned
//! fault views so that pairs of tenants share a view (tenant `t` uses
//! view `t mod v`, `v = max(1, tenants/2)`), which exercises the
//! server's view interning — the second tenant of a view must reuse the
//! first tenant's masked state, not rebuild it. Three serving
//! strategies answer identical per-tenant workloads:
//!
//! * `router` — the reference: one fresh engine per tenant serving one
//!   pair at a time through
//!   [`spanner_core::serve::route_one`], every query
//!   re-applying the tenant's failure set (the behavior of the deleted
//!   `ResilientRouter` shim — the JSON schema keeps the `router` label);
//! * `shared` — one `EpochServer`, one [`EpochHandle`] session per
//!   tenant, tenants partitioned across `threads` OS threads
//!   (`std::thread::scope`), each thread serving its tenants'
//!   `route_batch` calls against the shared interned views;
//! * `coalesced` — the [`BatchCoalescer`] front-end: every tenant
//!   submits its batch, one `flush` serves each distinct fault view in
//!   a single amortized pass (pooled over the server's worker pool when
//!   `threads > 1`).
//!
//! Grid: tenants × serving threads × batch size at a fixed budget
//! `f = 1`. Every cell asserts all three strategies returned
//! **bit-identical answers** per tenant (routes, edges, distances,
//! errors — the property `epoch_server_props` pins), then reports
//! queries/second. An untimed stats pass additionally certifies the
//! sharing claim itself: opening all tenant sessions builds exactly `v`
//! fault views (`views_built == views`, `epochs_opened == tenants`) —
//! the interning table, not the tenant count, pays the mask work. The
//! same sweep backs `querybench --tenants`, which emits the
//! machine-readable `BENCH_6.json` artifact CI schema-checks.

use super::{ExperimentContext, ExperimentOutput};
use crate::json::{num, obj, s, JsonValue};
use crate::{cell_seed, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_core::routing::{Route, RouteError};
use spanner_core::serve::route_one;
use spanner_core::{BatchCoalescer, EpochHandle, EpochServer, FtGreedy, Ticket};
use spanner_faults::FaultSet;
use spanner_graph::generators::random_geometric;
use spanner_graph::{DijkstraEngine, FaultMask, NodeId, PathScratch};
use std::sync::Arc;
use std::time::Instant;

/// The tenants-bench artifact schema tag; bump when the layout changes.
/// `querybench-4` added the required `host` block (logical CPUs, rustc,
/// OS/arch) so artifacts are comparable across machines.
pub const SCHEMA: &str = "vft-spanner/querybench-4";

/// The pre-host tag still accepted by [`check_artifact`], so committed
/// artifacts from earlier PRs keep validating (`host` optional there).
pub const LEGACY_SCHEMA: &str = "vft-spanner/querybench-2";

/// The stretch target every E16 spanner is built for.
pub const STRETCH: u64 = 3;

/// The fault budget (and per-view failure count) of the sweep.
pub const BUDGET: usize = 1;

/// One cell of the sweep: one tenants × threads × batch configuration,
/// measured over all three serving strategies.
#[derive(Clone, Debug)]
pub struct TenantsCell {
    /// Network size.
    pub n: usize,
    /// Spanner size.
    pub edges: usize,
    /// Concurrent tenant sessions.
    pub tenants: usize,
    /// Distinct fault views among the tenants (`max(1, tenants/2)`).
    pub views: usize,
    /// OS threads (shared path) / worker-pool width (coalesced path).
    pub threads: usize,
    /// Queries per tenant.
    pub batch: usize,
    /// Total queries per strategy (`tenants × batch`).
    pub queries: usize,
    /// Per-tenant fresh-router reference throughput (queries/second).
    pub router_qps: f64,
    /// Shared-server scoped-thread throughput.
    pub shared_qps: f64,
    /// Coalesced-flush throughput.
    pub coalesced_qps: f64,
    /// Fault views actually built when all tenant sessions were open
    /// (must equal [`TenantsCell::views`] — the interning certificate).
    pub views_built: u64,
    /// Epoch sessions opened in the stats pass (must equal `tenants`).
    pub epochs_opened: u64,
    /// Sessions that reused an interned view (`tenants − views`).
    pub views_shared: u64,
    /// Whether all three strategies returned bit-identical answers.
    pub identical: bool,
}

impl TenantsCell {
    /// Shared-path speedup over the per-tenant router reference,
    /// rounded the way the artifact records it.
    pub fn speedup_shared(&self) -> f64 {
        round2(self.shared_qps / self.router_qps)
    }

    /// Coalesced-path speedup over the per-tenant router reference,
    /// rounded the way the artifact records it.
    pub fn speedup_coalesced(&self) -> f64 {
        round2(self.coalesced_qps / self.router_qps)
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// One tenant's workload: its fault view and its batch of live pairs.
struct TenantPlan {
    failures: FaultSet,
    pairs: Vec<(NodeId, NodeId)>,
}

/// Builds the per-tenant workloads for one cell, deterministically from
/// the cell seed. The `views` fault sets are pairwise disjoint (so the
/// cell has exactly `views` distinct fault sets); tenant `t` is
/// assigned view `t mod views`, so assignments wrap and every view
/// (when `tenants >= 2 × views`) serves at least two tenants. Pairs
/// have live, distinct endpoints.
fn plan_tenants(
    n: usize,
    tenants: usize,
    views: usize,
    batch: usize,
    seed: u64,
) -> Vec<TenantPlan> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Views draw disjoint vertex sets: the cell's distinct-fault-set
    // count must be exactly `views`, or the interning certificate
    // (`views_built == views`) would be ruined by a random collision.
    assert!(views * BUDGET < n, "not enough vertices for disjoint views");
    let mut used: Vec<NodeId> = Vec::new();
    let view_sets: Vec<FaultSet> = (0..views)
        .map(|_| {
            let mut down = Vec::with_capacity(BUDGET);
            while down.len() < BUDGET {
                let v = NodeId::new(rng.gen_range(0..n));
                if !down.contains(&v) && !used.contains(&v) {
                    down.push(v);
                }
            }
            used.extend(down.iter().copied());
            FaultSet::vertices(down)
        })
        .collect();
    (0..tenants)
        .map(|t| {
            let failures = view_sets[t % views].clone();
            let live: Vec<NodeId> = (0..n)
                .map(NodeId::new)
                .filter(|v| !failures.vertex_faults().contains(v))
                .collect();
            let pairs = (0..batch)
                .map(|_| {
                    let i = rng.gen_range(0..live.len());
                    let mut j = rng.gen_range(0..live.len() - 1);
                    if j >= i {
                        j += 1;
                    }
                    (live[i], live[j])
                })
                .collect();
            TenantPlan { failures, pairs }
        })
        .collect()
}

type Answers = Vec<Vec<Result<Route, RouteError>>>;

/// Times `serve_all` (one call answers every tenant) `repeats` times,
/// keeping the minimum wall time and the last run's answers.
fn measure(repeats: usize, mut serve_all: impl FnMut() -> Answers) -> (f64, Answers) {
    let mut best = f64::INFINITY;
    let mut answers = Vec::new();
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let run = serve_all();
        best = best.min(start.elapsed().as_secs_f64());
        answers = run;
    }
    (best, answers)
}

/// Serves every tenant through one shared server, tenants partitioned
/// across `threads` scoped OS threads.
fn serve_shared(server: &EpochServer, plan: &[TenantPlan], threads: usize) -> Answers {
    let mut results: Answers = vec![Vec::new(); plan.len()];
    let per_thread = plan.len().div_ceil(threads.max(1));
    std::thread::scope(|scope| {
        for (slots, tenants) in results.chunks_mut(per_thread).zip(plan.chunks(per_thread)) {
            scope.spawn(move || {
                for (out, tenant) in slots.iter_mut().zip(tenants) {
                    *out = server.epoch(&tenant.failures).route_batch(&tenant.pairs);
                }
            });
        }
    });
    results
}

/// Serves every tenant through one coalesced flush: all batches
/// submitted up front, one amortized pass per distinct fault view.
fn serve_coalesced(server: &EpochServer, plan: &[TenantPlan]) -> Answers {
    let sessions: Vec<EpochHandle> = plan.iter().map(|t| server.epoch(&t.failures)).collect();
    let mut coalescer = BatchCoalescer::new(server);
    let tickets: Vec<Ticket> = sessions
        .iter()
        .zip(plan)
        .map(|(session, tenant)| coalescer.submit(session, &tenant.pairs))
        .collect();
    let mut answers = coalescer.flush();
    tickets
        .into_iter()
        .map(|t| std::mem::take(&mut answers[t.index()]))
        .collect()
}

/// Runs the tenants × threads × batch sweep and returns every cell
/// (table rendering and JSON emission both feed off this). `repeats` is
/// the min-of-N methodology.
pub fn sweep(ctx: &ExperimentContext, repeats: usize) -> Vec<TenantsCell> {
    let n = ctx.pick(24, 64, 96);
    let radius = ctx.pick(0.5, 0.3, 0.27);
    let tenant_counts: Vec<usize> = ctx.pick(vec![4], vec![4, 16], vec![4, 16, 64]);
    let thread_counts: Vec<usize> = ctx.pick(vec![2], vec![1, 2], vec![1, 2, 4]);
    let batches: Vec<usize> = ctx.pick(vec![8], vec![16, 128], vec![16, 256]);

    let mut graph_rng = StdRng::seed_from_u64(cell_seed(16, 0, 0));
    let g = random_geometric(n, radius, &mut graph_rng);
    let ft = FtGreedy::new(&g, STRETCH).faults(BUDGET).run();
    let frozen = Arc::new(ft.freeze(&g));

    let mut cells = Vec::new();
    for &tenants in &tenant_counts {
        let views = (tenants / 2).max(1);
        for &threads in &thread_counts {
            for &batch in &batches {
                let seed = cell_seed(16, (tenants * 8 + threads) as u64, batch as u64);
                let plan = plan_tenants(n, tenants, views, batch, seed);

                // Strategy 1: the reference — a fresh engine per
                // tenant, every query re-applying the failure set and
                // serving one pair through `route_one`.
                let (router_secs, router_answers) = measure(repeats, || {
                    plan.iter()
                        .map(|tenant| {
                            let mut engine = DijkstraEngine::new();
                            let mut scratch = PathScratch::new();
                            let mut mask =
                                FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
                            tenant
                                .pairs
                                .iter()
                                .map(|&(u, v)| {
                                    mask.reset_for(frozen.node_count(), frozen.edge_count());
                                    frozen.apply_faults(&tenant.failures, &mut mask);
                                    route_one(&frozen, &mut engine, &mut scratch, &mask, u, v)
                                })
                                .collect()
                        })
                        .collect()
                });

                // Strategy 2: one shared server, tenant sessions
                // served across scoped OS threads.
                let shared = EpochServer::new(Arc::clone(&frozen));
                let (shared_secs, shared_answers) =
                    measure(repeats, || serve_shared(&shared, &plan, threads));

                // Strategy 3: the coalescer — every tenant submits,
                // one flush serves each distinct view in one pass,
                // pooled when the server has workers. Warm the pool
                // outside the timed region (spawn is a one-off cost).
                let pooled = EpochServer::new(Arc::clone(&frozen)).with_threads(threads);
                let _ = serve_coalesced(&pooled, &plan[..1]);
                let (coalesced_secs, coalesced_answers) =
                    measure(repeats, || serve_coalesced(&pooled, &plan));

                // Untimed stats pass on a fresh server: with every
                // tenant session held open, the interning table must
                // have built exactly one view per distinct fault set.
                let audit = EpochServer::new(Arc::clone(&frozen));
                let held: Vec<EpochHandle> =
                    plan.iter().map(|t| audit.epoch(&t.failures)).collect();
                let stats = audit.stats();
                drop(held);

                let identical =
                    router_answers == shared_answers && shared_answers == coalesced_answers;
                let queries = tenants * batch;
                cells.push(TenantsCell {
                    n,
                    edges: frozen.edge_count(),
                    tenants,
                    views,
                    threads,
                    batch,
                    queries,
                    router_qps: queries as f64 / router_secs.max(1e-9),
                    shared_qps: queries as f64 / shared_secs.max(1e-9),
                    coalesced_qps: queries as f64 / coalesced_secs.max(1e-9),
                    views_built: stats.views_built,
                    epochs_opened: stats.epochs_opened,
                    views_shared: stats.views_shared,
                    identical,
                });
            }
        }
    }
    cells
}

fn cell_json(cell: &TenantsCell) -> JsonValue {
    obj([
        ("n", num(cell.n as f64)),
        ("edges_kept", num(cell.edges as f64)),
        ("f", num(BUDGET as f64)),
        ("tenants", num(cell.tenants as f64)),
        ("views", num(cell.views as f64)),
        ("threads", num(cell.threads as f64)),
        ("batch", num(cell.batch as f64)),
        ("queries", num(cell.queries as f64)),
        ("router_qps", num(cell.router_qps.round())),
        ("shared_qps", num(cell.shared_qps.round())),
        ("coalesced_qps", num(cell.coalesced_qps.round())),
        ("speedup_shared", num(cell.speedup_shared())),
        ("speedup_coalesced", num(cell.speedup_coalesced())),
        ("views_built", num(cell.views_built as f64)),
        ("epochs_opened", num(cell.epochs_opened as f64)),
        ("views_shared", num(cell.views_shared as f64)),
        ("identical", JsonValue::Bool(cell.identical)),
    ])
}

/// Builds the machine-readable tenants-bench artifact (the document
/// `querybench --tenants` writes as `BENCH_6.json` and CI
/// schema-checks).
pub fn artifact(scale_name: &str, repeats: usize, cells: &[TenantsCell]) -> JsonValue {
    let all_identical = cells.iter().all(|c| c.identical);
    let best_shared = cells
        .iter()
        .map(TenantsCell::speedup_shared)
        .fold(0.0, f64::max);
    let best_coalesced = cells
        .iter()
        .map(TenantsCell::speedup_coalesced)
        .fold(0.0, f64::max);
    obj([
        ("schema", s(SCHEMA)),
        (
            "generated_by",
            s("cargo run --release -p spanner-harness --bin querybench -- --tenants"),
        ),
        ("host", crate::host::host_json()),
        ("scale", s(scale_name)),
        ("stretch", num(STRETCH as f64)),
        ("f", num(BUDGET as f64)),
        ("repeats", num(repeats as f64)),
        (
            "records",
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
        (
            "summary",
            obj([
                ("cells", num(cells.len() as f64)),
                ("results_identical_all", JsonValue::Bool(all_identical)),
                ("best_speedup_shared", num(best_shared)),
                ("best_speedup_coalesced", num(best_coalesced)),
            ]),
        ),
    ])
}

/// Validates a parsed tenants-bench artifact against the `querybench-2`
/// schema: tag, per-record keys and sanity, the hard requirement that
/// **every** record certifies bit-identical answers across the three
/// serving strategies **and** certifies view interning (`views_built ==
/// views`, `epochs_opened == tenants`), and the summary's agreement
/// with its records.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn check_artifact(doc: &JsonValue) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCHEMA && schema != LEGACY_SCHEMA {
        return Err(format!(
            "unexpected schema {schema:?} (want {SCHEMA:?} or legacy {LEGACY_SCHEMA:?})"
        ));
    }
    if schema == SCHEMA {
        crate::host::check_host(doc)?;
    }
    let records = doc
        .get("records")
        .and_then(JsonValue::as_array)
        .ok_or("missing records array")?;
    if records.is_empty() {
        return Err("empty records array".into());
    }
    let mut best_shared = 0.0f64;
    let mut best_coalesced = 0.0f64;
    for (i, record) in records.iter().enumerate() {
        let field = |key: &str| -> Result<f64, String> {
            record
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("record {i} missing numeric key {key:?}"))
        };
        for key in ["n", "edges_kept", "f", "batch", "queries", "threads"] {
            field(key)?;
        }
        for key in ["router_qps", "shared_qps", "coalesced_qps"] {
            let qps = field(key)?;
            if !qps.is_finite() || qps <= 0.0 {
                return Err(format!("record {i} has a bad {key}: {qps}"));
            }
        }
        best_shared = best_shared.max(field("speedup_shared")?);
        best_coalesced = best_coalesced.max(field("speedup_coalesced")?);
        // Hard gate 1: a single cross-strategy mismatch fails the
        // whole artifact.
        if record.get("identical") != Some(&JsonValue::Bool(true)) {
            return Err(format!(
                "record {i} does not certify identical answers across serving strategies"
            ));
        }
        // Hard gate 2: the sharing certificate. With all tenant
        // sessions open, the server must have built exactly one view
        // per distinct fault set and opened one epoch per tenant.
        let tenants = field("tenants")?;
        let views = field("views")?;
        if field("views_built")? != views {
            return Err(format!(
                "record {i}: views_built != views — tenant sessions did not share interned views"
            ));
        }
        if field("epochs_opened")? != tenants {
            return Err(format!(
                "record {i}: epochs_opened != tenants in the stats pass"
            ));
        }
        if field("views_shared")? != tenants - views {
            return Err(format!(
                "record {i}: views_shared != tenants - views in the stats pass"
            ));
        }
    }
    let summary = doc.get("summary").ok_or("missing summary")?;
    if summary.get("results_identical_all") != Some(&JsonValue::Bool(true)) {
        return Err("summary does not certify identical answers".into());
    }
    for (key, want) in [
        ("best_speedup_shared", best_shared),
        ("best_speedup_coalesced", best_coalesced),
    ] {
        let claimed = summary
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or(format!("summary missing {key}"))?;
        if (claimed - want).abs() > 1e-9 {
            return Err(format!(
                "summary claims {key}={claimed}, records say {want}"
            ));
        }
    }
    Ok(())
}

/// Runs E16. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let cells = sweep(ctx, ctx.pick(1, 2, 3));
    let mut table = Table::new(
        "E16: multi-tenant serving  (shared EpochServer / coalesced flush vs per-tenant routers)",
        [
            "tenants",
            "views",
            "threads",
            "batch",
            "queries",
            "router q/s",
            "shared q/s",
            "shared x",
            "coalesced q/s",
            "coalesced x",
            "identical",
        ],
    );
    let mut all_identical = true;
    let mut all_interned = true;
    let mut best = 0.0f64;
    for cell in &cells {
        all_identical &= cell.identical;
        all_interned &=
            cell.views_built == cell.views as u64 && cell.epochs_opened == cell.tenants as u64;
        best = best
            .max(cell.speedup_shared())
            .max(cell.speedup_coalesced());
        table.row([
            cell.tenants.to_string(),
            cell.views.to_string(),
            cell.threads.to_string(),
            cell.batch.to_string(),
            cell.queries.to_string(),
            format!("{:.0}", cell.router_qps),
            format!("{:.0}", cell.shared_qps),
            format!("{:.2}x", cell.speedup_shared()),
            format!("{:.0}", cell.coalesced_qps),
            format!("{:.2}x", cell.speedup_coalesced()),
            if cell.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let notes = vec![
        format!(
            "all serving strategies bit-identical per tenant (routes, edges, dists, errors): {}",
            if all_identical { "yes" } else { "NO" }
        ),
        format!(
            "view interning certified (views_built == distinct fault sets, every cell): {}",
            if all_interned { "yes" } else { "NO" }
        ),
        format!("best multi-tenant speedup vs per-tenant routers: {best:.2}x"),
    ];
    ExperimentOutput {
        id: "e16",
        title: "Table 12: concurrent multi-tenant epoch serving",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;
    use crate::json;

    #[test]
    fn smoke_sweep_is_identical_and_certifies_sharing() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx, 1);
        assert_eq!(cells.len(), 1, "1 tenant count x 1 thread count x 1 batch");
        for cell in &cells {
            assert!(
                cell.identical,
                "tenants={} threads={} batch={}: strategies diverged",
                cell.tenants, cell.threads, cell.batch
            );
            assert!(cell.router_qps > 0.0 && cell.shared_qps > 0.0 && cell.coalesced_qps > 0.0);
            assert_eq!(cell.views_built, cell.views as u64);
            assert_eq!(cell.epochs_opened, cell.tenants as u64);
            assert_eq!(cell.views_shared, (cell.tenants - cell.views) as u64);
        }
    }

    #[test]
    fn smoke_run_reports_identity_and_interning() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.id, "e16");
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("bit-identical") && n.contains("yes")));
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("interning") && n.contains("yes")));
    }

    #[test]
    fn artifact_round_trips_and_checks() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx, 1);
        let doc = artifact("smoke", 1, &cells);
        let text = doc.to_string();
        let back = json::parse(&text).expect("artifact must be valid JSON");
        check_artifact(&back).expect("artifact must satisfy its own schema");
    }

    #[test]
    fn check_rejects_tampered_artifacts() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx, 1);
        let doc = artifact("smoke", 1, &cells);
        let text = doc
            .to_string()
            .replacen("\"identical\": true", "\"identical\": false", 1);
        assert!(check_artifact(&json::parse(&text).unwrap()).is_err());
        // A sharing regression (views_built drifting up to the tenant
        // count) must also be caught.
        let cheat = doc.to_string().replacen(
            &format!("\"views_built\": {}", cells[0].views),
            &format!("\"views_built\": {}", cells[0].tenants),
            1,
        );
        assert!(check_artifact(&json::parse(&cheat).unwrap()).is_err());
        assert!(check_artifact(&json::parse("{\"schema\": \"nope\"}").unwrap()).is_err());
    }

    #[test]
    fn tenant_plans_are_deterministic_live_and_view_shared() {
        let a = plan_tenants(20, 6, 3, 8, 77);
        let b = plan_tenants(20, 6, 3, 8, 77);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.failures, y.failures, "fault sets drifted");
            assert_eq!(x.pairs, y.pairs, "pairs drifted");
            for &(u, v) in &x.pairs {
                assert_ne!(u, v);
                assert!(!x.failures.vertex_faults().contains(&u));
                assert!(!x.failures.vertex_faults().contains(&v));
            }
        }
        // Tenant t and tenant t + views share a fault view.
        for t in 0..3 {
            assert_eq!(a[t].failures, a[t + 3].failures);
        }
    }
}
