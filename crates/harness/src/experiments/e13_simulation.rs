//! E13 / Table 9 — the motivation, simulated: sporadic failures over time.
//!
//! The paper opens with: "spanners are often applied to systems whose
//! parts are prone to sporadic failures". We run the scenario engine's
//! [`IndependentBernoulli`] failure/repair process over a geometric
//! network and route traffic through spanners built for budgets
//! `f = 0..3` (E14 sweeps the *adversarial* scenarios over the same
//! engine). Claims measured:
//!
//! * **contract**: while the number of simultaneous failures stays within
//!   the budget, connectivity + stretch never break — exactly 0
//!   violations, equivalently a 100% **in-budget** hit rate;
//! * **graceful degradation**: the **overall** hit rate (which also
//!   counts queries issued beyond the budget, where the contract is
//!   suspended) decays with the budget gap instead of collapsing;
//! * the failure process itself (peak concurrency, in-budget fraction) is
//!   reported so the contract columns can be interpreted.
//!
//! The table shows both rates and labels them honestly: "in-budget hit"
//! is the contract's own rate, "overall hit" is the degradation story.

use super::{ExperimentContext, ExperimentOutput};
use crate::{cell_seed, fnum, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::simulation::{run_scenario, IndependentBernoulli, ScenarioConfig};
use spanner_core::FtGreedy;
use spanner_faults::FaultModel;
use spanner_graph::generators::random_geometric;

/// Runs E13. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(30, 60, 90);
    let radius = ctx.pick(0.45, 0.32, 0.27);
    let steps = ctx.pick(60, 200, 400);
    let stretch = 3u64;
    let fs: Vec<usize> = ctx.pick(vec![0, 1], vec![0, 1, 2], vec![0, 1, 2, 3]);

    let mut graph_rng = StdRng::seed_from_u64(cell_seed(13, 0, 0));
    let g = random_geometric(n, radius, &mut graph_rng);

    let mut table = Table::new(
        format!(
            "E13: failure/repair simulation  (geometric n={n}, m={}, {steps} ticks, 2% fail / 25% repair)",
            g.edge_count()
        ),
        [
            "built for f",
            "|E(H)|",
            "in-budget ticks",
            "peak down",
            "contract violations",
            "in-budget hit",
            "overall hit",
            "worst in-budget stretch",
        ],
    );
    let mut notes = Vec::new();
    let config = ScenarioConfig {
        steps,
        queries_per_step: ctx.pick(4, 8, 10),
        model: FaultModel::Vertex,
        ..ScenarioConfig::default()
    };
    let graph = g.clone();
    let outcomes = parallel_map(fs.clone(), ctx.threads, |f| {
        let ft = FtGreedy::new(&graph, stretch).faults(f).run();
        let edges = ft.spanner().edge_count();
        let mut process = IndependentBernoulli {
            failure_probability: 0.02,
            repair_probability: 0.25,
        };
        // Same process seed for every budget: paired comparison (the
        // engine's dedicated process stream makes the fault trajectory
        // identical across budgets).
        let outcome = run_scenario(
            &graph,
            ft.into_spanner(),
            f,
            &config,
            &mut process,
            cell_seed(13, 1, 0),
        );
        (f, edges, outcome)
    });
    let mut violations_total = 0usize;
    let mut overall_hit_rates = Vec::new();
    for (f, edges, outcome) in outcomes {
        violations_total += outcome.contract_violations;
        overall_hit_rates.push(outcome.overall_hit_rate());
        table.row([
            f.to_string(),
            edges.to_string(),
            format!("{}/{}", outcome.steps_within_budget, outcome.steps),
            outcome.peak_failures.to_string(),
            outcome.contract_violations.to_string(),
            format!("{:.1}%", 100.0 * outcome.in_budget_hit_rate()),
            format!("{:.1}%", 100.0 * outcome.overall_hit_rate()),
            fnum(outcome.worst_stretch_within_budget),
        ]);
    }
    notes.push(format!(
        "contract violations while within budget: {violations_total} (must be 0)"
    ));
    let monotone = overall_hit_rates.windows(2).all(|w| w[1] >= w[0] - 0.02);
    notes.push(format!(
        "overall hit rate improves (2% tolerance) with the budget: {}",
        if monotone { "yes" } else { "NO" }
    ));
    ExperimentOutput {
        id: "e13",
        title: "Table 9: sporadic-failure simulation",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_has_clean_contract() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.tables[0].row_count(), 2);
        assert!(out.notes.iter().any(|n| n.contains(": 0 (must be 0)")));
    }
}
