//! E4 / Table 4 — VFT greedy against the DK11-style baseline.
//!
//! The paper's pitch: the greedy is *optimal* in size; prior constructions
//! (like the random-subset method of Dinitz–Krauthgamer) are polynomial
//! time but pay extra factors in `f` (and a log). Shape claims: greedy
//! output ≤ DK output at every `f` (usually by a wide margin); both pass a
//! randomized fault audit; greedy pays more construction time as `f`
//! grows.

use super::{ExperimentContext, ExperimentOutput};
use crate::{cell_seed, fnum, mean, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::baselines::{dk_spanner, DkParams};
use spanner_core::verify::verify_ft_sampled;
use spanner_core::FtGreedy;
use spanner_faults::FaultModel;
use spanner_graph::generators::erdos_renyi;
use std::time::Instant;

/// Runs E4. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(30, 70, 110);
    let p = ctx.pick(0.3, 0.15, 0.12);
    let stretch = 3u64;
    let fs: Vec<usize> = ctx.pick(vec![1], vec![1, 2], vec![1, 2, 3]);
    let seeds = ctx.pick(1u64, 2, 2);
    let audit_trials = ctx.pick(10, 30, 50);
    let dk_multiplier = 3.0;

    let mut table = Table::new(
        format!(
            "E4: VFT greedy vs DK11-style baseline  (G(n={n}, p={p}), stretch {stretch}, mean over {seeds} seeds)"
        ),
        [
            "f",
            "|E(G)|",
            "greedy |E(H)|",
            "DK |E(H)|",
            "DK/greedy",
            "greedy ms",
            "DK ms",
            "greedy audit",
            "DK audit",
        ],
    );
    let mut notes = Vec::new();
    let mut greedy_always_smaller = true;
    for &f in &fs {
        let cells: Vec<u64> = (0..seeds).collect();
        let results = parallel_map(cells, ctx.threads, |s| {
            let mut rng = StdRng::seed_from_u64(cell_seed(4, f as u64, s));
            let g = erdos_renyi(n, p, &mut rng);
            let t0 = Instant::now();
            let greedy = FtGreedy::new(&g, stretch).faults(f).run();
            let greedy_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let dk = dk_spanner(
                &g,
                stretch,
                DkParams::heuristic(n, f, dk_multiplier),
                &mut rng,
            );
            let dk_ms = t1.elapsed().as_secs_f64() * 1e3;
            let greedy_audit = verify_ft_sampled(
                &g,
                greedy.spanner(),
                f,
                FaultModel::Vertex,
                audit_trials,
                &mut rng,
            );
            let dk_audit =
                verify_ft_sampled(&g, &dk, f, FaultModel::Vertex, audit_trials, &mut rng);
            (
                g.edge_count() as f64,
                greedy.spanner().edge_count() as f64,
                dk.edge_count() as f64,
                greedy_ms,
                dk_ms,
                greedy_audit.violations,
                dk_audit.violations,
            )
        });
        let m_in = mean(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let m_greedy = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let m_dk = mean(&results.iter().map(|r| r.2).collect::<Vec<_>>());
        let ms_greedy = mean(&results.iter().map(|r| r.3).collect::<Vec<_>>());
        let ms_dk = mean(&results.iter().map(|r| r.4).collect::<Vec<_>>());
        let greedy_viol: usize = results.iter().map(|r| r.5).sum();
        let dk_viol: usize = results.iter().map(|r| r.6).sum();
        if m_greedy > m_dk {
            greedy_always_smaller = false;
        }
        table.row([
            f.to_string(),
            fnum(m_in),
            fnum(m_greedy),
            fnum(m_dk),
            fnum(m_dk / m_greedy),
            fnum(ms_greedy),
            fnum(ms_dk),
            format!("{greedy_viol} viol"),
            format!("{dk_viol} viol"),
        ]);
        if greedy_viol > 0 {
            notes.push(format!("VIOLATION: greedy failed the audit at f={f}"));
        }
    }
    notes.push(format!(
        "greedy ≤ DK in size at every f: {}",
        if greedy_always_smaller { "yes" } else { "NO" }
    ));
    notes.push(format!(
        "DK heuristic rounds: {} × (f+1)² × ln n (audited empirically)",
        dk_multiplier
    ));
    ExperimentOutput {
        id: "e4",
        title: "Table 4: VFT greedy vs DK11-style baseline",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_compares_baselines() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.tables[0].row_count(), 1);
        assert!(out.notes.iter().any(|n| n.contains("greedy ≤ DK")));
        assert!(!out.notes.iter().any(|n| n.contains("VIOLATION")));
    }
}
