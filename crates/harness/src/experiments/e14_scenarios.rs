//! E14 / Table 10 — the resilience engine: failure scenarios × budgets.
//!
//! E13 measures the paper's motivation under the *least* adversarial
//! failure process imaginable (independent Bernoulli coin flips). The
//! lower-bound constructions (Bodwin–Dinitz–Parter–Vassilevska Williams,
//! arXiv:1710.03164) and the witness sets our own construction records
//! say correlated and adversarial fault sets are where an f-FT spanner
//! earns its size — so E14 sweeps the full scenario engine over a
//! geometric network at budgets `f = 0..3`, one shared process seed for
//! the whole grid. For the budget-independent processes (Bernoulli,
//! regional) every budget therefore faces the *identical* fault
//! trajectory — a paired comparison; the remaining scenarios are
//! parameterized by `f` itself (witnesses of the budget-`f` build,
//! bursts of `2f+1`, an `f`-sized maintenance window), so their rows
//! compare budgets against similarly-scaled, not identical, adversity:
//!
//! * `independent-bernoulli` — the E13 baseline, on the engine;
//! * `correlated-regional` — BFS-neighborhood outages (a power cut);
//! * `witness-replay` — the construction's own recorded witness fault
//!   sets, the sharpest in-budget adversary available;
//! * `burst-cascade` — failure bursts with slow repair (overload regime);
//! * `trace` — a deterministic rolling maintenance window of exactly
//!   `f` components.
//!
//! Claims measured: **exactly 0 contract violations** in every cell (the
//! in-budget hit rate is 100% by definition iff violations are 0), and
//! the overall hit rate tells the graceful-degradation story beyond the
//! budget. The same sweep backs the `scenarios` binary, which emits the
//! machine-readable artifact CI schema-checks.

use super::{ExperimentContext, ExperimentOutput};
use crate::json::{num, obj, s, JsonValue};
use crate::{cell_seed, fnum, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::simulation::{
    run_scenario, AdversarialWitnessReplay, BurstCascade, ContractEvent, CorrelatedRegional,
    FailureProcess, IndependentBernoulli, ScenarioConfig, ScenarioOutcome, Trace,
};
use spanner_core::{FtGreedy, FtSpanner};
use spanner_faults::FaultModel;
use spanner_graph::generators::random_geometric;
use spanner_graph::Graph;

/// The scenario-artifact schema tag; bump when the layout changes.
pub const SCHEMA: &str = "vft-spanner/scenarios-1";

/// The stretch target every E14 spanner is built for (recorded in the
/// artifact — keep them in lockstep).
pub const STRETCH: u64 = 3;

/// The scenario names E14 sweeps, in table order.
pub const SCENARIOS: [&str; 5] = [
    "independent-bernoulli",
    "correlated-regional",
    "witness-replay",
    "burst-cascade",
    "trace",
];

/// One cell of the sweep: one scenario run against one budget's spanner.
#[derive(Clone, Debug)]
pub struct ScenarioCell {
    /// The scenario name (one of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// The fault budget the spanner was built (and simulated) for.
    pub f: usize,
    /// Spanner size.
    pub edges: usize,
    /// The exact engine outcome.
    pub outcome: ScenarioOutcome,
}

fn process_for(
    scenario: &'static str,
    graph: &Graph,
    ft: &FtSpanner,
    f: usize,
    config: &ScenarioConfig,
) -> Box<dyn FailureProcess> {
    match scenario {
        "independent-bernoulli" => Box::new(IndependentBernoulli {
            failure_probability: 0.02,
            repair_probability: 0.25,
        }),
        "correlated-regional" => {
            Box::new(CorrelatedRegional::new(graph, config.model, 1, 0.05, 0.3))
        }
        "witness-replay" => Box::new(AdversarialWitnessReplay::from_witnesses(ft, 5)),
        // Bursts sized past every budget: this cell measures degradation.
        "burst-cascade" => Box::new(BurstCascade::new(0.04, 2 * f + 1, 0.1)),
        // A rolling maintenance window of exactly f components — always
        // within budget, so its contract columns must be spotless.
        "trace" => {
            let components = match config.model {
                FaultModel::Vertex => graph.node_count(),
                FaultModel::Edge => graph.edge_count(),
            };
            let frames = (0..config.steps)
                .map(|t| (0..f).map(|i| (t / 3 + i) % components).collect())
                .collect();
            Box::new(Trace::new(frames))
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

/// Runs the scenario × budget sweep at the context's scale and returns
/// every cell (table rendering and JSON emission both feed off this).
pub fn sweep(ctx: &ExperimentContext) -> Vec<ScenarioCell> {
    let n = ctx.pick(24, 60, 90);
    let radius = ctx.pick(0.5, 0.32, 0.27);
    let steps = ctx.pick(40, 150, 300);
    let fs: Vec<usize> = ctx.pick(vec![0, 1], vec![0, 1, 2], vec![0, 1, 2, 3]);

    let mut graph_rng = StdRng::seed_from_u64(cell_seed(14, 0, 0));
    let g = random_geometric(n, radius, &mut graph_rng);
    let config = ScenarioConfig {
        steps,
        queries_per_step: ctx.pick(4, 8, 10),
        model: FaultModel::Vertex,
        max_logged_events: 32,
    };
    // The constructions are the expensive part; build one per budget.
    let graph = g.clone();
    let fts = parallel_map(fs.clone(), ctx.threads, |f| {
        (f, FtGreedy::new(&graph, STRETCH).faults(f).run())
    });
    let grid: Vec<(&'static str, usize)> = SCENARIOS
        .iter()
        .flat_map(|scenario| fs.iter().map(|f| (*scenario, *f)))
        .collect();
    parallel_map(grid, ctx.threads, |(scenario, f)| {
        let (_, ft) = fts
            .iter()
            .find(|(built_for, _)| *built_for == f)
            .expect("budget built above");
        let mut process = process_for(scenario, &graph, ft, f, &config);
        // One process seed for the whole grid: every scenario × budget
        // cell interprets the same stream (paired comparison).
        let outcome = run_scenario(
            &graph,
            ft.spanner().clone(),
            f,
            &config,
            process.as_mut(),
            cell_seed(14, 1, 0),
        );
        ScenarioCell {
            scenario,
            f,
            edges: ft.spanner().edge_count(),
            outcome,
        }
    })
}

fn event_json(event: &ContractEvent) -> JsonValue {
    obj([
        ("step", num(event.step as f64)),
        ("from", num(event.pair.0.index() as f64)),
        ("to", num(event.pair.1.index() as f64)),
        (
            "achieved",
            if event.achieved.is_finite() {
                num(event.achieved)
            } else {
                JsonValue::Null
            },
        ),
        ("bound", num(event.bound)),
        ("in_budget", JsonValue::Bool(event.in_budget)),
    ])
}

fn cell_json(cell: &ScenarioCell) -> JsonValue {
    let o = &cell.outcome;
    obj([
        ("scenario", s(cell.scenario)),
        ("f", num(cell.f as f64)),
        ("edges_kept", num(cell.edges as f64)),
        ("steps", num(o.steps as f64)),
        ("steps_within_budget", num(o.steps_within_budget as f64)),
        ("peak_failures", num(o.peak_failures as f64)),
        ("queries", num(o.queries as f64)),
        ("in_budget_queries", num(o.in_budget_queries as f64)),
        ("routed", num(o.routed as f64)),
        ("served_within_stretch", num(o.served_within_stretch as f64)),
        (
            "in_budget_served_within_stretch",
            num(o.in_budget_served_within_stretch as f64),
        ),
        ("contract_violations", num(o.contract_violations as f64)),
        ("in_budget_hit_rate", num(o.in_budget_hit_rate())),
        ("overall_hit_rate", num(o.overall_hit_rate())),
        ("availability", num(o.availability())),
        (
            "worst_stretch_within_budget",
            num(o.worst_stretch_within_budget),
        ),
        (
            "events",
            JsonValue::Array(o.events.iter().map(event_json).collect()),
        ),
        ("events_dropped", num(o.events_dropped as f64)),
    ])
}

/// Builds the machine-readable scenario artifact (the document the
/// `scenarios` binary writes and CI schema-checks).
pub fn artifact(scale_name: &str, cells: &[ScenarioCell]) -> JsonValue {
    let total_violations: usize = cells.iter().map(|c| c.outcome.contract_violations).sum();
    obj([
        ("schema", s(SCHEMA)),
        (
            "generated_by",
            s("cargo run --release -p spanner-harness --bin scenarios"),
        ),
        ("scale", s(scale_name)),
        ("stretch", num(STRETCH as f64)),
        (
            "records",
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
        (
            "summary",
            obj([
                ("cells", num(cells.len() as f64)),
                ("total_contract_violations", num(total_violations as f64)),
                ("all_clean", JsonValue::Bool(total_violations == 0)),
            ]),
        ),
    ])
}

/// Validates a parsed scenario artifact against the `scenarios-1`
/// schema: tag, per-record keys, counter sanity, and the summary's
/// clean-contract certification.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn check_artifact(doc: &JsonValue) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema {schema:?} (want {SCHEMA:?})"));
    }
    let records = doc
        .get("records")
        .and_then(JsonValue::as_array)
        .ok_or("missing records array")?;
    if records.is_empty() {
        return Err("empty records array".into());
    }
    let mut total = 0.0f64;
    for (i, record) in records.iter().enumerate() {
        let field = |key: &str| -> Result<f64, String> {
            record
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("record {i} missing numeric key {key:?}"))
        };
        if record.get("scenario").and_then(JsonValue::as_str).is_none() {
            return Err(format!("record {i} missing scenario name"));
        }
        let queries = field("queries")?;
        let in_budget = field("in_budget_queries")?;
        let served = field("served_within_stretch")?;
        let in_budget_served = field("in_budget_served_within_stretch")?;
        let violations = field("contract_violations")?;
        for key in [
            "f",
            "edges_kept",
            "steps",
            "steps_within_budget",
            "peak_failures",
            "routed",
            "in_budget_hit_rate",
            "overall_hit_rate",
            "availability",
            "worst_stretch_within_budget",
            "events_dropped",
        ] {
            field(key)?;
        }
        if record.get("events").and_then(JsonValue::as_array).is_none() {
            return Err(format!("record {i} missing events array"));
        }
        if in_budget > queries || served > queries || in_budget_served > in_budget {
            return Err(format!("record {i} has inconsistent query counters"));
        }
        // The engine counts violations as exactly the unserved in-budget
        // queries; the artifact must agree with its own counters.
        if violations != in_budget - in_budget_served {
            return Err(format!(
                "record {i}: contract_violations {violations} != in-budget misses {}",
                in_budget - in_budget_served
            ));
        }
        total += violations;
    }
    let summary = doc.get("summary").ok_or("missing summary")?;
    let claimed = summary
        .get("total_contract_violations")
        .and_then(JsonValue::as_f64)
        .ok_or("summary missing total_contract_violations")?;
    if claimed != total {
        return Err(format!(
            "summary claims {claimed} total violations, records sum to {total}"
        ));
    }
    if summary.get("all_clean") != Some(&JsonValue::Bool(total == 0.0)) {
        return Err("summary all_clean flag disagrees with the records".into());
    }
    Ok(())
}

/// Runs E14. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let cells = sweep(ctx);
    let mut table = Table::new(
        "E14: failure-scenario resilience engine  (geometric network, paired process seeds)",
        [
            "scenario",
            "built for f",
            "|E(H)|",
            "in-budget ticks",
            "peak down",
            "contract violations",
            "in-budget hit",
            "overall hit",
            "worst in-budget stretch",
        ],
    );
    let mut violations_total = 0usize;
    for cell in &cells {
        let o = &cell.outcome;
        violations_total += o.contract_violations;
        table.row([
            cell.scenario.to_string(),
            cell.f.to_string(),
            cell.edges.to_string(),
            format!("{}/{}", o.steps_within_budget, o.steps),
            o.peak_failures.to_string(),
            o.contract_violations.to_string(),
            format!("{:.1}%", 100.0 * o.in_budget_hit_rate()),
            format!("{:.1}%", 100.0 * o.overall_hit_rate()),
            fnum(o.worst_stretch_within_budget),
        ]);
    }
    let mut notes = vec![format!(
        "contract violations across all scenarios and budgets: {violations_total} (must be 0)"
    )];
    let replay_in_budget = cells
        .iter()
        .filter(|c| c.scenario == "witness-replay")
        .all(|c| c.outcome.steps_within_budget == c.outcome.steps);
    notes.push(format!(
        "witness-replay schedules stay within budget (|F| <= f by construction): {}",
        if replay_in_budget { "yes" } else { "NO" }
    ));
    ExperimentOutput {
        id: "e14",
        title: "Table 10: failure-scenario resilience engine",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;
    use crate::json;

    #[test]
    fn smoke_sweep_is_clean_and_covers_the_grid() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx);
        assert_eq!(cells.len(), SCENARIOS.len() * 2, "5 scenarios x 2 budgets");
        for cell in &cells {
            assert_eq!(
                cell.outcome.contract_violations, 0,
                "{} f={} violated the contract",
                cell.scenario, cell.f
            );
            assert_eq!(cell.outcome.in_budget_hit_rate(), 1.0);
        }
    }

    #[test]
    fn smoke_run_reports_clean_contract() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.id, "e14");
        assert!(out.notes.iter().any(|n| n.contains(": 0 (must be 0)")));
        assert!(out.tables[0].row_count() >= SCENARIOS.len());
    }

    #[test]
    fn artifact_round_trips_and_checks() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx);
        let doc = artifact("smoke", &cells);
        let text = doc.to_string();
        let back = json::parse(&text).expect("artifact must be valid JSON");
        check_artifact(&back).expect("artifact must satisfy its own schema");
    }

    #[test]
    fn check_rejects_tampered_artifacts() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let cells = sweep(&ctx);
        let doc = artifact("smoke", &cells);
        // Flip the summary certification: must be caught.
        let text = doc
            .to_string()
            .replace("\"all_clean\": true", "\"all_clean\": false");
        let back = json::parse(&text).unwrap();
        assert!(check_artifact(&back).is_err());
        assert!(check_artifact(&json::parse("{\"schema\": \"nope\"}").unwrap()).is_err());
    }

    #[test]
    fn sweep_is_deterministic() {
        let ctx = ExperimentContext::new(Scale::Smoke);
        let a = sweep(&ctx);
        let b = sweep(&ctx);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome, y.outcome, "{} f={}", x.scenario, x.f);
        }
    }
}
