//! E1 / Table 1 — VFT greedy size as a function of the fault budget `f`.
//!
//! Corollary 2 predicts `|E(H)| = O(n^{1+1/κ} · f^{1−1/κ})` at stretch
//! `2κ−1`. We sweep `f` at fixed `n`, fit the measured exponent of `f`,
//! and print the Corollary 2 reference values alongside. The shape claims:
//! sizes grow sublinearly in `f`, with exponent at most ≈ `1 − 1/κ`, far
//! below the linear growth a union-of-(f+1)-spanners approach pays.

use super::{ExperimentContext, ExperimentOutput};
use crate::plot::{AxisScale, Plot, Series};
use crate::{cell_seed, fit_power_law, fnum, mean, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::FtGreedy;
use spanner_extremal::moore::corollary2_bound;
use spanner_graph::generators::erdos_renyi;

/// Runs E1. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(40, 80, 140);
    let p = ctx.pick(0.25, 0.15, 0.12);
    let max_f = ctx.pick(2usize, 3, 5);
    let stretches: &[u64] = ctx.pick(&[3][..], &[3, 5], &[3, 5]);
    let seeds = ctx.pick(1u64, 2, 3);

    let mut table = Table::new(
        format!("E1: VFT greedy size vs f  (G(n={n}, p={p}), mean over {seeds} seeds)"),
        ["stretch", "f", "|E(G)|", "|E(H)|", "Cor2 ref", "ratio"],
    );
    let mut notes = Vec::new();
    let mut figures = Vec::new();
    for &stretch in stretches {
        let kappa = stretch.div_ceil(2);
        let cells: Vec<(usize, u64)> = (0..=max_f)
            .flat_map(|f| (0..seeds).map(move |s| (f, s)))
            .collect();
        let results = parallel_map(cells, ctx.threads, |(f, s)| {
            let mut rng = StdRng::seed_from_u64(cell_seed(1, f as u64 * 100 + stretch, s));
            let g = erdos_renyi(n, p, &mut rng);
            let ft = FtGreedy::new(&g, stretch).faults(f).run();
            (f, g.edge_count(), ft.spanner().edge_count())
        });
        // Aggregate by f.
        let mut sizes_by_f: Vec<Vec<f64>> = vec![Vec::new(); max_f + 1];
        let mut input_by_f: Vec<Vec<f64>> = vec![Vec::new(); max_f + 1];
        for (f, m_in, m_out) in results {
            sizes_by_f[f].push(m_out as f64);
            input_by_f[f].push(m_in as f64);
        }
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for f in 0..=max_f {
            let m_out = mean(&sizes_by_f[f]);
            let reference = corollary2_bound(n as f64, f as u64, kappa);
            table.row([
                stretch.to_string(),
                f.to_string(),
                fnum(mean(&input_by_f[f])),
                fnum(m_out),
                fnum(reference),
                fnum(m_out / reference),
            ]);
            if f >= 1 {
                xs.push(f as f64);
                ys.push(m_out);
            }
        }
        let mut measured = Series::new(format!("measured |E(H)| (stretch {stretch})"), '#');
        measured.points(xs.iter().copied().zip(ys.iter().copied()));
        let mut reference = Series::new("Corollary 2 ceiling (scaled)", '.');
        if let (Some(first_x), Some(first_y)) = (xs.first(), ys.first()) {
            // Scale the reference curve through the first measured point so
            // shapes (slopes) are comparable on the same log-log canvas.
            let scale = first_y / corollary2_bound(n as f64, *first_x as u64, kappa);
            reference.points(
                xs.iter()
                    .map(|f| (*f, scale * corollary2_bound(n as f64, *f as u64, kappa))),
            );
        }
        figures.push(
            Plot::new(
                format!("Figure E1 (stretch {stretch}): |E(H)| vs f, log-log"),
                56,
                14,
            )
            .scale(AxisScale::Log, AxisScale::Log)
            .series(measured)
            .series(reference)
            .render(),
        );
        let ceiling = 1.0 - 1.0 / kappa as f64;
        if let Some(fit) = fit_power_law(&xs, &ys) {
            notes.push(format!(
                "stretch {stretch}: measured f-exponent {:.3} (R²={:.3}) within the Corollary 2 ceiling {:.3}: {}",
                fit.exponent,
                fit.r_squared,
                ceiling,
                if fit.exponent <= ceiling + 0.05 { "yes" } else { "NO" }
            ));
        }
    }
    ExperimentOutput {
        id: "e1",
        title: "Table 1: VFT greedy size vs fault budget",
        tables: vec![table],
        figures,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_produces_rows_and_fit() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.id, "e1");
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].row_count(), 3); // f = 0, 1, 2 at one stretch
        assert!(!out.notes.is_empty());
    }
}
