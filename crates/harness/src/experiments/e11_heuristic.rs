//! E11 / Table 7 — ablation: exact oracle vs polynomial-time heuristic.
//!
//! The paper's open problem asks for a faster FT-greedy. The
//! `GreedyHeuristicOracle` answers edge tests in `O(f)` shortest-path
//! queries instead of `O(k^f)`, at the price of exactness: it can miss
//! blocking sets, silently dropping edges the spanner needed. This
//! experiment quantifies the trade:
//!
//! * **work**: heuristic query counts grow linearly in `f`, exact
//!   explodes;
//! * **size**: heuristic output lands near the exact size. (Each *kept*
//!   edge is individually justified by a genuine witness, but the greedy
//!   processes diverge once an edge is wrongly dropped, so the totals can
//!   differ in either direction by a little.)
//! * **correctness**: audit violations of the heuristic output, the
//!   honest cost of the shortcut.

use super::{ExperimentContext, ExperimentOutput};
use crate::{cell_seed, fnum, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::verify::verify_ft_sampled;
use spanner_core::{FtGreedy, OracleKind};
use spanner_faults::FaultModel;
use spanner_graph::generators::erdos_renyi;
use std::time::Instant;

/// Runs E11. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(30, 60, 90);
    let p = ctx.pick(0.3, 0.2, 0.15);
    let stretch = 3u64;
    let fs: Vec<usize> = ctx.pick(vec![1, 2], vec![1, 2, 3], vec![1, 2, 3, 4, 5]);
    let audit_trials = ctx.pick(15, 40, 80);

    let mut table = Table::new(
        format!("E11: exact vs heuristic oracle  (G(n={n}, p={p}), stretch {stretch})"),
        [
            "f",
            "exact |E(H)|",
            "heur |E(H)|",
            "exact sp-queries",
            "heur sp-queries",
            "exact ms",
            "heur ms",
            "heur audit viol",
        ],
    );
    let mut notes = Vec::new();
    let mut max_size_gap = 0.0f64;
    let mut any_violation = false;
    let cells: Vec<usize> = fs.clone();
    let results = parallel_map(cells, ctx.threads, |f| {
        let mut rng = StdRng::seed_from_u64(cell_seed(11, f as u64, 0));
        let g = erdos_renyi(n, p, &mut rng);
        let t0 = Instant::now();
        let exact = FtGreedy::new(&g, stretch).faults(f).run();
        let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let heur = FtGreedy::new(&g, stretch)
            .faults(f)
            .oracle(OracleKind::Heuristic)
            .run();
        let heur_ms = t1.elapsed().as_secs_f64() * 1e3;
        let audit = verify_ft_sampled(
            &g,
            heur.spanner(),
            f,
            FaultModel::Vertex,
            audit_trials,
            &mut rng,
        );
        (
            f,
            exact.spanner().edge_count(),
            heur.spanner().edge_count(),
            exact.stats().shortest_path_queries,
            heur.stats().shortest_path_queries,
            exact_ms,
            heur_ms,
            audit.violations,
        )
    });
    for (f, exact_m, heur_m, exact_q, heur_q, exact_ms, heur_ms, viol) in results {
        if exact_m > 0 {
            let gap = (heur_m as f64 - exact_m as f64).abs() / exact_m as f64;
            max_size_gap = max_size_gap.max(gap);
        }
        if viol > 0 {
            any_violation = true;
        }
        table.row([
            f.to_string(),
            exact_m.to_string(),
            heur_m.to_string(),
            exact_q.to_string(),
            heur_q.to_string(),
            fnum(exact_ms),
            fnum(heur_ms),
            format!("{viol}/{audit_trials}"),
        ]);
    }
    notes.push(format!(
        "heuristic size within 5% of exact at every f (max gap {:.2}%): {}",
        100.0 * max_size_gap,
        if max_size_gap <= 0.05 { "yes" } else { "NO" }
    ));
    notes.push(format!(
        "heuristic dropped needed edges (audit violations observed): {} — the honest price of a polynomial oracle; an exact polynomial oracle remains the paper's open problem",
        if any_violation { "yes" } else { "not on these instances" }
    ));
    ExperimentOutput {
        id: "e11",
        title: "Table 7: exact vs heuristic oracle ablation (open problem)",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_reports_tradeoff() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.tables[0].row_count(), 2);
        assert!(out.notes.iter().any(|n| n.contains("max gap")));
    }
}
