//! E12 / Table 8 — weight-sensitive quality: lightness and degrees.
//!
//! Edge count is the paper's currency, but deployments price edges by
//! length. On geometric instances (weights = scaled distances) we report
//! lightness (spanner weight / MST weight) and degree statistics for the
//! greedy at several budgets and for the DK baseline. Shape claims:
//! lightness grows with `f` (redundancy costs wire), greedy is lighter
//! than DK at equal `f`, and all audits stay clean.

use super::{ExperimentContext, ExperimentOutput};
use crate::{cell_seed, fnum, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::baselines::{dk_spanner, DkParams};
use spanner_core::metrics::spanner_metrics;
use spanner_core::verify::verify_ft_sampled;
use spanner_core::FtGreedy;
use spanner_faults::FaultModel;
use spanner_graph::generators::random_geometric;

/// Runs E12. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(40, 80, 130);
    let radius = ctx.pick(0.45, 0.3, 0.24);
    let stretch = 3u64;
    let fs: Vec<usize> = ctx.pick(vec![0, 1], vec![0, 1, 2], vec![0, 1, 2, 3]);
    let audit_trials = ctx.pick(10, 30, 60);

    let mut rng = StdRng::seed_from_u64(cell_seed(12, 0, 0));
    let g = random_geometric(n, radius, &mut rng);

    let mut table = Table::new(
        format!(
            "E12: lightness & degrees on a geometric instance  (n={n}, radius {radius}, m={}, stretch {stretch})",
            g.edge_count()
        ),
        [
            "construction",
            "f",
            "|E(H)|",
            "lightness",
            "max deg",
            "avg deg",
            "audit viol",
        ],
    );
    let mut notes = Vec::new();
    let mut last_lightness = 0.0f64;
    let mut lightness_monotone = true;
    let mut greedy_lighter_than_dk = true;
    for &f in &fs {
        let ft = FtGreedy::new(&g, stretch).faults(f).run();
        let m = spanner_metrics(&g, ft.spanner());
        let audit = verify_ft_sampled(
            &g,
            ft.spanner(),
            f,
            FaultModel::Vertex,
            audit_trials,
            &mut rng,
        );
        if m.lightness + 1e-9 < last_lightness {
            lightness_monotone = false;
        }
        last_lightness = m.lightness;
        table.row([
            "ft-greedy".to_string(),
            f.to_string(),
            m.edges.to_string(),
            fnum(m.lightness),
            m.max_degree.to_string(),
            fnum(m.avg_degree),
            audit.violations.to_string(),
        ]);
        if f > 0 {
            let dk = dk_spanner(&g, stretch, DkParams::heuristic(n, f, 3.0), &mut rng);
            let dm = spanner_metrics(&g, &dk);
            let dk_audit =
                verify_ft_sampled(&g, &dk, f, FaultModel::Vertex, audit_trials, &mut rng);
            if dm.lightness < m.lightness {
                greedy_lighter_than_dk = false;
            }
            table.row([
                "dk-baseline".to_string(),
                f.to_string(),
                dm.edges.to_string(),
                fnum(dm.lightness),
                dm.max_degree.to_string(),
                fnum(dm.avg_degree),
                dk_audit.violations.to_string(),
            ]);
        }
    }
    notes.push(format!(
        "greedy lightness grows with f (redundancy costs wire): {}",
        if lightness_monotone { "yes" } else { "NO" }
    ));
    notes.push(format!(
        "greedy lighter than DK at every f > 0: {}",
        if greedy_lighter_than_dk { "yes" } else { "NO" }
    ));
    ExperimentOutput {
        id: "e12",
        title: "Table 8: lightness and degree statistics",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_reports_lightness() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert!(out.tables[0].row_count() >= 3);
        assert!(out.notes.iter().any(|n| n.contains("lightness")));
    }
}
