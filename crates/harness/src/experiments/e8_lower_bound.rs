//! E8 / Figure 3 — tightness: the lower-bound family is incompressible.
//!
//! The biclique blow-up of a girth-(>k+1) base (paper's closing remark,
//! after BDPW18) makes every single edge critical for some fault set of
//! `2(t−1) ≤ f` vertices. Claims measured here:
//!
//! * FT-greedy at budget `f` retains **100%** of the blow-up's edges —
//!   no algorithm can sparsify it, which is what makes Theorem 1 tight;
//! * the same graphs admit a small *edge* blocking set (verified), the
//!   paper's evidence that blocking-set arguments alone cannot improve
//!   the EFT bound;
//! * the family's size tracks `Θ(f² · b(n/f, k+1))`.

use super::{ExperimentContext, ExperimentOutput};
use crate::{fnum, parallel_map, Table};
use spanner_core::{verify_blocking_set, BlockingSet, FtGreedy};
use spanner_extremal::lower_bound::biclique_blowup;
use spanner_extremal::moore::theorem1_bound;
use spanner_extremal::projective;
use spanner_graph::generators::cycle;
use spanner_graph::{girth, FaultMask, Graph};

/// Runs E8. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    // Base graphs with girth > 4, so stretch 3 detours are forced long.
    let bases: Vec<(String, Graph)> = match ctx.scale {
        super::Scale::Smoke => vec![("C8".to_string(), cycle(8))],
        super::Scale::Quick => vec![
            ("C10".to_string(), cycle(10)),
            ("Heawood".to_string(), projective::heawood()),
        ],
        super::Scale::Full => vec![
            ("C12".to_string(), cycle(12)),
            ("Heawood".to_string(), projective::heawood()),
            (
                "PG(2,3)".to_string(),
                projective::incidence_graph(3).expect("3 is prime"),
            ),
        ],
    };
    let fs: Vec<usize> = ctx.pick(vec![2], vec![2, 4], vec![2, 4]);
    let stretch = 3u64;

    let mut table = Table::new(
        format!("E8: lower-bound family (biclique blow-up), stretch {stretch}"),
        [
            "base",
            "f",
            "copies t",
            "nodes",
            "|E|",
            "greedy kept",
            "retention",
            "Thm1 ref",
            "edge-B valid",
        ],
    );
    let mut notes = Vec::new();
    let mut full_retention = true;
    let mut blocking_all_valid = true;
    let cells: Vec<(String, Graph, usize)> = bases
        .iter()
        .flat_map(|(name, base)| fs.iter().map(move |&f| (name.clone(), base.clone(), f)))
        .collect();
    let results = parallel_map(cells, ctx.threads, |(name, base, f)| {
        let t = f / 2 + 1; // criticality budget 2(t-1) = f
        let blow = biclique_blowup(&base, t);
        let g = blow.graph();
        let ft = FtGreedy::new(g, stretch).faults(f).run();
        let kept = ft.spanner().edge_count();
        let retention = kept as f64 / g.edge_count() as f64;
        // Edge blocking set of the remark, verified against all short cycles.
        let base_girth = girth::girth(&base, &FaultMask::for_graph(&base)).unwrap_or(usize::MAX);
        let b = BlockingSet::from_edge_pairs(blow.edge_blocking_set());
        let report = verify_blocking_set(g, &b, base_girth.saturating_sub(1).min(8), 500_000);
        (
            name,
            f,
            t,
            g.node_count(),
            g.edge_count(),
            kept,
            retention,
            report.is_valid(),
        )
    });
    for (name, f, t, nodes, edges, kept, retention, b_valid) in results {
        if retention < 1.0 {
            full_retention = false;
        }
        if !b_valid {
            blocking_all_valid = false;
        }
        table.row([
            name.clone(),
            f.to_string(),
            t.to_string(),
            nodes.to_string(),
            edges.to_string(),
            kept.to_string(),
            fnum(retention),
            fnum(theorem1_bound(nodes as f64, f as u64, stretch)),
            if b_valid { "yes" } else { "NO" }.to_string(),
        ]);
    }
    notes.push(format!(
        "greedy retains 100% of every blow-up (tightness of Theorem 1): {}",
        if full_retention { "yes" } else { "NO" }
    ));
    notes.push(format!(
        "edge blocking sets of the remark verified: {}",
        if blocking_all_valid { "yes" } else { "NO" }
    ));
    ExperimentOutput {
        id: "e8",
        title: "Figure 3: lower-bound family retention",
        tables: vec![table],
        figures: Vec::new(),
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_shows_full_retention() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("100%") && n.contains("yes")));
        assert!(!out.notes.iter().any(|n| n.contains("NO")));
    }
}
