//! E9 / Figure 4 — the open problem, measured: oracle cost explodes in `f`.
//!
//! The paper: "in a naive implementation [the FT greedy algorithm] is
//! exponential in f. It would be interesting to improve this dependence."
//! We fix one input graph and sweep `f`, counting search-tree nodes for
//! (a) the branching oracle with packing pruning + memoization,
//! (b) branching with nothing, (c) brute force (small `f` only), and
//! (d) the full default config including the min-cut shortcut.
//! Shape claims: every exact *search* grows exponentially in `f`; pruning
//! buys a base improvement without changing the shape; the flow shortcut
//! answers the "locally low-connectivity" queries outright and only the
//! residual hard queries pay the exponential search — a concrete datapoint
//! on where the open problem's hardness actually lives.

use super::{ExperimentContext, ExperimentOutput};
use crate::plot::{AxisScale, Plot, Series};
use crate::{cell_seed, fnum, parallel_map, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{FtGreedy, OracleKind};
use spanner_faults::BranchingConfig;
use spanner_graph::generators::erdos_renyi;
use std::time::Instant;

/// Runs E9. See the module docs.
pub fn run(ctx: &ExperimentContext) -> ExperimentOutput {
    let n = ctx.pick(20, 40, 60);
    let p = ctx.pick(0.35, 0.3, 0.25);
    let stretch = 3u64;
    let max_f = ctx.pick(2usize, 4, 6);
    let max_f_noprune = ctx.pick(2usize, 3, 4);
    let max_f_exhaustive = ctx.pick(1usize, 2, 2);

    let mut table = Table::new(
        format!("E9: oracle cost vs f  (G(n={n}, p={p}), stretch {stretch}, whole construction)"),
        [
            "f",
            "search nodes",
            "search ms",
            "no-prune nodes",
            "exhaustive nodes",
            "growth",
            "+cut nodes",
            "cut hits",
        ],
    );
    let mut notes = Vec::new();
    let cells: Vec<usize> = (0..=max_f).collect();
    let results = parallel_map(cells, ctx.threads, |f| {
        let mut rng = StdRng::seed_from_u64(cell_seed(9, 0, 0));
        let g = erdos_renyi(n, p, &mut rng);
        // Pure search: packing + memo, no flow shortcut (the shape claim).
        let t0 = Instant::now();
        let pruned = FtGreedy::new(&g, stretch)
            .faults(f)
            .oracle(OracleKind::BranchingWith(BranchingConfig {
                use_packing: true,
                use_memo: true,
                use_cut_shortcut: false,
            }))
            .run();
        let pruned_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Full default config (with the min-cut shortcut).
        let full = FtGreedy::new(&g, stretch).faults(f).run();
        let noprune_nodes = if f <= max_f_noprune {
            let ft = FtGreedy::new(&g, stretch)
                .faults(f)
                .oracle(OracleKind::BranchingWith(BranchingConfig {
                    use_packing: false,
                    use_memo: false,
                    use_cut_shortcut: false,
                }))
                .run();
            Some(ft.stats().nodes_explored)
        } else {
            None
        };
        let exhaustive_nodes = if f <= max_f_exhaustive {
            let ft = FtGreedy::new(&g, stretch)
                .faults(f)
                .oracle(OracleKind::Exhaustive)
                .run();
            Some(ft.stats().nodes_explored)
        } else {
            None
        };
        (
            f,
            pruned.stats().nodes_explored,
            pruned_ms,
            noprune_nodes,
            exhaustive_nodes,
            full.stats().nodes_explored,
            full.stats().cut_shortcuts,
        )
    });
    let mut prev: Option<u64> = None;
    let mut growth_ratios = Vec::new();
    let mut search_series = Series::new("pure search (packing+memo)", '#');
    let mut naive_series = Series::new("naive search", 'o');
    let mut cut_series = Series::new("with min-cut shortcut", '+');
    for (f, pruned_nodes, pruned_ms, noprune_nodes, exhaustive_nodes, full_nodes, cut_hits) in
        results
    {
        search_series.point(f as f64, pruned_nodes as f64);
        if let Some(v) = noprune_nodes {
            naive_series.point(f as f64, v as f64);
        }
        cut_series.point(f as f64, full_nodes as f64);
        let growth = prev.map(|p| pruned_nodes as f64 / p.max(1) as f64);
        if let Some(gr) = growth {
            if f >= 2 {
                growth_ratios.push(gr);
            }
        }
        table.row([
            f.to_string(),
            pruned_nodes.to_string(),
            fnum(pruned_ms),
            noprune_nodes.map_or("-".to_string(), |v| v.to_string()),
            exhaustive_nodes.map_or("-".to_string(), |v| v.to_string()),
            growth.map_or("-".to_string(), fnum),
            full_nodes.to_string(),
            cut_hits.to_string(),
        ]);
        prev = Some(pruned_nodes);
    }
    if !growth_ratios.is_empty() {
        let geo_mean =
            (growth_ratios.iter().map(|r| r.ln()).sum::<f64>() / growth_ratios.len() as f64).exp();
        notes.push(format!(
            "work grows ×{geo_mean:.2} per extra fault on average (exponential, as the open problem states)"
        ));
    }
    notes.push("pruning (packing + memo) reduces nodes vs the naive search but the growth stays exponential".to_string());
    notes.push("the min-cut flow shortcut ('+cut' columns) resolves the locally-sparse queries without search; the residual hard queries still pay the exponential search".to_string());
    let figure = Plot::new("Figure E9: search nodes vs f (log y)", 56, 14)
        .scale(AxisScale::Linear, AxisScale::Log)
        .series(search_series)
        .series(naive_series)
        .series(cut_series)
        .render();
    ExperimentOutput {
        id: "e9",
        title: "Figure 4: oracle cost vs fault budget (open problem)",
        tables: vec![table],
        figures: vec![figure],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn smoke_run_counts_nodes() {
        let out = run(&ExperimentContext::new(Scale::Smoke));
        assert_eq!(out.tables[0].row_count(), 3);
        assert!(out.notes.iter().any(|n| n.contains("exponential")));
    }
}
