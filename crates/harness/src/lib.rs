//! Experiment harness for the `vft-spanner` reproduction.
//!
//! The paper is a theory paper; EXPERIMENTS.md defines the tables and
//! figures this harness regenerates (E1–E14, see [`experiments`]). The
//! crate also provides the measurement plumbing:
//!
//! * [`Table`] — aligned ASCII tables with CSV export;
//! * [`json`] — serde-free JSON emission/validation for the perf
//!   artifacts (`BENCH_*.json`, written by the `perfbench` binary);
//! * [`fit_power_law`] — log–log exponent fits (the "shape" checks);
//! * [`parallel_map`] — ordered parallel parameter sweeps;
//! * [`cell_seed`] — deterministic per-cell seeding.
//!
//! Run everything with the `repro` binary:
//!
//! ```text
//! cargo run --release -p spanner-harness --bin repro -- all
//! cargo run --release -p spanner-harness --bin repro -- --quick e1 e6
//! ```
//!
//! Track the FT-greedy construction cost (the perf trajectory behind the
//! committed `BENCH_2.json`) with the `perfbench` binary:
//!
//! ```text
//! cargo run --release -p spanner-harness --bin perfbench -- --out BENCH_2.json
//! cargo run --release -p spanner-harness --bin perfbench -- --check BENCH_2.json
//! ```
//!
//! Run the failure-scenario resilience sweep (E14's engine) and emit /
//! schema-check its JSON artifact with the `scenarios` binary:
//!
//! ```text
//! cargo run --release -p spanner-harness --bin scenarios -- --out SCENARIOS.json
//! cargo run --release -p spanner-harness --bin scenarios -- --check SCENARIOS.json
//! ```
//!
//! Track the serving-side throughput trajectory (E15: epoch batches vs
//! the single-query router, behind the committed `BENCH_4.json`) with
//! the `querybench` binary:
//!
//! ```text
//! cargo run --release -p spanner-harness --bin querybench -- --out BENCH_4.json
//! cargo run --release -p spanner-harness --bin querybench -- --check BENCH_4.json
//! ```
//!
//! Track the cold-start trajectory (v2 in-place `open` vs v1 full
//! `decode`, open-to-first-route, behind the committed `BENCH_8.json`)
//! with the `coldbench` binary:
//!
//! ```text
//! cargo run --release -p spanner-harness --bin coldbench -- --out BENCH_8.json
//! cargo run --release -p spanner-harness --bin coldbench -- --check BENCH_8.json
//! ```
//!
//! Track the per-edge witness access trajectory (sharded offset index
//! vs monolithic witness map, bytes touched per lookup, behind the
//! committed `BENCH_10.json`) with the `witnessbench` binary:
//!
//! ```text
//! cargo run --release -p spanner-harness --bin witnessbench -- --out BENCH_10.json
//! cargo run --release -p spanner-harness --bin witnessbench -- --check BENCH_10.json
//! ```
//!
//! Persist, inspect, and serve frozen spanner artifacts (the binary
//! documents specified in `docs/ARTIFACT_FORMAT.md`) with the
//! `spanner-artifact` binary — build once, ship the file, serve without
//! reconstruction:
//!
//! ```text
//! cargo run --release -p spanner-harness --bin spanner-artifact -- \
//!     build --family geometric --n 64 --f 1 --out spanner.vfts
//! cargo run --release -p spanner-harness --bin spanner-artifact -- inspect spanner.vfts
//! cargo run --release -p spanner-harness --bin spanner-artifact -- serve spanner.vfts
//! ```
//!
//! All binaries share the [`cli`] conventions: `--help` on stdout with
//! exit 0, bad arguments and failures on stderr with a non-zero exit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fit;
mod sweep;
mod table;

pub mod cli;
pub mod coldstart;
pub mod corpus;
pub mod experiments;
pub mod frontier;
pub mod host;
pub mod json;
pub mod plot;
pub mod witness_access;

pub use fit::{fit_power_law, mean, std_dev, PowerFit};
pub use sweep::{cell_seed, parallel_map};
pub use table::{fnum, Table};
