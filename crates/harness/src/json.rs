//! Minimal JSON emission and validation for the perf pipeline.
//!
//! The workspace is offline (no serde), but the bench harness must emit
//! machine-readable `BENCH_*.json` artifacts and CI must be able to prove
//! they parse. This module provides the two halves:
//!
//! * [`JsonValue`] with a deterministic writer (object keys keep
//!   insertion order, floats render with enough precision to round-trip
//!   the measurements);
//! * [`parse`], a strict recursive-descent reader used by
//!   `perfbench --check` — it accepts exactly the JSON grammar (RFC 8259,
//!   minus the laxities: no trailing commas, no comments, no NaN).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as f64, as JavaScript would).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved for stable output.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// Convenience: the array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: the float value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Convenience: the string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    Ok(())
}

fn write_value(f: &mut fmt::Formatter<'_>, value: &JsonValue, depth: usize) -> fmt::Result {
    match value {
        JsonValue::Null => f.write_str("null"),
        JsonValue::Bool(b) => write!(f, "{b}"),
        JsonValue::Number(x) => {
            // JSON has no NaN/Infinity. `num` rejects them at
            // construction; a directly built `Number(inf)` degrades to
            // `null` here so Display stays total and the output stays
            // valid JSON either way.
            if !x.is_finite() {
                return f.write_str("null");
            }
            if x.fract() == 0.0 && x.abs() < 1e15 {
                write!(f, "{}", *x as i64)
            } else {
                write!(f, "{x}")
            }
        }
        JsonValue::String(s) => write_escaped(f, s),
        JsonValue::Array(items) => {
            if items.is_empty() {
                return f.write_str("[]");
            }
            f.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                write_indent(f, depth + 1)?;
                write_value(f, item, depth + 1)?;
                f.write_str(if i + 1 == items.len() { "\n" } else { ",\n" })?;
            }
            write_indent(f, depth)?;
            f.write_str("]")
        }
        JsonValue::Object(members) => {
            if members.is_empty() {
                return f.write_str("{}");
            }
            f.write_str("{\n")?;
            for (i, (key, item)) in members.iter().enumerate() {
                write_indent(f, depth + 1)?;
                write_escaped(f, key)?;
                f.write_str(": ")?;
                write_value(f, item, depth + 1)?;
                f.write_str(if i + 1 == members.len() { "\n" } else { ",\n" })?;
            }
            write_indent(f, depth)?;
            f.write_str("}")
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, 0)
    }
}

/// Builder sugar: `obj([("k", v), …])`.
pub fn obj<I: IntoIterator<Item = (&'static str, JsonValue)>>(members: I) -> JsonValue {
    JsonValue::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builder sugar for strings.
pub fn s(value: impl Into<String>) -> JsonValue {
    JsonValue::String(value.into())
}

/// Builder sugar for numbers.
///
/// # Panics
///
/// Panics on non-finite values — JSON has no NaN/Infinity, and a
/// measurement that produced one is a bug worth failing loudly on.
pub fn num(value: f64) -> JsonValue {
    assert!(value.is_finite(), "non-finite number has no JSON encoding");
    JsonValue::Number(value)
}

/// A parse failure, with byte offset for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", byte as char))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.parse_number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.bytes.get(p.pos), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > from
        };
        let int_start = self.pos;
        if !digits(self) {
            return self.err("expected digits");
        }
        // RFC 8259: the integer part is `0` or starts with 1-9 — no
        // leading zeros.
        if self.pos - int_start > 1 && self.bytes[int_start] == b'0' {
            return self.err("leading zero in number");
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return self.err("expected exponent digits");
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(x) => Ok(JsonValue::Number(x)),
            Err(_) => self.err("number out of range"),
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex =
                                self.bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or(JsonError {
                                        offset: self.pos,
                                        message: "truncated \\u escape".into(),
                                    })?;
                            let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                                offset: self.pos,
                                message: "non-ascii \\u escape".into(),
                            })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                offset: self.pos,
                                message: "bad \\u escape".into(),
                            })?;
                            // Surrogates are rejected rather than paired:
                            // the perf artifacts never emit them.
                            out.push(char::from_u32(code).ok_or(JsonError {
                                offset: self.pos,
                                message: "invalid code point".into(),
                            })?);
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through unvalidated byte-wise;
                    // re-validate at the end via from_utf8 on the slice.
                    let start = self.pos;
                    while matches!(self.bytes.get(self.pos), Some(c) if *c != b'"' && *c != b'\\') {
                        self.pos += 1;
                    }
                    let chunk =
                        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| {
                            JsonError {
                                offset: start,
                                message: "invalid utf-8 in string".into(),
                            }
                        })?;
                    if let Some(c) = chunk.chars().find(|c| (*c as u32) < 0x20) {
                        return Err(JsonError {
                            offset: start,
                            message: format!("raw control character {:#x} in string", c as u32),
                        });
                    }
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return self.err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing garbage after document");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_bench_record() {
        let doc = obj([
            ("schema", s("vft-spanner/bench-2")),
            ("wall_ms", num(12.75)),
            ("n", num(48.0)),
            (
                "records",
                JsonValue::Array(vec![obj([
                    ("family", s("complete")),
                    ("speedup", num(2.5)),
                    ("exact", JsonValue::Bool(true)),
                    ("note", JsonValue::Null),
                ])]),
            ),
        ]);
        let text = doc.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.get("schema").unwrap().as_str(),
            Some("vft-spanner/bench-2")
        );
        assert_eq!(back.get("wall_ms").unwrap().as_f64(), Some(12.75));
        assert_eq!(back.get("records").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn escapes_and_whitespace() {
        let doc = obj([("weird", s("a\"b\\c\nd\te"))]);
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
        assert_eq!(
            parse("  [1, 2.5, -3e2, \"\\u0041\"]  ").unwrap(),
            JsonValue::Array(vec![num(1.0), num(2.5), num(-300.0), s("A"),])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "01x",
            "\"unterminated",
            "{\"a\":1}{",
            "{\"a\":1,\"a\":2}",
            "01",
            "-007.5",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(num(3.0).to_string(), "3");
        assert_eq!(num(3.5).to_string(), "3.5");
        // Leading-zero-free but zero itself is fine both ways.
        assert_eq!(parse("0").unwrap(), num(0.0));
        assert_eq!(parse("0.5").unwrap(), num(0.5));
    }

    #[test]
    #[should_panic(expected = "no JSON encoding")]
    fn non_finite_numbers_rejected_at_construction() {
        let _ = num(f64::INFINITY);
    }

    #[test]
    fn directly_built_non_finite_degrades_to_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
    }
}
