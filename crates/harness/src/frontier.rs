//! The construction scale frontier: partitioned vs monolithic
//! FT-greedy at large `n`, as a committed artifact (`BENCH_9.json`,
//! schema [`SCHEMA`], emitted and checked by the `frontierbench` bin).
//!
//! Serving got fast first (`BENCH_4`/`6`/`8`); construction stayed the
//! ceiling, topping out around `n ≈ 10²` in `perfbench`. This sweep
//! measures the attack on that ceiling: random geometric networks of
//! increasing `n`, each built two ways —
//!
//! * **partitioned** — `spanner_core::partition`
//!   (BFS-ball shards → per-shard FT-greedy on one shared worker pool
//!   → boundary stitch), with per-phase wall times recorded;
//! * **monolithic** — the pooled FT-greedy path
//!   (`OracleKind::Parallel`), run only up to a per-scale cutoff cell
//!   (beyond it the monolithic build is exactly the wall this bench
//!   exists to document).
//!
//! The committed full-scale artifact carries three gates, enforced by
//! [`check_artifact`]: the partitioned build completes at
//! `n ≥ `[`MIN_FRONTIER_N`], is at least [`MIN_SPEEDUP`]× faster than
//! monolithic at the largest cell both finish, and its size inflation
//! stays within [`MAX_INFLATION`]× of the monolithic spanner at every
//! overlapping cell. Partitioning trades size optimality — never
//! correctness: every record also asserts the pool spawned exactly once
//! ([`spanner_faults::OracleStats::pool_spawns`]), and the smallest
//! cell's partitioned output is audited against the stretch contract
//! under sampled fault sets before the artifact is written.

use crate::experiments::Scale;
use crate::json::{num, obj, s, JsonValue};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::partition::PartitionedFtGreedy;
use spanner_core::verify::verify_ft_sampled;
use spanner_core::{FtGreedy, OracleKind};
use spanner_faults::FaultModel;
use spanner_graph::generators::random_geometric;
use spanner_graph::Graph;
use std::time::Instant;

/// The frontier artifact schema tag; bump when the layout changes.
pub const SCHEMA: &str = "vft-spanner/frontier-1";

/// The stretch target every frontier spanner is built for.
pub const STRETCH: u64 = 3;

/// The fault budget every frontier spanner is built for.
pub const BUDGET: usize = 1;

/// Full-scale gate: the largest partitioned cell must reach this `n`.
pub const MIN_FRONTIER_N: usize = 10_000;

/// Full-scale gate: partitioned vs monolithic speedup floor at the
/// largest cell both finish.
pub const MIN_SPEEDUP: f64 = 4.0;

/// Gate at every overlapping cell: partitioned size must stay within
/// this factor of the monolithic spanner.
pub const MAX_INFLATION: f64 = 1.25;

/// Sampled fault sets for the pre-write contract audit on the smallest
/// cell.
const AUDIT_TRIALS: usize = 60;

/// One workload cell: a geometric network at a given scale.
#[derive(Clone, Copy, Debug)]
pub struct FrontierSpec {
    /// Vertex count.
    pub n: usize,
    /// Geometric connection radius (chosen for mean degree ≈ 7).
    pub radius: f64,
    /// Partitioner target shard size.
    pub shard_target: usize,
    /// Whether the monolithic pooled build runs on this cell.
    pub monolithic: bool,
}

/// The per-scale workloads. Monolithic runs only below the cutoff —
/// that asymmetry is the measurement, not a gap in it.
pub fn workload(scale: Scale) -> Vec<FrontierSpec> {
    let cell = |n: usize, shard_target: usize, monolithic: bool| FrontierSpec {
        n,
        radius: (7.0 / (std::f64::consts::PI * n as f64)).sqrt(),
        shard_target,
        monolithic,
    };
    match scale {
        Scale::Smoke => vec![cell(240, 64, true), cell(480, 64, false)],
        Scale::Quick => vec![cell(600, 128, true), cell(1200, 128, false)],
        Scale::Full => vec![
            cell(1000, 256, true),
            cell(2500, 256, true),
            cell(5000, 256, true),
            cell(10_000, 256, false),
        ],
    }
}

/// A measured partitioned construction.
#[derive(Clone, Debug)]
pub struct PartitionedMeasurement {
    /// Partition/classification phase, seconds.
    pub partition_secs: f64,
    /// Per-shard build phase, seconds.
    pub build_secs: f64,
    /// Boundary stitch phase, seconds.
    pub stitch_secs: f64,
    /// Edges in the stitched union.
    pub edges_kept: usize,
    /// Shards the vertex set split into.
    pub shards: usize,
    /// Size of the largest shard.
    pub largest_shard: usize,
    /// Cross-shard parent edges.
    pub cross_edges: usize,
    /// Edges the stitch pass added.
    pub stitch_kept: usize,
    /// Worker-pool spawns over the whole construction (must be 1).
    pub pool_spawns: u64,
}

impl PartitionedMeasurement {
    /// Total construction wall time across the three phases.
    pub fn total_secs(&self) -> f64 {
        self.partition_secs + self.build_secs + self.stitch_secs
    }
}

/// A measured monolithic pooled construction.
#[derive(Clone, Copy, Debug)]
pub struct MonolithicMeasurement {
    /// Construction wall time, seconds.
    pub wall_secs: f64,
    /// Edges kept.
    pub edges_kept: usize,
}

/// One swept cell: the partitioned build, and the monolithic build
/// where the workload runs it.
#[derive(Clone, Debug)]
pub struct FrontierCell {
    /// The workload spec measured.
    pub spec: FrontierSpec,
    /// Input edge count of the generated network.
    pub m: usize,
    /// The partitioned measurement (min-total over repeats).
    pub partitioned: PartitionedMeasurement,
    /// The monolithic measurement, when the spec runs it.
    pub monolithic: Option<MonolithicMeasurement>,
}

impl FrontierCell {
    /// Monolithic wall / partitioned wall, when both ran.
    pub fn speedup(&self) -> Option<f64> {
        self.monolithic
            .map(|m| m.wall_secs / self.partitioned.total_secs())
    }

    /// Partitioned size / monolithic size, when both ran.
    pub fn inflation(&self) -> Option<f64> {
        self.monolithic
            .map(|m| self.partitioned.edges_kept as f64 / m.edges_kept as f64)
    }
}

/// Deterministically regenerates a cell's input network.
pub fn cell_graph(spec: &FrontierSpec) -> Graph {
    let mut rng = StdRng::seed_from_u64(0x9F0 + spec.n as u64);
    random_geometric(spec.n, spec.radius, &mut rng)
}

/// Runs the sweep: every cell of `workload(scale)`, `repeats` runs per
/// measurement (minimum kept), `threads` pool workers on both paths.
///
/// # Errors
///
/// Fails when a partitioned construction violates the pool-reuse
/// contract (`pool_spawns != 1`) or the smallest cell's partitioned
/// output fails the sampled stretch-contract audit — the artifact must
/// not be written from a run that cannot certify its own output.
pub fn sweep(scale: Scale, repeats: usize, threads: usize) -> Result<Vec<FrontierCell>, String> {
    let repeats = repeats.max(1);
    let mut cells = Vec::new();
    for (index, spec) in workload(scale).iter().enumerate() {
        let graph = cell_graph(spec);
        let mut best: Option<PartitionedMeasurement> = None;
        let mut last_built = None;
        for _ in 0..repeats {
            let start = Instant::now();
            let built = PartitionedFtGreedy::new(&graph, STRETCH)
                .faults(BUDGET)
                .shard_target(spec.shard_target)
                .threads(threads)
                .run();
            // Phases are the construction's own clocks; the outer timer
            // only guards against losing time outside them.
            let _ = start.elapsed();
            let r = built.report();
            if r.pool_spawns != 1 {
                return Err(format!(
                    "n={}: pooled oracle spawned {} pools (the reuse contract is exactly 1)",
                    spec.n, r.pool_spawns
                ));
            }
            let m = PartitionedMeasurement {
                partition_secs: r.partition_secs,
                build_secs: r.build_secs,
                stitch_secs: r.stitch_secs,
                edges_kept: built.ft().spanner().edge_count(),
                shards: r.shards,
                largest_shard: r.largest_shard,
                cross_edges: r.cross_edges,
                stitch_kept: r.stitch_kept,
                pool_spawns: r.pool_spawns,
            };
            if best
                .as_ref()
                .map_or(true, |b| m.total_secs() < b.total_secs())
            {
                best = Some(m);
            }
            last_built = Some(built);
        }
        let partitioned = best.expect("at least one repeat");
        if index == 0 {
            // Contract audit on the smallest cell: sampled fault sets
            // against the per-edge criterion, before anything is written.
            let built = last_built.expect("at least one repeat");
            let mut rng = StdRng::seed_from_u64(0xAD17);
            let audit = verify_ft_sampled(
                &graph,
                built.ft().spanner(),
                BUDGET,
                FaultModel::Vertex,
                AUDIT_TRIALS,
                &mut rng,
            );
            if !audit.satisfied() {
                return Err(format!(
                    "n={}: partitioned spanner failed the sampled contract audit: {audit:?}",
                    spec.n
                ));
            }
        }
        let monolithic = if spec.monolithic {
            let mut best: Option<MonolithicMeasurement> = None;
            for _ in 0..repeats {
                let start = Instant::now();
                let ft = FtGreedy::new(&graph, STRETCH)
                    .faults(BUDGET)
                    .oracle(OracleKind::Parallel(threads))
                    .run();
                let wall_secs = start.elapsed().as_secs_f64();
                let m = MonolithicMeasurement {
                    wall_secs,
                    edges_kept: ft.spanner().edge_count(),
                };
                if best.as_ref().map_or(true, |b| m.wall_secs < b.wall_secs) {
                    best = Some(m);
                }
            }
            best
        } else {
            None
        };
        cells.push(FrontierCell {
            spec: *spec,
            m: graph.edge_count(),
            partitioned,
            monolithic,
        });
    }
    Ok(cells)
}

fn ms(secs: f64) -> JsonValue {
    num((secs * 1e3 * 1000.0).round() / 1000.0)
}

fn cell_json(cell: &FrontierCell) -> JsonValue {
    let p = &cell.partitioned;
    let mut members = vec![
        ("family", s("geometric")),
        ("n", num(cell.spec.n as f64)),
        ("m_input", num(cell.m as f64)),
        ("f", num(BUDGET as f64)),
        ("stretch", num(STRETCH as f64)),
        ("shard_target", num(cell.spec.shard_target as f64)),
        (
            "partitioned",
            obj([
                ("partition_ms", ms(p.partition_secs)),
                ("build_ms", ms(p.build_secs)),
                ("stitch_ms", ms(p.stitch_secs)),
                ("total_ms", ms(p.total_secs())),
                ("edges_kept", num(p.edges_kept as f64)),
                ("shards", num(p.shards as f64)),
                ("largest_shard", num(p.largest_shard as f64)),
                ("cross_edges", num(p.cross_edges as f64)),
                ("stitch_kept", num(p.stitch_kept as f64)),
                ("pool_spawns", num(p.pool_spawns as f64)),
            ]),
        ),
    ];
    match cell.monolithic {
        Some(m) => {
            members.push((
                "monolithic",
                obj([
                    ("wall_ms", ms(m.wall_secs)),
                    ("edges_kept", num(m.edges_kept as f64)),
                ]),
            ));
            members.push((
                "speedup",
                num((cell.speedup().expect("both ran") * 100.0).round() / 100.0),
            ));
            members.push((
                "inflation",
                num((cell.inflation().expect("both ran") * 10000.0).round() / 10000.0),
            ));
        }
        None => {
            members.push(("monolithic", JsonValue::Null));
            members.push(("speedup", JsonValue::Null));
            members.push(("inflation", JsonValue::Null));
        }
    }
    obj(members)
}

/// Builds the full artifact document (what the `frontierbench` bin
/// writes as `BENCH_9.json` and CI schema-checks).
pub fn artifact(
    scale_name: &str,
    repeats: usize,
    threads: usize,
    cells: &[FrontierCell],
) -> JsonValue {
    let frontier_n = cells.iter().map(|c| c.spec.n).max().unwrap_or(0);
    let common = cells
        .iter()
        .filter(|c| c.monolithic.is_some())
        .max_by_key(|c| c.spec.n);
    let max_inflation = cells
        .iter()
        .filter_map(FrontierCell::inflation)
        .fold(0.0, f64::max);
    obj([
        ("schema", s(SCHEMA)),
        (
            "generated_by",
            s("cargo run --release -p spanner-harness --bin frontierbench"),
        ),
        ("host", crate::host::host_json()),
        ("scale", s(scale_name)),
        ("stretch", num(STRETCH as f64)),
        ("f", num(BUDGET as f64)),
        ("repeats", num(repeats as f64)),
        ("pooled_threads", num(threads as f64)),
        (
            "records",
            JsonValue::Array(cells.iter().map(cell_json).collect()),
        ),
        (
            "summary",
            obj([
                ("cells", num(cells.len() as f64)),
                ("frontier_n", num(frontier_n as f64)),
                (
                    "largest_common_n",
                    common.map_or(JsonValue::Null, |c| num(c.spec.n as f64)),
                ),
                (
                    "speedup_at_largest_common",
                    common
                        .and_then(FrontierCell::speedup)
                        .map_or(JsonValue::Null, |x| num((x * 100.0).round() / 100.0)),
                ),
                (
                    "max_inflation",
                    if max_inflation > 0.0 {
                        num((max_inflation * 10000.0).round() / 10000.0)
                    } else {
                        JsonValue::Null
                    },
                ),
                ("pool_reuse_ok", JsonValue::Bool(true)),
                ("contract_sampled_ok", JsonValue::Bool(true)),
            ]),
        ),
    ])
}

/// Validates a parsed frontier artifact against the `frontier-1`
/// schema: tag, host block, per-record keys and sanity, the pool-reuse
/// and contract certifications — and, at **full scale only**, the
/// committed gates: `frontier_n ≥ `[`MIN_FRONTIER_N`], speedup at the
/// largest common cell ≥ [`MIN_SPEEDUP`], inflation ≤ [`MAX_INFLATION`]
/// at every overlapping cell. Smoke/quick artifacts measure cells small
/// enough that the monolithic path has nothing to amortize against, so
/// the floors are a property of the committed full-scale
/// `BENCH_9.json`, not of every emission.
///
/// # Errors
///
/// Returns a description of the first schema violation found.
pub fn check_artifact(doc: &JsonValue) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema tag")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema {schema:?} (want {SCHEMA:?})"));
    }
    crate::host::check_host(doc)?;
    let scale = doc
        .get("scale")
        .and_then(JsonValue::as_str)
        .ok_or("missing scale")?;
    let records = doc
        .get("records")
        .and_then(JsonValue::as_array)
        .ok_or("missing records array")?;
    if records.is_empty() {
        return Err("empty records array".into());
    }
    for (i, record) in records.iter().enumerate() {
        for key in ["family", "n", "m_input", "f", "stretch", "shard_target"] {
            if record.get(key).is_none() {
                return Err(format!("record {i} missing key {key:?}"));
            }
        }
        let part = record
            .get("partitioned")
            .ok_or_else(|| format!("record {i} missing partitioned block"))?;
        for key in [
            "partition_ms",
            "build_ms",
            "stitch_ms",
            "total_ms",
            "edges_kept",
            "shards",
            "cross_edges",
            "stitch_kept",
        ] {
            match part.get(key).and_then(JsonValue::as_f64) {
                Some(x) if x.is_finite() && x >= 0.0 => {}
                _ => return Err(format!("record {i} partitioned.{key} missing or bad")),
            }
        }
        if part.get("pool_spawns").and_then(JsonValue::as_f64) != Some(1.0) {
            return Err(format!(
                "record {i} does not certify pool reuse (partitioned.pool_spawns must be 1)"
            ));
        }
        match record.get("monolithic") {
            Some(JsonValue::Null) => {}
            Some(mono) => {
                for key in ["wall_ms", "edges_kept"] {
                    match mono.get(key).and_then(JsonValue::as_f64) {
                        Some(x) if x.is_finite() && x > 0.0 => {}
                        _ => return Err(format!("record {i} monolithic.{key} missing or bad")),
                    }
                }
                for key in ["speedup", "inflation"] {
                    match record.get(key).and_then(JsonValue::as_f64) {
                        Some(x) if x.is_finite() && x > 0.0 => {}
                        _ => return Err(format!("record {i} {key} missing or bad")),
                    }
                }
            }
            None => return Err(format!("record {i} missing monolithic block")),
        }
    }
    let summary = doc.get("summary").ok_or("missing summary")?;
    for key in ["pool_reuse_ok", "contract_sampled_ok"] {
        if summary.get(key) != Some(&JsonValue::Bool(true)) {
            return Err(format!("summary does not certify {key}"));
        }
    }
    if scale == "full" {
        let frontier_n = summary
            .get("frontier_n")
            .and_then(JsonValue::as_f64)
            .ok_or("summary missing frontier_n")?;
        if frontier_n < MIN_FRONTIER_N as f64 {
            return Err(format!(
                "full-scale frontier_n {frontier_n} is below the committed {MIN_FRONTIER_N} floor"
            ));
        }
        let speedup = summary
            .get("speedup_at_largest_common")
            .and_then(JsonValue::as_f64)
            .ok_or("full-scale summary missing speedup_at_largest_common")?;
        if speedup < MIN_SPEEDUP {
            return Err(format!(
                "speedup at the largest common cell regressed to {speedup:.2}x (committed floor: {MIN_SPEEDUP}x)"
            ));
        }
        for (i, record) in records.iter().enumerate() {
            if let Some(inflation) = record.get("inflation").and_then(JsonValue::as_f64) {
                if inflation > MAX_INFLATION {
                    return Err(format!(
                        "record {i} size inflation {inflation:.4}x exceeds the committed {MAX_INFLATION}x ceiling"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cells() -> Vec<FrontierCell> {
        let spec_small = FrontierSpec {
            n: 60,
            radius: 0.2,
            shard_target: 16,
            monolithic: true,
        };
        let spec_large = FrontierSpec {
            n: 90,
            radius: 0.17,
            shard_target: 16,
            monolithic: false,
        };
        vec![
            FrontierCell {
                spec: spec_small,
                m: 200,
                partitioned: PartitionedMeasurement {
                    partition_secs: 0.001,
                    build_secs: 0.01,
                    stitch_secs: 0.002,
                    edges_kept: 110,
                    shards: 4,
                    largest_shard: 16,
                    cross_edges: 30,
                    stitch_kept: 12,
                    pool_spawns: 1,
                },
                monolithic: Some(MonolithicMeasurement {
                    wall_secs: 0.08,
                    edges_kept: 100,
                }),
            },
            FrontierCell {
                spec: spec_large,
                m: 300,
                partitioned: PartitionedMeasurement {
                    partition_secs: 0.001,
                    build_secs: 0.02,
                    stitch_secs: 0.003,
                    edges_kept: 160,
                    shards: 6,
                    largest_shard: 16,
                    cross_edges: 40,
                    stitch_kept: 15,
                    pool_spawns: 1,
                },
                monolithic: None,
            },
        ]
    }

    #[test]
    fn artifact_round_trips_and_checks_at_smoke() {
        let doc = artifact("smoke", 1, 2, &tiny_cells());
        let reparsed = crate::json::parse(&doc.to_string()).expect("emitted JSON parses");
        check_artifact(&reparsed).expect("smoke artifact passes its schema");
    }

    #[test]
    fn full_scale_gates_fire() {
        // The same tiny cells pass at smoke but must FAIL the full-scale
        // frontier floor (n never reaches 10^4).
        let doc = artifact("full", 1, 2, &tiny_cells());
        let err = check_artifact(&doc).expect_err("full gates must fire");
        assert!(err.contains("frontier_n"), "{err}");
    }

    #[test]
    fn pool_reuse_violation_is_rejected() {
        let mut cells = tiny_cells();
        cells[0].partitioned.pool_spawns = 2;
        let doc = artifact("smoke", 1, 2, &cells);
        let err = check_artifact(&doc).expect_err("pool reuse gate must fire");
        assert!(err.contains("pool_spawns"), "{err}");
    }

    #[test]
    fn inflation_ceiling_fires_at_full() {
        let mut cells = tiny_cells();
        // Make the frontier floor pass so the inflation gate is reached.
        cells[1].spec.n = 20_000;
        cells[0].partitioned.edges_kept = 150; // 1.5x the monolithic 100
        let doc = artifact("full", 1, 2, &cells);
        let err = check_artifact(&doc).expect_err("inflation gate must fire");
        assert!(err.contains("inflation"), "{err}");
    }

    #[test]
    fn speedup_floor_fires_at_full() {
        let mut cells = tiny_cells();
        cells[1].spec.n = 20_000;
        cells[0].monolithic = Some(MonolithicMeasurement {
            wall_secs: 0.014, // ~1.08x the partitioned 0.013
            edges_kept: 100,
        });
        let doc = artifact("full", 1, 2, &cells);
        let err = check_artifact(&doc).expect_err("speedup gate must fire");
        assert!(err.contains("speedup"), "{err}");
    }

    #[test]
    fn smoke_sweep_runs_and_validates() {
        // A real end-to-end smoke sweep: small, but through the actual
        // partitioned and monolithic paths.
        let cells = sweep(Scale::Smoke, 1, 2).expect("smoke sweep succeeds");
        assert_eq!(cells.len(), workload(Scale::Smoke).len());
        assert!(cells[0].monolithic.is_some());
        assert!(cells[1].monolithic.is_none());
        let doc = artifact("smoke", 1, 2, &cells);
        let reparsed = crate::json::parse(&doc.to_string()).expect("emitted JSON parses");
        check_artifact(&reparsed).expect("swept smoke artifact passes its schema");
    }
}
