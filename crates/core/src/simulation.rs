//! The resilience engine: multi-scenario failure simulation over a spanner.
//!
//! The paper's motivation: "spanners are often applied to systems whose
//! parts are prone to sporadic failures". This module makes that claim
//! measurable — and stresses it well beyond the benign case. A pluggable
//! [`FailureProcess`] drives which components are down at each discrete
//! time step, while the engine routes traffic over the (static) spanner
//! and keeps **exact per-query contract accounting**: every query issued
//! while at most `f` components are down must be served within the
//! stretch target, each violating query is counted exactly once at the
//! step it occurs, and a bounded [`ContractEvent`] log records what broke.
//!
//! # Scenarios and the paper claims they stress
//!
//! * [`IndependentBernoulli`] — independent per-component fail/repair
//!   coin flips, the paper's "sporadic failures" read literally. The
//!   least adversarial process imaginable: a baseline, not a stress test.
//! * [`CorrelatedRegional`] — a whole BFS neighborhood goes dark at once
//!   (a power cut, a fiber trench). Theorem 1 quantifies over *every*
//!   fault set `|F| ≤ f`, not over independent ones; clustered faults
//!   probe exactly the sets independent sampling essentially never hits.
//! * [`AdversarialWitnessReplay`] — replays the witness fault sets the
//!   FT-greedy construction itself recorded (the sets that forced each
//!   edge into `H`, the raw material of the Lemma 3 blocking set). These
//!   are the most informed in-budget adversaries available: each one
//!   provably stretched some pair in a partial spanner.
//! * [`BurstCascade`] — correlated failure bursts with slow repair,
//!   spending most steps near or beyond the budget. This measures the
//!   overload regime the lower-bound discussion (Bodwin–Dinitz–Parter–
//!   Vassilevska Williams) says you must budget for: beyond `f` the
//!   contract is suspended, and only graceful degradation remains.
//! * [`Trace`] — explicit scripted schedules (optionally with scripted
//!   queries via [`run_scripted_scenario`]): deterministic regression
//!   harness for the accounting itself.
//!
//! # Determinism
//!
//! A scenario run is a pure function of `(parent, spanner, budget,
//! config, process, seed)`. The seed derives **two independent RNG
//! streams** — one for the failure process, one for query endpoint
//! sampling — so the fault trajectory is identical across spanners,
//! budgets, and query plans (paired comparisons).
//! [`IndependentBernoulli`]'s transition loop is draw-for-draw identical
//! to the pre-engine simulator's (pinned by a regression test against a
//! verbatim copy of that loop). The compatibility is at that
//! transition-loop level only: the old `simulate` interleaved
//! query-shuffle draws on the same stream (the coupling the dedicated
//! process stream removes), and today's [`simulate`] wrapper derives its
//! scenario seed from the caller's RNG via one `next_u64` draw — so old
//! end-to-end trajectories are reproduced by calling [`run_scenario`]
//! with the process stream's seed, not through the wrapper.
//!
//! The query hot path runs on the concurrent serving layer
//! ([`serve`](crate::serve)): the spanner is sealed once into a
//! [`FrozenSpanner`](crate::FrozenSpanner) artifact served by an
//! [`EpochServer`], and each simulation step advances **one epoch
//! session** by an [`EpochDelta`] listing only the components that
//! changed state this step — O(Δ) serving-side work per step
//! ([`EpochHandle::advance`]), not O(|F|), with parent edge ids
//! translated through the artifact's O(1) map. Every query of the step
//! is costed against the step's immutable fault view without path
//! extraction or per-query allocation. Endpoints are index-sampled from
//! a per-step live list and ground-truth parent distances come from a
//! persistent [`DijkstraEngine`]. Because the serving layer is
//! indifferent to where its artifact came from, the same drills run
//! against a spanner frozen in-process or one loaded from a persisted
//! artifact file ([`FrozenSpanner::decode`](crate::FrozenSpanner::decode))
//! — the `network_resilience` example does exactly that.

use crate::routing::RouteError;
use crate::serve::{EpochDelta, EpochHandle, EpochServer};
use crate::{FtSpanner, Spanner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{bfs, DijkstraEngine, Dist, EdgeId, FaultMask, Graph, NodeId};
use std::sync::Arc;

/// Scenario-engine parameters (process-independent knobs).
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// Number of discrete time steps.
    pub steps: usize,
    /// Random route queries issued per step (ignored by
    /// [`run_scripted_scenario`]).
    pub queries_per_step: usize,
    /// Which components fail (vertices or parent edges).
    pub model: FaultModel,
    /// Upper bound on logged [`ContractEvent`]s; further events only
    /// bump [`ScenarioOutcome::events_dropped`]. Aggregate counters stay
    /// exact regardless.
    pub max_logged_events: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            steps: 200,
            queries_per_step: 8,
            model: FaultModel::Vertex,
            max_logged_events: 64,
        }
    }
}

/// Parameters of the classic Bernoulli failure/repair simulation
/// (the [`simulate`] compatibility surface over the scenario engine).
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Number of discrete time steps.
    pub steps: usize,
    /// Probability a live component fails in a step.
    pub failure_probability: f64,
    /// Probability a failed component is repaired in a step.
    pub repair_probability: f64,
    /// Random route queries issued per step.
    pub queries_per_step: usize,
    /// Which components fail (vertices or parent edges).
    pub model: FaultModel,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            steps: 200,
            failure_probability: 0.02,
            repair_probability: 0.25,
            queries_per_step: 8,
            model: FaultModel::Vertex,
        }
    }
}

/// A failure process: decides which components are down at each step.
///
/// Implementations must draw all randomness from the provided `rng`
/// (the engine's dedicated process stream) so trajectories are
/// reproducible and independent of the query plan.
pub trait FailureProcess {
    /// Short human-readable scenario name (shown in reports and tables).
    fn name(&self) -> String;

    /// Called once before the run with the component count (vertices in
    /// the vertex model, parent edges in the edge model).
    fn begin(&mut self, components: usize) {
        let _ = components;
    }

    /// Advances the component state one step, mutating `down` in place
    /// (`down[i]` ⇒ component `i` is failed during this step).
    fn step(&mut self, step: usize, down: &mut [bool], rng: &mut StdRng);
}

/// Independent per-component fail/repair coin flips — the pre-engine
/// simulator's transition process, draw-for-draw (see the module docs
/// for the exact compatibility statement).
///
/// Each step visits components in index order: a down component repairs
/// with `repair_probability`, a live one fails with
/// `failure_probability`.
#[derive(Clone, Copy, Debug)]
pub struct IndependentBernoulli {
    /// Probability a live component fails in a step.
    pub failure_probability: f64,
    /// Probability a failed component is repaired in a step.
    pub repair_probability: f64,
}

impl FailureProcess for IndependentBernoulli {
    fn name(&self) -> String {
        "independent-bernoulli".to_string()
    }

    fn step(&mut self, _step: usize, down: &mut [bool], rng: &mut StdRng) {
        for state in down.iter_mut() {
            if *state {
                if rng.gen_bool(self.repair_probability) {
                    *state = false;
                }
            } else if rng.gen_bool(self.failure_probability) {
                *state = true;
            }
        }
    }
}

/// Correlated regional outages: with some probability per step, a random
/// epicenter vertex takes its whole `radius`-hop BFS neighborhood down
/// with it; failed components repair independently.
///
/// In the vertex model the region is the ball's vertices; in the edge
/// model it is every parent edge incident to a ball vertex (the "fiber
/// trench through a neighborhood" picture). Regions are computed lazily
/// and memoized the first time an epicenter is drawn — a run touches at
/// most ~`steps` epicenters, so eagerly BFS-ing all `n` (and holding
/// up to `O(n·m)` edge indices on dense graphs) would mostly be wasted.
/// Laziness does not affect determinism: regions are a pure function of
/// the graph, and the RNG only draws the epicenter index.
#[derive(Clone, Debug)]
pub struct CorrelatedRegional {
    /// Own the topology so the process stays `'static` (boxable next to
    /// the other processes); a graph clone is far cheaper than the n
    /// BFS runs laziness avoids.
    graph: Graph,
    model: FaultModel,
    radius: u32,
    regions: Vec<Option<Vec<usize>>>,
    outage_probability: f64,
    repair_probability: f64,
}

impl CorrelatedRegional {
    /// Creates a regional-outage process over `parent` for `model`.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]` (checked when drawn).
    pub fn new(
        parent: &Graph,
        model: FaultModel,
        radius: u32,
        outage_probability: f64,
        repair_probability: f64,
    ) -> Self {
        CorrelatedRegional {
            regions: vec![None; parent.node_count()],
            graph: parent.clone(),
            model,
            radius,
            outage_probability,
            repair_probability,
        }
    }

    /// The component region of one epicenter vertex (computed and
    /// memoized on first use).
    pub fn region(&mut self, epicenter: NodeId) -> &[usize] {
        let slot = &mut self.regions[epicenter.index()];
        if slot.is_none() {
            let mask = FaultMask::for_graph(&self.graph);
            let hops = bfs::hop_distances(&self.graph, epicenter, &mask);
            let radius = self.radius;
            *slot = Some(match self.model {
                FaultModel::Vertex => (0..self.graph.node_count())
                    .filter(|v| hops[*v] <= radius)
                    .collect(),
                FaultModel::Edge => self
                    .graph
                    .edges()
                    .filter(|(_, e)| hops[e.u().index()] <= radius || hops[e.v().index()] <= radius)
                    .map(|(id, _)| id.index())
                    .collect(),
            });
        }
        slot.as_deref().expect("filled above")
    }
}

impl FailureProcess for CorrelatedRegional {
    fn name(&self) -> String {
        "correlated-regional".to_string()
    }

    fn step(&mut self, _step: usize, down: &mut [bool], rng: &mut StdRng) {
        for state in down.iter_mut() {
            if *state && rng.gen_bool(self.repair_probability) {
                *state = false;
            }
        }
        if !self.regions.is_empty() && rng.gen_bool(self.outage_probability) {
            let epicenter = rng.gen_range(0..self.regions.len());
            for component in self.region(NodeId::new(epicenter)) {
                down[*component] = true;
            }
        }
    }
}

/// Replays the construction's recorded witness fault sets as the failure
/// schedule: each distinct witness stays down for `dwell` steps, then the
/// next takes over (cycling). Every schedule has size at most `f`, so a
/// correct `f`-FT spanner must serve every query under every one of them.
#[derive(Clone, Debug)]
pub struct AdversarialWitnessReplay {
    schedules: Vec<Vec<usize>>,
    dwell: usize,
}

impl AdversarialWitnessReplay {
    /// Builds a replay over explicit component-index schedules.
    ///
    /// # Panics
    ///
    /// Panics if `dwell == 0`.
    pub fn new(schedules: Vec<Vec<usize>>, dwell: usize) -> Self {
        assert!(dwell > 0, "dwell must be at least one step");
        AdversarialWitnessReplay { schedules, dwell }
    }

    /// Builds a replay from the witnesses an [`FtSpanner`] recorded,
    /// translated to simulator components: vertex witnesses map to vertex
    /// indices; edge witnesses (recorded as *spanner* edge ids) map back
    /// to the parent edge ids the simulator fails. Duplicate witness sets
    /// are collapsed; empty ones (the `f = 0` case) are skipped.
    pub fn from_witnesses(ft: &FtSpanner, dwell: usize) -> Self {
        let mut schedules: Vec<Vec<usize>> = ft
            .witnesses()
            .iter()
            .filter(|w| !w.is_empty())
            .map(|w| match w {
                FaultSet::Vertices(_) => w.component_indices().collect(),
                FaultSet::Edges(spanner_edges) => spanner_edges
                    .iter()
                    .map(|own| ft.spanner().parent_edge(*own).index())
                    .collect(),
            })
            .collect();
        for schedule in &mut schedules {
            schedule.sort_unstable();
            schedule.dedup();
        }
        schedules.sort();
        schedules.dedup();
        AdversarialWitnessReplay::new(schedules, dwell)
    }

    /// Number of distinct schedules in the rotation.
    pub fn schedule_count(&self) -> usize {
        self.schedules.len()
    }
}

impl FailureProcess for AdversarialWitnessReplay {
    fn name(&self) -> String {
        "witness-replay".to_string()
    }

    fn step(&mut self, step: usize, down: &mut [bool], _rng: &mut StdRng) {
        down.fill(false);
        if self.schedules.is_empty() {
            return;
        }
        let active = (step / self.dwell) % self.schedules.len();
        for &component in &self.schedules[active] {
            down[component] = true;
        }
    }
}

/// Failure bursts with slow repair: with `burst_probability` per step, a
/// batch of `burst_size` random components fails simultaneously; failed
/// components repair independently (slowly), so bursts overlap and the
/// process spends long stretches at or beyond the budget — the overload
/// regime where only graceful degradation can be measured.
#[derive(Clone, Debug)]
pub struct BurstCascade {
    burst_probability: f64,
    burst_size: usize,
    repair_probability: f64,
    /// Component-index pool for allocation-free partial Fisher–Yates.
    pool: Vec<usize>,
}

impl BurstCascade {
    /// Creates a burst process.
    pub fn new(burst_probability: f64, burst_size: usize, repair_probability: f64) -> Self {
        BurstCascade {
            burst_probability,
            burst_size,
            repair_probability,
            pool: Vec::new(),
        }
    }
}

impl FailureProcess for BurstCascade {
    fn name(&self) -> String {
        "burst-cascade".to_string()
    }

    fn begin(&mut self, components: usize) {
        self.pool = (0..components).collect();
    }

    fn step(&mut self, _step: usize, down: &mut [bool], rng: &mut StdRng) {
        for state in down.iter_mut() {
            if *state && rng.gen_bool(self.repair_probability) {
                *state = false;
            }
        }
        if self.pool.is_empty() || !rng.gen_bool(self.burst_probability) {
            return;
        }
        let burst = self.burst_size.min(self.pool.len());
        for i in 0..burst {
            let j = rng.gen_range(i..self.pool.len());
            self.pool.swap(i, j);
            down[self.pool[i]] = true;
        }
    }
}

/// An explicit scripted failure schedule: step `t` fails exactly the
/// components of `frames[t]` (nothing after the script ends). This is
/// the deterministic harness the accounting regression tests drive.
#[derive(Clone, Debug)]
pub struct Trace {
    frames: Vec<Vec<usize>>,
}

impl Trace {
    /// Builds a trace from per-step component-index frames.
    pub fn new(frames: Vec<Vec<usize>>) -> Self {
        Trace { frames }
    }
}

impl FailureProcess for Trace {
    fn name(&self) -> String {
        "trace".to_string()
    }

    fn step(&mut self, step: usize, down: &mut [bool], _rng: &mut StdRng) {
        down.fill(false);
        if let Some(frame) = self.frames.get(step) {
            for &component in frame {
                down[component] = true;
            }
        }
    }
}

/// One contract-relevant event: a query that was not served within the
/// stretch target (unreachable or over-stretched), at the step it
/// happened. Only in-budget events are contract violations; over-budget
/// ones are logged for the degradation story.
#[derive(Clone, Debug, PartialEq)]
pub struct ContractEvent {
    /// The step during which the query was issued.
    pub step: usize,
    /// The query endpoints.
    pub pair: (NodeId, NodeId),
    /// The achieved route distance (`f64::INFINITY` when unreachable).
    pub achieved: f64,
    /// The contract bound on the distance: `stretch × dist_{G∖F}(u, v)`.
    pub bound: f64,
    /// Whether at most `f` components were down when it happened (iff so,
    /// this event is a contract violation).
    pub in_budget: bool,
}

/// Exact outcome of a scenario run.
///
/// All counters are per-query and exact; the [`ScenarioOutcome::events`]
/// log is bounded by [`ScenarioConfig::max_logged_events`] with overflow
/// counted in [`ScenarioOutcome::events_dropped`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioOutcome {
    /// The failure process's [`FailureProcess::name`].
    pub scenario: String,
    /// Steps simulated.
    pub steps: usize,
    /// Steps during which at most `f` components were down.
    pub steps_within_budget: usize,
    /// Largest simultaneous failure count seen.
    pub peak_failures: usize,
    /// Total route queries issued (live endpoints, connected in the
    /// surviving parent — the pairs the contract speaks about, plus the
    /// same pairs over budget).
    pub queries: usize,
    /// Queries issued while within budget (the contract's denominator).
    pub in_budget_queries: usize,
    /// Queries answered with *some* surviving route (any budget state).
    pub routed: usize,
    /// Queries served within the stretch target, in any budget state.
    pub served_within_stretch: usize,
    /// Queries served within the stretch target while within budget.
    pub in_budget_served_within_stretch: usize,
    /// In-budget queries that were unreachable or over-stretched — each
    /// violating query counted exactly once, at the step it occurred.
    /// **Must be 0** for a correctly budgeted FT spanner.
    pub contract_violations: usize,
    /// Worst stretch ratio observed on a routed in-budget query.
    pub worst_stretch_within_budget: f64,
    /// Bounded log of queries not served within stretch (see
    /// [`ContractEvent`]).
    pub events: Vec<ContractEvent>,
    /// Events beyond the log bound (aggregate counters stay exact).
    pub events_dropped: usize,
}

/// Pre-engine name for the outcome struct, kept as an alias.
pub type SimulationOutcome = ScenarioOutcome;

impl ScenarioOutcome {
    /// Fraction of **in-budget** queries served within the stretch
    /// target (`1.0` when no in-budget query was issued). Equals `1.0`
    /// exactly when [`ScenarioOutcome::contract_violations`] is `0`: this
    /// is the contract's own hit rate.
    pub fn in_budget_hit_rate(&self) -> f64 {
        if self.in_budget_queries == 0 {
            1.0
        } else {
            self.in_budget_served_within_stretch as f64 / self.in_budget_queries as f64
        }
    }

    /// Fraction of **all** queries served within the stretch target,
    /// including over-budget ones where the contract is suspended (`1.0`
    /// when no query was issued). This is the graceful-degradation
    /// number: how much service survives beyond the budget.
    pub fn overall_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.served_within_stretch as f64 / self.queries as f64
        }
    }

    /// Fraction of all queries answered with some surviving route,
    /// regardless of stretch (`1.0` when no query was issued).
    pub fn availability(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.routed as f64 / self.queries as f64
        }
    }

    fn log_event(&mut self, event: ContractEvent, cap: usize) {
        if self.events.len() < cap {
            self.events.push(event);
        } else {
            self.events_dropped += 1;
        }
    }
}

/// The per-query serving machinery shared by random and scripted runs.
/// The spanner side is an [`EpochHandle`] advanced by one
/// [`EpochDelta`] per step; the parent side (ground truth for the
/// contract) keeps its own reusable mask and Dijkstra engine.
struct QueryServer<'a> {
    parent: &'a Graph,
    handle: EpochHandle,
    parent_engine: DijkstraEngine,
    parent_mask: FaultMask,
    stretch: f64,
    max_events: usize,
}

impl QueryServer<'_> {
    /// Serves one query and folds it into `out`. Exact accounting:
    /// a query counts iff its endpoints are live and connected in the
    /// surviving parent; a violating in-budget query increments
    /// `contract_violations` exactly once, here, at this step.
    fn serve(
        &mut self,
        step: usize,
        a: NodeId,
        b: NodeId,
        within_budget: bool,
        out: &mut ScenarioOutcome,
    ) {
        let Some(best) =
            self.parent_engine
                .dist_bounded(self.parent, a, b, Dist::INFINITE, &self.parent_mask)
        else {
            return; // pair not required to be served
        };
        out.queries += 1;
        if within_budget {
            out.in_budget_queries += 1;
        }
        let best = best.value().unwrap_or(1).max(1) as f64;
        let bound = self.stretch * best;
        match self.handle.route_cost(a, b) {
            Ok(dist) => {
                out.routed += 1;
                let achieved = dist.value().unwrap_or(u64::MAX) as f64;
                let ratio = achieved / best;
                let within_stretch = ratio <= self.stretch + 1e-9;
                if within_stretch {
                    out.served_within_stretch += 1;
                }
                if within_budget {
                    if within_stretch {
                        out.in_budget_served_within_stretch += 1;
                    } else {
                        out.contract_violations += 1;
                    }
                    if ratio > out.worst_stretch_within_budget {
                        out.worst_stretch_within_budget = ratio;
                    }
                }
                if !within_stretch {
                    out.log_event(
                        ContractEvent {
                            step,
                            pair: (a, b),
                            achieved,
                            bound,
                            in_budget: within_budget,
                        },
                        self.max_events,
                    );
                }
            }
            Err(RouteError::Unreachable { .. }) => {
                if within_budget {
                    out.contract_violations += 1;
                }
                out.log_event(
                    ContractEvent {
                        step,
                        pair: (a, b),
                        achieved: f64::INFINITY,
                        bound,
                        in_budget: within_budget,
                    },
                    self.max_events,
                );
            }
            // Endpoint failures are filtered before serving; anything
            // else is not a pair the contract speaks about.
            Err(_) => {}
        }
    }
}

/// Salt separating the query-sampling RNG stream from the failure
/// process stream (SplitMix64's increment, an arbitrary odd constant).
const QUERY_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Runs `process` against `spanner` (built for `budget` faults at its
/// stretch) over its `parent` graph, issuing
/// [`ScenarioConfig::queries_per_step`] random live-endpoint queries per
/// step.
///
/// Contract checked per query while the simultaneous failure count is at
/// most `budget`: every pair with live endpoints that is connected in
/// the surviving *parent* must be routable in the surviving spanner
/// within the spanner's stretch target. See the module docs for the RNG
/// stream layout.
pub fn run_scenario(
    parent: &Graph,
    spanner: Spanner,
    budget: usize,
    config: &ScenarioConfig,
    process: &mut dyn FailureProcess,
    seed: u64,
) -> ScenarioOutcome {
    run_engine(parent, spanner, budget, config, process, None, seed)
}

/// Like [`run_scenario`], but issues the scripted queries of
/// `queries[step]` instead of random ones (steps beyond the script issue
/// none). Queries with a failed endpoint are skipped, exactly as random
/// sampling never picks one.
pub fn run_scripted_scenario(
    parent: &Graph,
    spanner: Spanner,
    budget: usize,
    config: &ScenarioConfig,
    process: &mut dyn FailureProcess,
    queries: &[Vec<(NodeId, NodeId)>],
    seed: u64,
) -> ScenarioOutcome {
    run_engine(
        parent,
        spanner,
        budget,
        config,
        process,
        Some(queries),
        seed,
    )
}

/// Runs the classic independent-Bernoulli failure/repair simulation —
/// the pre-engine interface, now a thin wrapper over [`run_scenario`]
/// with an [`IndependentBernoulli`] process seeded from `rng`.
///
/// # Panics
///
/// Panics if probabilities are outside `[0, 1]`.
pub fn simulate(
    parent: &Graph,
    spanner: Spanner,
    budget: usize,
    config: SimulationConfig,
    rng: &mut impl Rng,
) -> ScenarioOutcome {
    assert!(
        (0.0..=1.0).contains(&config.failure_probability),
        "bad failure probability"
    );
    assert!(
        (0.0..=1.0).contains(&config.repair_probability),
        "bad repair probability"
    );
    let mut process = IndependentBernoulli {
        failure_probability: config.failure_probability,
        repair_probability: config.repair_probability,
    };
    run_scenario(
        parent,
        spanner,
        budget,
        &ScenarioConfig {
            steps: config.steps,
            queries_per_step: config.queries_per_step,
            model: config.model,
            ..ScenarioConfig::default()
        },
        &mut process,
        rng.next_u64(),
    )
}

fn run_engine(
    parent: &Graph,
    spanner: Spanner,
    budget: usize,
    config: &ScenarioConfig,
    process: &mut dyn FailureProcess,
    script: Option<&[Vec<(NodeId, NodeId)>]>,
    seed: u64,
) -> ScenarioOutcome {
    let component_count = match config.model {
        FaultModel::Vertex => parent.node_count(),
        FaultModel::Edge => parent.edge_count(),
    };
    // Freeze once: the run serves every step's queries from the same
    // immutable artifact, one epoch session advanced by per-step deltas
    // (the artifact's parent→spanner edge map replaces the old ad-hoc
    // translation table).
    let epoch_server = EpochServer::new(Arc::new(spanner.freeze()));
    let mut server = QueryServer {
        parent,
        stretch: spanner.stretch() as f64,
        max_events: config.max_logged_events,
        handle: epoch_server.epoch_clear(),
        parent_engine: DijkstraEngine::new(),
        parent_mask: FaultMask::for_graph(parent),
    };
    drop(spanner);
    let mut outcome = ScenarioOutcome {
        scenario: process.name(),
        steps: config.steps,
        ..ScenarioOutcome::default()
    };
    let mut process_rng = StdRng::seed_from_u64(seed);
    let mut query_rng = StdRng::seed_from_u64(seed ^ QUERY_STREAM_SALT);
    let mut down = vec![false; component_count];
    // Previously applied component states + running failure count: each
    // step translates the *diff* against them into one EpochDelta, so
    // the serving layer does O(Δ) work per step instead of re-applying
    // the whole failure set.
    let mut applied = vec![false; component_count];
    let mut failed = 0usize;
    let mut delta = EpochDelta::new();
    process.begin(component_count);
    let mut live: Vec<NodeId> = Vec::with_capacity(parent.node_count());
    for step in 0..config.steps {
        process.step(step, &mut down, &mut process_rng);
        delta.clear();
        for component in 0..component_count {
            if down[component] == applied[component] {
                continue;
            }
            applied[component] = down[component];
            if down[component] {
                failed += 1;
                match config.model {
                    FaultModel::Vertex => {
                        let v = NodeId::new(component);
                        server.parent_mask.fault_vertex(v);
                        delta.fault_vertex(v);
                    }
                    FaultModel::Edge => {
                        server.parent_mask.fault_edge(EdgeId::new(component));
                        delta.fault_parent_edge(EdgeId::new(component));
                    }
                }
            } else {
                failed -= 1;
                match config.model {
                    FaultModel::Vertex => {
                        let v = NodeId::new(component);
                        server.parent_mask.restore_vertex(v);
                        delta.restore_vertex(v);
                    }
                    FaultModel::Edge => {
                        server.parent_mask.restore_edge(EdgeId::new(component));
                        delta.restore_parent_edge(EdgeId::new(component));
                    }
                }
            }
        }
        if !delta.is_empty() {
            server.handle.advance(&delta);
        }
        outcome.peak_failures = outcome.peak_failures.max(failed);
        let within_budget = failed <= budget;
        if within_budget {
            outcome.steps_within_budget += 1;
        }
        match script {
            None => {
                live.clear();
                live.extend(
                    parent
                        .nodes()
                        .filter(|v| !server.parent_mask.is_vertex_faulted(*v)),
                );
                if live.len() < 2 {
                    continue;
                }
                for _ in 0..config.queries_per_step {
                    // Two distinct live endpoints in two draws, no
                    // allocation, no shuffle.
                    let i = query_rng.gen_range(0..live.len());
                    let mut j = query_rng.gen_range(0..live.len() - 1);
                    if j >= i {
                        j += 1;
                    }
                    server.serve(step, live[i], live[j], within_budget, &mut outcome);
                }
            }
            Some(frames) => {
                for &(a, b) in frames.get(step).map(Vec::as_slice).unwrap_or(&[]) {
                    if a == b
                        || server.parent_mask.is_vertex_faulted(a)
                        || server.parent_mask.is_vertex_faulted(b)
                    {
                        continue;
                    }
                    server.serve(step, a, b, within_budget, &mut outcome);
                }
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, cycle, erdos_renyi};

    #[test]
    fn ft_spanner_honors_contract_within_budget() {
        let g = complete(16);
        let f = 2usize;
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            f,
            SimulationConfig {
                steps: 120,
                failure_probability: 0.01,
                repair_probability: 0.4,
                queries_per_step: 6,
                model: FaultModel::Vertex,
            },
            &mut rng,
        );
        assert_eq!(outcome.contract_violations, 0);
        assert!(outcome.queries > 0);
        assert!(outcome.worst_stretch_within_budget <= 3.0 + 1e-9);
        assert_eq!(outcome.in_budget_hit_rate(), 1.0);
        assert_eq!(outcome.scenario, "independent-bernoulli");
    }

    #[test]
    fn plain_spanner_breaks_under_failures() {
        // f=0 spanner simulated with failures: violations are expected
        // (this validates that the simulator can detect them). Whether a
        // single trajectory hits one depends on the RNG stream, so scan a
        // fixed seed family and require the simulator to notice at least
        // once — an under-built spanner it never flags would fail every
        // seed and the test.
        let noticed = (0..32u64).any(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = erdos_renyi(20, 0.25, &mut rng);
            let plain = crate::greedy_spanner(&g, 3);
            let outcome = simulate(
                &g,
                plain,
                1, // pretend it were 1-fault tolerant
                SimulationConfig {
                    steps: 150,
                    failure_probability: 0.05,
                    repair_probability: 0.3,
                    queries_per_step: 10,
                    model: FaultModel::Vertex,
                },
                &mut rng,
            );
            outcome.contract_violations > 0 || outcome.worst_stretch_within_budget > 3.0
        });
        assert!(
            noticed,
            "simulator failed to notice an under-built spanner on all 32 seeds"
        );
    }

    #[test]
    fn edge_model_simulation_runs_clean() {
        let g = complete(12);
        let f = 1usize;
        let ft = FtGreedy::new(&g, 3).faults(f).model(FaultModel::Edge).run();
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            f,
            SimulationConfig {
                steps: 100,
                failure_probability: 0.01,
                repair_probability: 0.5,
                queries_per_step: 5,
                model: FaultModel::Edge,
            },
            &mut rng,
        );
        assert_eq!(outcome.contract_violations, 0);
        assert_eq!(outcome.in_budget_hit_rate(), 1.0);
        assert!(outcome.overall_hit_rate() > 0.9);
    }

    #[test]
    fn outcome_counters_are_consistent() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            1,
            SimulationConfig::default(),
            &mut rng,
        );
        assert!(outcome.routed <= outcome.queries);
        assert!(outcome.in_budget_queries <= outcome.queries);
        assert!(outcome.served_within_stretch <= outcome.routed);
        assert!(outcome.in_budget_served_within_stretch <= outcome.in_budget_queries);
        assert!(outcome.steps_within_budget <= outcome.steps);
        assert!(outcome.in_budget_hit_rate() <= 1.0);
        assert!(outcome.overall_hit_rate() <= 1.0);
        assert!(outcome.availability() <= 1.0);
        assert_eq!(
            outcome.contract_violations,
            outcome.in_budget_queries - outcome.in_budget_served_within_stretch
        );
    }

    #[test]
    fn zero_failure_probability_means_every_query_served() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            1,
            SimulationConfig {
                steps: 50,
                failure_probability: 0.0,
                repair_probability: 1.0,
                queries_per_step: 4,
                model: FaultModel::Vertex,
            },
            &mut rng,
        );
        assert_eq!(outcome.contract_violations, 0);
        assert_eq!(outcome.queries, outcome.served_within_stretch);
        assert_eq!(outcome.peak_failures, 0);
        assert_eq!(outcome.steps_within_budget, outcome.steps);
        assert!(outcome.events.is_empty());
    }

    #[test]
    fn regional_regions_are_bfs_balls() {
        let g = cycle(8);
        let mut process = CorrelatedRegional::new(&g, FaultModel::Vertex, 1, 0.5, 0.5);
        assert_eq!(
            process.region(NodeId::new(0)),
            &[0, 1, 7],
            "radius-1 ball of v0 on C8"
        );
        // Memoized: the second call returns the identical region.
        assert_eq!(process.region(NodeId::new(0)), &[0, 1, 7]);
        let mut edge_process = CorrelatedRegional::new(&g, FaultModel::Edge, 0, 0.5, 0.5);
        // Radius-0 edge region of v0: the two incident cycle edges.
        assert_eq!(edge_process.region(NodeId::new(0)).len(), 2);
    }

    #[test]
    fn burst_respects_size_and_distinctness() {
        let mut process = BurstCascade::new(1.0, 3, 0.0);
        let mut down = vec![false; 10];
        let mut rng = StdRng::seed_from_u64(4);
        process.begin(down.len());
        process.step(0, &mut down, &mut rng);
        assert_eq!(down.iter().filter(|d| **d).count(), 3);
        process.step(1, &mut down, &mut rng);
        // No repair: strictly accumulates, still distinct components.
        assert!(down.iter().filter(|d| **d).count() <= 6);
        assert!(down.iter().filter(|d| **d).count() >= 3);
    }

    #[test]
    fn trace_replays_frames_exactly() {
        let mut process = Trace::new(vec![vec![2], vec![], vec![0, 4]]);
        let mut down = vec![false; 5];
        let mut rng = StdRng::seed_from_u64(0);
        process.step(0, &mut down, &mut rng);
        assert_eq!(down, vec![false, false, true, false, false]);
        process.step(1, &mut down, &mut rng);
        assert!(down.iter().all(|d| !*d));
        process.step(2, &mut down, &mut rng);
        assert_eq!(down, vec![true, false, false, false, true]);
        // Beyond the script: everything up.
        process.step(3, &mut down, &mut rng);
        assert!(down.iter().all(|d| !*d));
    }

    #[test]
    fn witness_replay_cycles_schedules() {
        let mut process = AdversarialWitnessReplay::new(vec![vec![0], vec![1]], 2);
        assert_eq!(process.schedule_count(), 2);
        let mut down = vec![false; 3];
        let mut rng = StdRng::seed_from_u64(0);
        for (step, expect) in [(0, 0), (1, 0), (2, 1), (3, 1), (4, 0)] {
            process.step(step, &mut down, &mut rng);
            assert_eq!(down.iter().position(|d| *d), Some(expect), "step {step}");
        }
    }

    #[test]
    fn witness_replay_against_its_own_spanner_is_clean() {
        // The sharpest in-budget adversary we can build from the
        // construction's own records must still never break the contract.
        let g = complete(12);
        for model in [FaultModel::Vertex, FaultModel::Edge] {
            let ft = FtGreedy::new(&g, 3).faults(2).model(model).run();
            let mut process = AdversarialWitnessReplay::from_witnesses(&ft, 3);
            assert!(process.schedule_count() > 0);
            let outcome = run_scenario(
                &g,
                ft.into_spanner(),
                2,
                &ScenarioConfig {
                    steps: 60,
                    queries_per_step: 6,
                    model,
                    ..ScenarioConfig::default()
                },
                &mut process,
                99,
            );
            assert_eq!(outcome.contract_violations, 0, "{model} model");
            assert_eq!(outcome.steps_within_budget, 60, "witnesses are ≤ f");
            assert!(outcome.queries > 0);
        }
    }

    #[test]
    fn scripted_queries_hit_exact_pairs() {
        // Unit triangle; the "spanner" is the path 0-1-2 claiming
        // stretch 1, so the pair (0, 2) is over-stretched (2 > 1).
        let g = Graph::from_weighted_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 1)]).unwrap();
        let spanner = Spanner::from_parent_edges(&g, [EdgeId::new(0), EdgeId::new(1)], 1);
        let script = vec![
            vec![(NodeId::new(0), NodeId::new(1))],
            vec![(NodeId::new(0), NodeId::new(2))],
        ];
        let mut process = Trace::new(Vec::new());
        let outcome = run_scripted_scenario(
            &g,
            spanner,
            1,
            &ScenarioConfig {
                steps: 2,
                model: FaultModel::Vertex,
                ..ScenarioConfig::default()
            },
            &mut process,
            &script,
            0,
        );
        assert_eq!(outcome.queries, 2);
        assert_eq!(outcome.contract_violations, 1);
        assert_eq!(outcome.events.len(), 1);
        let event = &outcome.events[0];
        assert_eq!(event.step, 1);
        assert_eq!(event.pair, (NodeId::new(0), NodeId::new(2)));
        assert_eq!(event.achieved, 2.0);
        assert_eq!(event.bound, 1.0);
        assert!(event.in_budget);
    }

    #[test]
    fn event_log_is_bounded_with_exact_overflow_count() {
        // Same planted over-stretch pair queried every step, log capped
        // at 2: counters stay exact, the log stops at the cap.
        let g = Graph::from_weighted_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 1)]).unwrap();
        let spanner = Spanner::from_parent_edges(&g, [EdgeId::new(0), EdgeId::new(1)], 1);
        let script: Vec<Vec<(NodeId, NodeId)>> = (0..5)
            .map(|_| vec![(NodeId::new(0), NodeId::new(2))])
            .collect();
        let mut process = Trace::new(Vec::new());
        let outcome = run_scripted_scenario(
            &g,
            spanner,
            0,
            &ScenarioConfig {
                steps: 5,
                model: FaultModel::Vertex,
                max_logged_events: 2,
                ..ScenarioConfig::default()
            },
            &mut process,
            &script,
            0,
        );
        assert_eq!(outcome.contract_violations, 5);
        assert_eq!(outcome.events.len(), 2);
        assert_eq!(outcome.events_dropped, 3);
    }
}
