//! Discrete failure/repair simulation over a spanner.
//!
//! The paper's motivation: "spanners are often applied to systems whose
//! parts are prone to sporadic failures". This module makes that concrete:
//! a discrete-time failure process knocks components out and repairs them,
//! while the simulator routes traffic over the (static) spanner and logs
//! what the fault-tolerance contract delivers — and what happens in the
//! overload regime when more than `f` components are down simultaneously
//! (the contract is suspended, not "best effort guaranteed").
//!
//! The simulator is deterministic given the RNG seed, so experiment runs
//! and the `failure_timeline` example reproduce exactly.

use crate::routing::{ResilientRouter, RouteError};
use crate::Spanner;
use rand::seq::SliceRandom;
use rand::Rng;
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{dijkstra, FaultMask, Graph, NodeId};

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Number of discrete time steps.
    pub steps: usize,
    /// Probability a live component fails in a step.
    pub failure_probability: f64,
    /// Probability a failed component is repaired in a step.
    pub repair_probability: f64,
    /// Random route queries issued per step.
    pub queries_per_step: usize,
    /// Which components fail (vertices or parent edges).
    pub model: FaultModel,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            steps: 200,
            failure_probability: 0.02,
            repair_probability: 0.25,
            queries_per_step: 8,
            model: FaultModel::Vertex,
        }
    }
}

/// Aggregated outcome of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimulationOutcome {
    /// Steps simulated.
    pub steps: usize,
    /// Steps during which at most `f` components were down.
    pub steps_within_budget: usize,
    /// Total route queries issued (with live endpoints).
    pub queries: usize,
    /// Queries answered with a surviving route.
    pub routed: usize,
    /// Queries answered within the stretch target *while within budget*.
    pub routed_within_stretch: usize,
    /// Queries that found no surviving route while within budget — must
    /// be zero for a correct f-FT spanner when the parent survives.
    pub contract_violations: usize,
    /// Worst stretch observed while within budget.
    pub worst_stretch_within_budget: f64,
    /// Largest simultaneous failure count seen.
    pub peak_failures: usize,
}

impl SimulationOutcome {
    /// Fraction of in-budget queries served within the stretch target.
    pub fn contract_hit_rate(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.routed_within_stretch as f64 / self.queries.max(1) as f64
        }
    }
}

/// Runs the failure/repair process against `spanner` (built for `budget`
/// faults at its stretch) over its `parent` graph.
///
/// Contract checked each step while the simultaneous failure count stays
/// within `budget`: every pair with live endpoints that is connected in
/// the surviving *parent* must be routable in the surviving spanner with
/// stretch at most the spanner's target.
///
/// # Panics
///
/// Panics if probabilities are outside `[0, 1]`.
pub fn simulate(
    parent: &Graph,
    spanner: Spanner,
    budget: usize,
    config: SimulationConfig,
    rng: &mut impl Rng,
) -> SimulationOutcome {
    assert!(
        (0.0..=1.0).contains(&config.failure_probability),
        "bad failure probability"
    );
    assert!(
        (0.0..=1.0).contains(&config.repair_probability),
        "bad repair probability"
    );
    let stretch = spanner.stretch();
    let mut router = ResilientRouter::new(spanner);
    let component_count = match config.model {
        FaultModel::Vertex => parent.node_count(),
        FaultModel::Edge => parent.edge_count(),
    };
    let mut down = vec![false; component_count];
    let mut outcome = SimulationOutcome {
        steps: config.steps,
        ..SimulationOutcome::default()
    };
    let mut live_nodes: Vec<NodeId> = parent.nodes().collect();
    for _ in 0..config.steps {
        // Failure / repair transitions.
        for state in down.iter_mut() {
            if *state {
                if rng.gen_bool(config.repair_probability) {
                    *state = false;
                }
            } else if rng.gen_bool(config.failure_probability) {
                *state = true;
            }
        }
        let failed: Vec<usize> = (0..component_count).filter(|i| down[*i]).collect();
        outcome.peak_failures = outcome.peak_failures.max(failed.len());
        let within_budget = failed.len() <= budget;
        if within_budget {
            outcome.steps_within_budget += 1;
        }
        let failures = match config.model {
            FaultModel::Vertex => FaultSet::vertices(failed.iter().map(|i| NodeId::new(*i))),
            FaultModel::Edge => {
                FaultSet::edges(failed.iter().map(|i| spanner_graph::EdgeId::new(*i)))
            }
        };
        // Parent-side mask for ground truth.
        let mut parent_mask = FaultMask::for_graph(parent);
        failures.apply_to(&mut parent_mask);
        // Random queries between live endpoints.
        for _ in 0..config.queries_per_step {
            live_nodes.shuffle(rng);
            let Some((&a, &b)) = live_nodes
                .iter()
                .filter(|v| !parent_mask.is_vertex_faulted(**v))
                .collect::<Vec<_>>()
                .split_first()
                .and_then(|(first, rest)| rest.first().map(|second| (*first, *second)))
            else {
                continue;
            };
            let parent_dist = dijkstra::dist(parent, a, b, &parent_mask);
            if !parent_dist.is_finite() {
                continue; // pair not required to be served
            }
            outcome.queries += 1;
            match router.route(a, b, &failures) {
                Ok(route) => {
                    outcome.routed += 1;
                    let achieved = route.dist.value().unwrap_or(u64::MAX) as f64;
                    let best = parent_dist.value().unwrap_or(1).max(1) as f64;
                    let ratio = achieved / best;
                    if within_budget {
                        if ratio <= stretch as f64 + 1e-9 {
                            outcome.routed_within_stretch += 1;
                        }
                        if ratio > outcome.worst_stretch_within_budget {
                            outcome.worst_stretch_within_budget = ratio;
                        }
                    } else if ratio <= stretch as f64 + 1e-9 {
                        // Over budget but still served within stretch: counts
                        // toward the hit rate, not the contract.
                        outcome.routed_within_stretch += 1;
                    }
                }
                Err(RouteError::Unreachable { .. }) if within_budget => {
                    outcome.contract_violations += 1;
                }
                Err(_) => {}
            }
        }
        // Contract violation also covers "routed but above stretch".
        if within_budget && outcome.worst_stretch_within_budget > stretch as f64 + 1e-9 {
            outcome.contract_violations += 1;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtGreedy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spanner_graph::generators::{complete, erdos_renyi};

    #[test]
    fn ft_spanner_honors_contract_within_budget() {
        let g = complete(16);
        let f = 2usize;
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            f,
            SimulationConfig {
                steps: 120,
                failure_probability: 0.01,
                repair_probability: 0.4,
                queries_per_step: 6,
                model: FaultModel::Vertex,
            },
            &mut rng,
        );
        assert_eq!(outcome.contract_violations, 0);
        assert!(outcome.queries > 0);
        assert!(outcome.worst_stretch_within_budget <= 3.0 + 1e-9);
    }

    #[test]
    fn plain_spanner_breaks_under_failures() {
        // f=0 spanner simulated with failures: violations are expected
        // (this validates that the simulator can detect them). Whether a
        // single trajectory hits one depends on the RNG stream, so scan a
        // fixed seed family and require the simulator to notice at least
        // once — an under-built spanner it never flags would fail every
        // seed and the test.
        let noticed = (0..32u64).any(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = erdos_renyi(20, 0.25, &mut rng);
            let plain = crate::greedy_spanner(&g, 3);
            let outcome = simulate(
                &g,
                plain,
                1, // pretend it were 1-fault tolerant
                SimulationConfig {
                    steps: 150,
                    failure_probability: 0.05,
                    repair_probability: 0.3,
                    queries_per_step: 10,
                    model: FaultModel::Vertex,
                },
                &mut rng,
            );
            outcome.contract_violations > 0 || outcome.worst_stretch_within_budget > 3.0
        });
        assert!(
            noticed,
            "simulator failed to notice an under-built spanner on all 32 seeds"
        );
    }

    #[test]
    fn edge_model_simulation_runs_clean() {
        let g = complete(12);
        let f = 1usize;
        let ft = FtGreedy::new(&g, 3).faults(f).model(FaultModel::Edge).run();
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            f,
            SimulationConfig {
                steps: 100,
                failure_probability: 0.01,
                repair_probability: 0.5,
                queries_per_step: 5,
                model: FaultModel::Edge,
            },
            &mut rng,
        );
        assert_eq!(outcome.contract_violations, 0);
        assert!(outcome.contract_hit_rate() > 0.9);
    }

    #[test]
    fn outcome_counters_are_consistent() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            1,
            SimulationConfig::default(),
            &mut rng,
        );
        assert!(outcome.routed <= outcome.queries);
        assert!(outcome.routed_within_stretch <= outcome.routed);
        assert!(outcome.steps_within_budget <= outcome.steps);
        assert!(outcome.contract_hit_rate() <= 1.0);
    }

    #[test]
    fn zero_failure_probability_means_every_query_served() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            1,
            SimulationConfig {
                steps: 50,
                failure_probability: 0.0,
                repair_probability: 1.0,
                queries_per_step: 4,
                model: FaultModel::Vertex,
            },
            &mut rng,
        );
        assert_eq!(outcome.contract_violations, 0);
        assert_eq!(outcome.queries, outcome.routed_within_stretch);
        assert_eq!(outcome.peak_failures, 0);
        assert_eq!(outcome.steps_within_budget, outcome.steps);
    }
}
