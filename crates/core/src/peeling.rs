//! Lemma 4: peel a high-girth witness subgraph out of a blocked graph.
//!
//! Lemma 4 of the paper: if `H` (n nodes, m edges) has a `(k+1)`-blocking
//! set `B` with `|B| ≤ f·m`, then `H` contains a subgraph on `O(n/f)` nodes
//! with `Ω(m/f²)` edges and girth > k+1. The proof is the construction
//! implemented here:
//!
//! 1. sample an induced subgraph `H'` on exactly `⌈n/(2f)⌉` uniformly
//!    random vertices;
//! 2. drop every surviving blocked edge (a pair of `B` survives when all
//!    of its constituent vertices do), giving `H''`;
//! 3. `H''` has girth > k+1 *by construction* — every short cycle lost a
//!    vertex or an edge — and in expectation keeps
//!    `m/(4f²) − |B|/(8f³) ≥ m/(8f²)` edges.
//!
//! The experiment harness repeats the sampling and compares the measured
//! edge yield with the expectation; the girth claim is verified exactly on
//! every sample.

use crate::BlockingSet;
use rand::seq::SliceRandom;
use rand::Rng;
use spanner_graph::{girth, subgraph, EdgeId, FaultMask, Graph, NodeId};

/// One peeling sample (Lemma 4's `H''` plus measurements).
#[derive(Clone, Debug)]
pub struct PeelOutcome {
    /// The peeled subgraph `H''` (dense re-indexed ids).
    pub subgraph: Graph,
    /// How many vertices were sampled (`⌈n/(2f)⌉`).
    pub sampled_nodes: usize,
    /// Edges of the induced subgraph `H'` before blocked-edge deletion.
    pub induced_edges: usize,
    /// Edges deleted because a blocking pair survived the sampling.
    pub deleted_edges: usize,
    /// Whether `girth(H'') > girth_above` was verified (must always hold
    /// when the blocking set is valid).
    pub girth_ok: bool,
}

impl PeelOutcome {
    /// Final edge count of `H''`.
    pub fn final_edges(&self) -> usize {
        self.subgraph.edge_count()
    }
}

/// Runs one Lemma 4 peeling round on `h` with blocking set `blocking`.
///
/// `girth_above` is the `k+1` the blocking set targets; the outcome's
/// `girth_ok` records the verified girth condition.
///
/// # Panics
///
/// Panics if `f == 0` (the lemma needs a positive fault parameter) or the
/// blocking set refers to ids outside `h`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use spanner_core::{peel, BlockingSet, FtGreedy};
/// use spanner_graph::generators::complete;
///
/// let g = complete(20);
/// let ft = FtGreedy::new(&g, 3).faults(2).run();
/// let b = BlockingSet::from_witnesses(&ft);
/// let mut rng = StdRng::seed_from_u64(1);
/// let outcome = peel(ft.spanner().graph(), &b, 2, 4, &mut rng);
/// assert!(outcome.girth_ok);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn peel(
    h: &Graph,
    blocking: &BlockingSet,
    f: usize,
    girth_above: usize,
    rng: &mut impl Rng,
) -> PeelOutcome {
    assert!(f >= 1, "Lemma 4 requires f >= 1");
    assert!(
        blocking.is_well_formed(h),
        "blocking set refers outside the graph"
    );
    let n = h.node_count();
    let target = n.div_ceil(2 * f).max(1).min(n);
    // Uniform sample of exactly `target` vertices.
    let mut ids: Vec<usize> = (0..n).collect();
    ids.partial_shuffle(rng, target);
    let sampled: Vec<NodeId> = ids[..target].iter().copied().map(NodeId::new).collect();
    let mut in_sample = vec![false; n];
    for v in &sampled {
        in_sample[v.index()] = true;
    }
    let survives_vertex = |v: NodeId| in_sample[v.index()];
    let survives_edge = |e: EdgeId| {
        let (u, v) = h.endpoints(e);
        survives_vertex(u) && survives_vertex(v)
    };
    // Collect surviving blocked edges.
    let mut drop = vec![false; h.edge_count()];
    let mut deleted_edges = 0usize;
    match blocking {
        BlockingSet::Vertex(pairs) => {
            for (x, e) in pairs {
                if survives_vertex(*x) && survives_edge(*e) && !drop[e.index()] {
                    drop[e.index()] = true;
                    deleted_edges += 1;
                }
            }
        }
        BlockingSet::Edge(pairs) => {
            // The edge analog deletes (at least) one edge per surviving
            // pair; deleting the first member suffices to break the pair's
            // cycles that survive induction.
            for (a, b) in pairs {
                if survives_edge(*a) && survives_edge(*b) && !drop[a.index()] {
                    drop[a.index()] = true;
                    deleted_edges += 1;
                }
            }
        }
    }
    let induced = subgraph::induced(h, sampled.iter().copied());
    let induced_edges = induced.graph.edge_count();
    // Keep induced edges whose parent edge was not dropped.
    let kept = induced
        .graph
        .edge_ids()
        .filter(|e| !drop[induced.parent_edge(*e).index()]);
    let peeled = subgraph::edge_subgraph(&induced.graph, kept).graph;
    let girth_ok =
        girth::has_girth_greater_than(&peeled, &FaultMask::for_graph(&peeled), girth_above);
    PeelOutcome {
        subgraph: peeled,
        sampled_nodes: target,
        induced_edges,
        deleted_edges,
        girth_ok,
    }
}

/// The Lemma 4 expected edge yield: `m/(4f²) − |B|/(8f³)`, the quantity
/// the expectation argument of the paper lower-bounds (`≥ m/(8f²)` when
/// `|B| ≤ f·m`).
pub fn expected_yield(m: usize, blocking_size: usize, f: usize) -> f64 {
    let f = f as f64;
    m as f64 / (4.0 * f * f) - blocking_size as f64 / (8.0 * f * f * f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockingSet, FtGreedy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spanner_graph::generators::complete;

    fn setup(f: usize) -> (crate::FtSpanner, BlockingSet) {
        let g = complete(24);
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let b = BlockingSet::from_witnesses(&ft);
        (ft, b)
    }

    #[test]
    fn peel_girth_always_holds() {
        let (ft, b) = setup(2);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let out = peel(ft.spanner().graph(), &b, 2, 4, &mut rng);
            assert!(out.girth_ok);
        }
    }

    #[test]
    fn peel_node_count_is_ceil_n_over_2f() {
        let (ft, b) = setup(2);
        let n = ft.spanner().graph().node_count();
        let mut rng = StdRng::seed_from_u64(6);
        let out = peel(ft.spanner().graph(), &b, 2, 4, &mut rng);
        assert_eq!(out.sampled_nodes, n.div_ceil(4));
        assert_eq!(out.subgraph.node_count(), out.sampled_nodes);
    }

    #[test]
    fn accounting_is_consistent() {
        let (ft, b) = setup(2);
        let mut rng = StdRng::seed_from_u64(9);
        let out = peel(ft.spanner().graph(), &b, 2, 4, &mut rng);
        assert_eq!(
            out.final_edges(),
            out.induced_edges - out.deleted_edges,
            "deleted edges must be surviving induced edges"
        );
    }

    #[test]
    fn average_yield_beats_half_the_expectation() {
        // The lemma argues E[edges] >= m/(4f^2) - |B|/(8f^3). Averaged over
        // many seeds the sample mean should be near that; we assert it
        // clears half of it to keep the test robust.
        let (ft, b) = setup(2);
        let m = ft.spanner().edge_count();
        let expect = expected_yield(m, b.len(), 2);
        assert!(expect > 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let rounds = 200;
        let total: usize = (0..rounds)
            .map(|_| peel(ft.spanner().graph(), &b, 2, 4, &mut rng).final_edges())
            .sum();
        let mean = total as f64 / rounds as f64;
        assert!(
            mean >= expect / 2.0,
            "mean yield {mean:.2} below half the expected {expect:.2}"
        );
    }

    #[test]
    fn edge_blocking_sets_also_peel() {
        use spanner_extremal::lower_bound::biclique_blowup;
        use spanner_graph::generators::cycle;
        let blow = biclique_blowup(&cycle(8), 2);
        let b = BlockingSet::from_edge_pairs(blow.edge_blocking_set());
        let mut rng = StdRng::seed_from_u64(3);
        let out = peel(blow.graph(), &b, 2, 7, &mut rng);
        assert!(out.girth_ok);
    }

    #[test]
    #[should_panic(expected = "f >= 1")]
    fn zero_f_rejected() {
        let (ft, b) = setup(1);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = peel(ft.spanner().graph(), &b, 0, 4, &mut rng);
    }
}
