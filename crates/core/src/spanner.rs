//! The spanner type: a subgraph with bookkeeping back to its parent.

use spanner_faults::FaultSet;
use spanner_graph::{EdgeId, FaultMask, Graph, IncrementalCsr, NodeId, Weight};
use std::sync::OnceLock;

/// A spanner of a parent graph: a subgraph on the same vertex set, with a
/// per-edge mapping back to parent edge ids and the stretch it was built
/// for.
///
/// Spanner edge ids are dense in insertion (construction) order;
/// [`Spanner::parent_edge`] translates them to the parent's ids.
///
/// # Examples
///
/// ```
/// use spanner_core::greedy_spanner;
/// use spanner_graph::generators::complete;
///
/// let g = complete(8);
/// let s = greedy_spanner(&g, 3);
/// assert_eq!(s.graph().node_count(), 8);
/// assert!(s.edge_count() < g.edge_count());
/// assert_eq!(s.stretch(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Spanner {
    graph: Graph,
    /// Flat CSR mirror of `graph`, materialized lazily on the first
    /// [`Spanner::view`] call and from then on kept current by
    /// `Spanner::push_edge`, so shortest-path-heavy construction loops
    /// (the FT-greedy fault oracle, the classic greedy test) traverse
    /// contiguous memory instead of the Vec-of-Vec adjacency — while
    /// spanners that never query the view (baseline constructions,
    /// clones held for bookkeeping) never pay for it.
    view: OnceLock<IncrementalCsr>,
    parent_edges: Vec<EdgeId>,
    stretch: u64,
}

impl Spanner {
    /// Assembles a spanner from a parent graph and a set of kept parent
    /// edges (deduplicated, kept in sorted parent-id order).
    ///
    /// # Panics
    ///
    /// Panics if an edge id is out of range for `parent`.
    pub fn from_parent_edges<I>(parent: &Graph, kept: I, stretch: u64) -> Self
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let mut ids: Vec<EdgeId> = kept.into_iter().collect();
        ids.sort();
        ids.dedup();
        let mut graph = Graph::with_edge_capacity(parent.node_count(), ids.len());
        for id in &ids {
            let e = parent.edge(*id);
            graph.add_edge_unchecked(e.u(), e.v(), e.weight());
        }
        Spanner {
            graph,
            view: OnceLock::new(),
            parent_edges: ids,
            stretch,
        }
    }

    /// Assembles a spanner from parent edges in the given (construction)
    /// order — no sorting, no dedup, so spanner edge ids match the
    /// caller's keep order. Used by runners that track kept edges
    /// externally (the pooled FT-greedy path, whose oracle maintains its
    /// own shared view during the run) and build the spanner once at the
    /// end.
    ///
    /// # Panics
    ///
    /// Panics if an edge id is out of range for `parent`.
    pub(crate) fn from_kept_edges_in_order(
        parent: &Graph,
        kept: Vec<EdgeId>,
        stretch: u64,
    ) -> Self {
        let mut graph = Graph::with_edge_capacity(parent.node_count(), kept.len());
        for id in &kept {
            let e = parent.edge(*id);
            graph.add_edge_unchecked(e.u(), e.v(), e.weight());
        }
        Spanner {
            graph,
            view: OnceLock::new(),
            parent_edges: kept,
            stretch,
        }
    }

    /// Creates an empty spanner over `parent`'s vertex set, to be grown with
    /// `Spanner::push_edge` (used by the greedy constructions).
    pub(crate) fn empty(parent: &Graph, stretch: u64) -> Self {
        Spanner {
            graph: Graph::new(parent.node_count()),
            view: OnceLock::new(),
            parent_edges: Vec::new(),
            stretch,
        }
    }

    /// Appends a parent edge to the spanner (construction order), keeping
    /// the CSR view (if materialized) in lockstep with the graph.
    pub(crate) fn push_edge(
        &mut self,
        parent_id: EdgeId,
        u: NodeId,
        v: NodeId,
        w: Weight,
    ) -> EdgeId {
        let id = self.graph.add_edge_unchecked(u, v, w);
        if let Some(view) = self.view.get_mut() {
            let view_id = view.push_edge(u, v, w);
            debug_assert_eq!(id, view_id, "graph and view ids diverged");
        }
        self.parent_edges.push(parent_id);
        id
    }

    /// The spanner as a graph (same vertex ids as the parent).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The spanner as a flat CSR view (same vertex and edge ids as
    /// [`Spanner::graph`], same adjacency order). Built from the graph on
    /// first call, then kept incremental by `Spanner::push_edge`; this
    /// is what the construction hot loops run their bounded Dijkstras
    /// over.
    pub fn view(&self) -> &IncrementalCsr {
        self.view
            .get_or_init(|| IncrementalCsr::from_graph(&self.graph))
    }

    /// The stretch parameter the spanner was built for.
    pub fn stretch(&self) -> u64 {
        self.stretch
    }

    /// Number of spanner edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Parent edge id of a spanner edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn parent_edge(&self, edge: EdgeId) -> EdgeId {
        self.parent_edges[edge.index()]
    }

    /// All kept parent edge ids, in spanner edge-id order.
    pub fn parent_edge_ids(&self) -> &[EdgeId] {
        &self.parent_edges
    }

    /// Whether the parent edge survived into the spanner.
    pub fn contains_parent_edge(&self, parent_edge: EdgeId) -> bool {
        // parent_edges is not sorted for greedy constructions (insertion is
        // by weight order) — but ids are unique, so a linear scan is exact;
        // callers needing many lookups should build their own index.
        self.parent_edges.contains(&parent_edge)
    }

    /// Fraction of parent edges kept, `|E(H)| / |E(G)|` (1.0 for an
    /// edgeless parent).
    pub fn retention(&self, parent: &Graph) -> f64 {
        if parent.edge_count() == 0 {
            1.0
        } else {
            self.edge_count() as f64 / parent.edge_count() as f64
        }
    }

    /// Seals this spanner into an immutable, `Send + Sync`
    /// [`FrozenSpanner`](crate::FrozenSpanner) serving artifact: packed
    /// CSR adjacency, O(1) parent-edge translation, shareable via `Arc`.
    /// Construction metadata (parent handle, budget, witnesses) is only
    /// recorded by [`FtSpanner::freeze`](crate::FtSpanner::freeze); a bare
    /// spanner has none to give.
    pub fn freeze(&self) -> crate::FrozenSpanner {
        crate::FrozenSpanner::from_spanner(self)
    }

    /// Translates a fault set expressed in *parent* ids into a mask over
    /// the spanner's graph: vertex faults carry over unchanged; edge faults
    /// hit the spanner copies of those parent edges.
    pub fn fault_mask(&self, faults: &FaultSet) -> FaultMask {
        let mut mask = FaultMask::for_graph(&self.graph);
        for v in faults.vertex_faults() {
            mask.fault_vertex(*v);
        }
        if !faults.edge_faults().is_empty() {
            for (own, parent) in self.parent_edges.iter().enumerate() {
                if faults.edge_faults().contains(parent) {
                    mask.fault_edge(EdgeId::new(own));
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::generators::cycle;

    #[test]
    fn from_parent_edges_preserves_weights_and_maps() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 0, 5)]).unwrap();
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(2), EdgeId::new(0)], 3);
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.parent_edge(EdgeId::new(0)), EdgeId::new(0));
        assert_eq!(s.parent_edge(EdgeId::new(1)), EdgeId::new(2));
        assert_eq!(s.graph().weight(EdgeId::new(1)).get(), 4);
        assert!(s.contains_parent_edge(EdgeId::new(0)));
        assert!(!s.contains_parent_edge(EdgeId::new(1)));
    }

    #[test]
    fn retention_ratio() {
        let g = cycle(10);
        let s = Spanner::from_parent_edges(&g, g.edge_ids().take(5), 1);
        assert_eq!(s.retention(&g), 0.5);
    }

    #[test]
    fn fault_mask_translates_parent_edges() {
        let g = cycle(4);
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(1), EdgeId::new(3)], 3);
        let mask = s.fault_mask(&FaultSet::edges([EdgeId::new(3), EdgeId::new(0)]));
        // Parent edge 3 is spanner edge 1; parent edge 0 is not in the spanner.
        assert!(mask.is_edge_faulted(EdgeId::new(1)));
        assert!(!mask.is_edge_faulted(EdgeId::new(0)));
        assert_eq!(mask.fault_count(), 1);
    }

    #[test]
    fn fault_mask_vertex_passthrough() {
        let g = cycle(4);
        let s = Spanner::from_parent_edges(&g, g.edge_ids(), 1);
        let mask = s.fault_mask(&FaultSet::vertices([NodeId::new(2)]));
        assert!(mask.is_vertex_faulted(NodeId::new(2)));
    }

    #[test]
    fn empty_parent_retention_is_one() {
        let g = Graph::new(3);
        let s = Spanner::from_parent_edges(&g, [], 3);
        assert_eq!(s.retention(&g), 1.0);
        assert_eq!(s.edge_count(), 0);
    }
}
