//! Partitioned FT-greedy: sharded construction with a boundary stitch.
//!
//! Monolithic FT-greedy scales as the oracle's whole-graph work: every
//! kept-edge decision runs a min-cut shortcut whose Menger prefilter
//! issues *unbounded* Dijkstras over the entire growing spanner, so the
//! construction is quadratic-ish in practice and tops out around
//! `n ≈ 10²–10³`. This module trades a bounded size inflation for
//! near-linear scaling:
//!
//! 1. **Partition** — [`spanner_graph::partition::bfs_balls`] shards
//!    the vertex set into deterministic seeded BFS balls.
//! 2. **Per-shard build** — Algorithm 1 runs exactly on each shard's
//!    induced subgraph, every shard through **one** persistent
//!    [`ParallelBranchingOracle`] worker pool
//!    ([`FtGreedy::run_pooled_with`]; the pool spawns once, and
//!    [`OracleStats::pool_spawns`](spanner_faults::OracleStats) proves
//!    it).
//! 3. **Boundary stitch** — cross-shard edges plus the boundary-vertex
//!    closure (intra-shard edges between two boundary vertices that
//!    their shard dropped) are re-run through the FT-greedy keep rule
//!    with the **global** budget `f`, querying the union of all shard
//!    spanners as it grows. The stitch disables the root min-cut
//!    shortcut — with it off, every stitch Dijkstra is bounded by
//!    `k·w` (ball-sized), which is the whole scaling win; all oracle
//!    configurations are exact, so this is a pure perf trade.
//!
//! # Why the union satisfies the `(2k−1)`-stretch `f`-fault contract
//!
//! Fix any fault set `F`, `|F| ≤ f`, and any parent edge `e = (u, v)`
//! surviving `F`. Per the per-edge criterion (see
//! [`crate::verify::verify_under_faults`]) it suffices that
//! `dist_{H∖F}(u, v) ≤ k·w(e)`:
//!
//! * **Intra-shard edge.** Restrict `F` to shard `i`: `F_i` has at most
//!   `f` faults and lives entirely inside the induced subgraph `G_i`,
//!   so the per-shard guarantee gives a path of length `≤ k·w(e)` in
//!   `H_i ∖ F_i`. That path uses only shard-`i` vertices and `H_i`
//!   edges, so no fault of `F ∖ F_i` touches it, and `H ⊇ H_i`.
//! * **Stitch candidate kept.** The edge itself is in `H`.
//! * **Stitch candidate dropped.** At drop time the oracle certified
//!   that *no* fault set of size `≤ f` stretches `(u, v)` beyond
//!   `k·w(e)` in the union built so far — and `H` only grows from
//!   there, so the certificate stands in the final `H`.
//!
//! Size optimality is what's traded away: the stitch does not interleave
//! with the shards in one global weight order, so the union can keep
//! edges a monolithic run would have dropped. The frontier bench
//! (`BENCH_9.json`) tracks that inflation per PR and gates it at 1.25×.

use crate::ft_greedy::{FtGreedy, FtSpanner};
use crate::Spanner;
use spanner_faults::{FaultModel, FaultOracle, FaultSet, ParallelBranchingOracle};
use spanner_graph::partition::bfs_balls;
use spanner_graph::{BitSet, EdgeId, Graph, NodeId};
use std::time::Instant;

/// Configurable partitioned FT-greedy runner (non-consuming builder),
/// mirroring [`FtGreedy`].
///
/// # Examples
///
/// ```
/// use spanner_core::partition::PartitionedFtGreedy;
/// use spanner_core::verify::verify_ft_exhaustive;
/// use spanner_faults::FaultModel;
/// use spanner_graph::generators::grid;
///
/// let g = grid(3, 4);
/// let built = PartitionedFtGreedy::new(&g, 3).faults(1).shard_target(4).run();
/// // The stitched union satisfies the contract under EVERY fault set.
/// let audit = verify_ft_exhaustive(&g, built.ft().spanner(), 1, FaultModel::Vertex);
/// assert!(audit.satisfied());
/// ```
#[derive(Debug)]
pub struct PartitionedFtGreedy<'a> {
    graph: &'a Graph,
    stretch: u64,
    faults: usize,
    model: FaultModel,
    shard_target: usize,
    seed: u64,
    threads: usize,
}

impl<'a> PartitionedFtGreedy<'a> {
    /// Starts configuring a partitioned run over `graph` with the given
    /// stretch.
    ///
    /// Defaults: `faults = 0`, vertex model, shard target 256, seed 9,
    /// one pool worker per logical CPU.
    ///
    /// # Panics
    ///
    /// Panics if `stretch == 0`.
    pub fn new(graph: &'a Graph, stretch: u64) -> Self {
        assert!(stretch >= 1, "stretch must be positive");
        PartitionedFtGreedy {
            graph,
            stretch,
            faults: 0,
            model: FaultModel::Vertex,
            shard_target: 256,
            seed: 9,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// Sets the fault budget `f` (applied per shard *and* by the stitch).
    pub fn faults(&mut self, faults: usize) -> &mut Self {
        self.faults = faults;
        self
    }

    /// Sets the fault model (vertex or edge).
    pub fn model(&mut self, model: FaultModel) -> &mut Self {
        self.model = model;
        self
    }

    /// Sets the target shard size (clamped to at least 1).
    pub fn shard_target(&mut self, target: usize) -> &mut Self {
        self.shard_target = target.max(1);
        self
    }

    /// Sets the partitioner's shuffle seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-pool width shared by all shard builds and the
    /// stitch.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = threads.max(1);
        self
    }

    /// Runs partition → per-shard FT-greedy → boundary stitch and
    /// returns the stitched union with its phase report.
    ///
    /// The result's witnesses are translated to union coordinates
    /// (global vertex ids; fault-set edge ids refer to union spanner
    /// edge ids), so it freezes and serves through the standard
    /// [`FtSpanner::freeze`] → `VFTSPANR` pipeline unchanged.
    pub fn run(&self) -> PartitionedSpanner {
        let n = self.graph.node_count();
        let m = self.graph.edge_count();

        // Phase 1: partition the vertex set, classify the edges.
        let t0 = Instant::now();
        let partition = bfs_balls(self.graph, self.shard_target, self.seed);
        let boundary = partition.boundary(self.graph);
        let mut shard_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); partition.shard_count()];
        let mut cross_edges: Vec<EdgeId> = Vec::new();
        let mut closure_pool: Vec<EdgeId> = Vec::new();
        for (id, e) in self.graph.edges() {
            let (su, sv) = (partition.shard_of(e.u()), partition.shard_of(e.v()));
            if su == sv {
                shard_edges[su].push(id);
                if boundary.contains(e.u().index()) && boundary.contains(e.v().index()) {
                    closure_pool.push(id);
                }
            } else {
                cross_edges.push(id);
            }
        }
        let partition_secs = t0.elapsed().as_secs_f64();

        // Phase 2: per-shard FT-greedy over one shared worker pool.
        let t1 = Instant::now();
        let mut oracle = ParallelBranchingOracle::new(self.threads);
        let mut union_kept: Vec<EdgeId> = Vec::new();
        let mut union_witnesses: Vec<FaultSet> = Vec::new();
        let mut kept_mask = BitSet::new(m);
        let mut local_of = vec![u32::MAX; n];
        for (shard, edges) in shard_edges.iter().enumerate() {
            let members = partition.members(shard);
            if edges.is_empty() {
                continue;
            }
            for (li, v) in members.iter().enumerate() {
                local_of[v.index()] = li as u32;
            }
            let mut shard_graph = Graph::with_edge_capacity(members.len(), edges.len());
            for &id in edges {
                let e = self.graph.edge(id);
                shard_graph.add_edge_unchecked(
                    NodeId::new(local_of[e.u().index()] as usize),
                    NodeId::new(local_of[e.v().index()] as usize),
                    e.weight(),
                );
            }
            let ft = FtGreedy::new(&shard_graph, self.stretch)
                .faults(self.faults)
                .model(self.model)
                .run_pooled_with(&mut oracle);
            let edge_offset = union_kept.len();
            for &local in ft.spanner().parent_edge_ids() {
                let global = edges[local.index()];
                kept_mask.insert(global.index());
                union_kept.push(global);
            }
            for w in ft.witnesses() {
                union_witnesses.push(translate_witness(w, members, edge_offset));
            }
            for v in members {
                local_of[v.index()] = u32::MAX;
            }
        }
        let shard_kept = union_kept.len();
        let build_secs = t1.elapsed().as_secs_f64();

        // Phase 3: boundary stitch over the union, global budget f.
        let t2 = Instant::now();
        let mut candidates = cross_edges.clone();
        candidates.extend(
            closure_pool
                .iter()
                .filter(|e| !kept_mask.contains(e.index())),
        );
        candidates.sort_by_key(|&e| (self.graph.weight(e), e));
        // Bounded-ball Dijkstras only from here on: the root min-cut
        // shortcut's unbounded packing probes are what partitioning is
        // escaping (exactness is unaffected; see the module docs).
        oracle.set_root_cut_shortcut(false);
        oracle.view_reset(n);
        for &id in &union_kept {
            let e = self.graph.edge(id);
            oracle.view_push_edge(e.u(), e.v(), e.weight());
        }
        for &id in &candidates {
            let e = self.graph.edge(id);
            let query = spanner_faults::OracleQuery {
                u: e.u(),
                v: e.v(),
                bound: e.weight().stretched(self.stretch),
                budget: self.faults,
                model: self.model,
            };
            if let Some(found) = oracle.find_blocking_faults_in_view(query) {
                oracle.view_push_edge(e.u(), e.v(), e.weight());
                union_kept.push(id);
                union_witnesses.push(found);
            }
        }
        let stitch_secs = t2.elapsed().as_secs_f64();

        let report = PartitionReport {
            shards: partition.shard_count(),
            largest_shard: partition.largest_shard(),
            boundary_vertices: boundary.len(),
            cross_edges: cross_edges.len(),
            stitch_candidates: candidates.len(),
            shard_kept,
            stitch_kept: union_kept.len() - shard_kept,
            partition_secs,
            build_secs,
            stitch_secs,
            pool_spawns: oracle.stats().pool_spawns,
        };
        let stats = oracle.stats();
        let spanner = Spanner::from_kept_edges_in_order(self.graph, union_kept, self.stretch);
        PartitionedSpanner {
            ft: FtSpanner::from_parts(spanner, union_witnesses, self.model, self.faults, stats),
            report,
        }
    }
}

/// Translates a shard-local witness to union coordinates: vertex faults
/// through the shard's member list, edge faults (which refer to the
/// shard spanner's own edge ids) by the shard's offset in the union
/// keep order.
fn translate_witness(w: &FaultSet, members: &[NodeId], edge_offset: usize) -> FaultSet {
    match w.model() {
        FaultModel::Vertex => {
            FaultSet::vertices(w.vertex_faults().iter().map(|v| members[v.index()]))
        }
        FaultModel::Edge => FaultSet::edges(
            w.edge_faults()
                .iter()
                .map(|e| EdgeId::new(e.index() + edge_offset)),
        ),
    }
}

/// The output of [`PartitionedFtGreedy::run`]: the stitched union
/// spanner plus the per-phase report the frontier bench records.
#[derive(Clone, Debug)]
pub struct PartitionedSpanner {
    ft: FtSpanner,
    report: PartitionReport,
}

impl PartitionedSpanner {
    /// The stitched union as a standard [`FtSpanner`] (witnesses in
    /// union coordinates; freezes and serves like any other).
    pub fn ft(&self) -> &FtSpanner {
        &self.ft
    }

    /// Consumes self, returning the union spanner.
    pub fn into_ft(self) -> FtSpanner {
        self.ft
    }

    /// Phase timings and partition shape.
    pub fn report(&self) -> &PartitionReport {
        &self.report
    }
}

/// Partition shape, per-phase wall times, and keep counts for one
/// partitioned construction.
#[derive(Clone, Debug)]
pub struct PartitionReport {
    /// Number of shards the vertex set was split into.
    pub shards: usize,
    /// Size of the largest shard.
    pub largest_shard: usize,
    /// Vertices with a neighbor in another shard.
    pub boundary_vertices: usize,
    /// Parent edges whose endpoints lie in different shards.
    pub cross_edges: usize,
    /// Edges the stitch pass re-examined (cross edges + dropped
    /// boundary-closure edges).
    pub stitch_candidates: usize,
    /// Edges kept by the per-shard builds.
    pub shard_kept: usize,
    /// Edges added by the stitch pass.
    pub stitch_kept: usize,
    /// Wall time of the partition/classification phase.
    pub partition_secs: f64,
    /// Wall time of the per-shard build phase.
    pub build_secs: f64,
    /// Wall time of the boundary stitch phase.
    pub stitch_secs: f64,
    /// Worker-pool spawns across all phases; 1 whenever any oracle
    /// query ran (the pool reuse contract the bench asserts).
    pub pool_spawns: u64,
}

impl PartitionReport {
    /// Total construction wall time across the three phases.
    pub fn total_secs(&self) -> f64 {
        self.partition_secs + self.build_secs + self.stitch_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_ft_exhaustive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spanner_graph::generators::{complete, grid, random_geometric, with_uniform_weights};

    #[test]
    fn contract_holds_on_grid_under_every_fault_set() {
        let g = grid(3, 4);
        for f in [1usize, 2] {
            let built = PartitionedFtGreedy::new(&g, 3)
                .faults(f)
                .shard_target(4)
                .threads(2)
                .run();
            let audit = verify_ft_exhaustive(&g, built.ft().spanner(), f, FaultModel::Vertex);
            assert!(audit.satisfied(), "f={f}: {audit:?}");
        }
    }

    #[test]
    fn pool_spawns_exactly_once_across_shards_and_stitch() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = with_uniform_weights(&complete(20), 1, 40, &mut rng);
        let built = PartitionedFtGreedy::new(&g, 3)
            .faults(1)
            .shard_target(5)
            .threads(2)
            .run();
        assert!(built.report().shards >= 4);
        assert_eq!(built.report().pool_spawns, 1);
        assert_eq!(built.ft().stats().pool_spawns, 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_geometric(60, 0.25, &mut rng);
        let a = PartitionedFtGreedy::new(&g, 3)
            .faults(1)
            .shard_target(12)
            .run();
        let b = PartitionedFtGreedy::new(&g, 3)
            .faults(1)
            .shard_target(12)
            .run();
        assert_eq!(
            a.ft().spanner().parent_edge_ids(),
            b.ft().spanner().parent_edge_ids()
        );
        assert_eq!(a.ft().witnesses(), b.ft().witnesses());
    }

    #[test]
    fn witnesses_line_up_with_union_edges() {
        let g = grid(4, 4);
        let built = PartitionedFtGreedy::new(&g, 3)
            .faults(1)
            .shard_target(5)
            .run();
        let ft = built.ft();
        assert_eq!(ft.witnesses().len(), ft.spanner().edge_count());
        assert!(ft.witnesses().iter().all(|w| w.len() <= 1));
        // Vertex witnesses must be valid global ids.
        for w in ft.witnesses() {
            for v in w.vertex_faults() {
                assert!(v.index() < g.node_count());
            }
        }
    }

    #[test]
    fn one_big_shard_matches_monolithic_ft_greedy() {
        // With every vertex in a single shard, there is nothing to
        // stitch: the output must be exactly the monolithic spanner.
        let mut rng = StdRng::seed_from_u64(13);
        let g = with_uniform_weights(&complete(14), 1, 30, &mut rng);
        let built = PartitionedFtGreedy::new(&g, 3)
            .faults(1)
            .shard_target(g.node_count())
            .run();
        let mono = FtGreedy::new(&g, 3).faults(1).run();
        assert_eq!(built.report().shards, 1);
        assert_eq!(built.report().stitch_kept, 0);
        assert_eq!(
            built.ft().spanner().parent_edge_ids(),
            mono.spanner().parent_edge_ids()
        );
    }

    #[test]
    fn edge_model_contract_holds_exhaustively() {
        let g = grid(3, 3);
        let built = PartitionedFtGreedy::new(&g, 3)
            .faults(1)
            .model(FaultModel::Edge)
            .shard_target(3)
            .run();
        let audit = verify_ft_exhaustive(&g, built.ft().spanner(), 1, FaultModel::Edge);
        assert!(audit.satisfied(), "{audit:?}");
    }

    #[test]
    fn report_phases_are_accounted() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_geometric(80, 0.22, &mut rng);
        let built = PartitionedFtGreedy::new(&g, 3)
            .faults(1)
            .shard_target(16)
            .run();
        let r = built.report();
        assert!(r.shards > 1);
        assert_eq!(
            r.shard_kept + r.stitch_kept,
            built.ft().spanner().edge_count()
        );
        assert!(r.stitch_candidates >= r.cross_edges);
        assert!(r.total_secs() >= r.build_secs);
    }
}
