//! The classic greedy spanner (Althöfer et al. 1993).
//!
//! Scan edges in increasing weight order; keep `(u, v)` iff the partial
//! spanner's distance `dist_H(u, v)` currently exceeds `k · w(u, v)`.
//! Correctness is immediate, and the output has girth > k + 1 (two
//! kept edges closing a short cycle would contradict the keep test), which
//! is exactly why its size is bounded by the extremal function `b(n, k+1)`.
//! It is also *existentially optimal* (Filtser–Solomon 2016).
//!
//! The FT greedy algorithm of the paper generalizes this scan; the `f = 0`
//! case of [`crate::FtGreedy`] reproduces it exactly (tested).

use crate::Spanner;
use spanner_graph::{DijkstraEngine, FaultMask, Graph};

/// Builds a greedy `stretch`-spanner of `graph`.
///
/// # Panics
///
/// Panics if `stretch == 0`.
///
/// # Examples
///
/// ```
/// use spanner_core::greedy_spanner;
/// use spanner_graph::generators::complete;
///
/// // A 3-spanner of K16 has girth > 4, so at most ~n^{3/2} edges.
/// let g = complete(16);
/// let s = greedy_spanner(&g, 3);
/// assert!(s.edge_count() < g.edge_count() / 2);
/// ```
pub fn greedy_spanner(graph: &Graph, stretch: u64) -> Spanner {
    greedy_spanner_masked(graph, stretch, &FaultMask::for_graph(graph))
}

/// Greedy spanner of `graph ∖ mask` (vertices/edges under the mask are
/// ignored entirely). Used by the union-of-spanners EFT baseline, which
/// repeatedly re-spans the graph minus previously chosen edges.
///
/// # Panics
///
/// Panics if `stretch == 0`.
pub fn greedy_spanner_masked(graph: &Graph, stretch: u64, mask: &FaultMask) -> Spanner {
    assert!(stretch >= 1, "stretch must be positive");
    let mut spanner = Spanner::empty(graph, stretch);
    let mut engine = DijkstraEngine::new();
    let spanner_mask = FaultMask::with_capacity(graph.node_count(), 0);
    for parent_id in graph.edges_by_weight() {
        if mask.is_edge_faulted(parent_id) {
            continue;
        }
        let e = graph.edge(parent_id);
        if mask.is_vertex_faulted(e.u()) || mask.is_vertex_faulted(e.v()) {
            continue;
        }
        let bound = e.weight().stretched(stretch);
        // Query the spanner's flat CSR view: identical answers (same ids,
        // same adjacency order), contiguous traversal.
        let within = engine
            .dist_bounded(spanner.view(), e.u(), e.v(), bound, &spanner_mask)
            .is_some();
        if !within {
            spanner.push_edge(parent_id, e.u(), e.v(), e.weight());
        }
    }
    spanner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_spanner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spanner_graph::generators::{complete, cycle, with_uniform_weights};
    use spanner_graph::{girth, EdgeId, NodeId};

    #[test]
    fn stretch_one_keeps_shortest_path_structure() {
        // Stretch 1 on a cycle keeps all edges except across equal paths.
        let g = cycle(5);
        let s = greedy_spanner(&g, 1);
        // C5: removing any edge doubles some distance, all must stay.
        assert_eq!(s.edge_count(), 5);
    }

    #[test]
    fn tree_inputs_are_kept_verbatim() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        let s = greedy_spanner(&g, 3);
        assert_eq!(s.edge_count(), 4);
    }

    #[test]
    fn output_is_a_valid_spanner() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = with_uniform_weights(&complete(20), 1, 50, &mut rng);
        for stretch in [1u64, 2, 3, 5] {
            let s = greedy_spanner(&g, stretch);
            let report = verify_spanner(&g, &s);
            assert!(report.satisfied, "stretch {stretch}: {report:?}");
        }
    }

    #[test]
    fn output_girth_exceeds_stretch_plus_one_unweighted() {
        let g = complete(24);
        for stretch in [2u64, 3, 5] {
            let s = greedy_spanner(&g, stretch);
            let mask = FaultMask::for_graph(s.graph());
            assert!(
                girth::has_girth_greater_than(s.graph(), &mask, (stretch + 1) as usize),
                "stretch {stretch} girth {:?}",
                girth::girth(s.graph(), &mask)
            );
        }
    }

    #[test]
    fn spanner_of_spanner_is_idempotent() {
        let g = complete(15);
        let s1 = greedy_spanner(&g, 3);
        let s2 = greedy_spanner(s1.graph(), 3);
        assert_eq!(s1.edge_count(), s2.edge_count());
    }

    #[test]
    fn masked_variant_ignores_masked_edges() {
        let g = cycle(6);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_edge(EdgeId::new(0));
        let s = greedy_spanner_masked(&g, 3, &mask);
        assert!(!s.contains_parent_edge(EdgeId::new(0)));
        assert_eq!(s.edge_count(), 5);
    }

    #[test]
    fn masked_variant_ignores_masked_vertices() {
        let g = complete(6);
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(0));
        let s = greedy_spanner_masked(&g, 3, &mask);
        assert_eq!(s.graph().degree(NodeId::new(0)), 0);
    }

    #[test]
    fn dense_graph_sparsifies() {
        let g = complete(40);
        let s = greedy_spanner(&g, 5);
        // Girth > 6 graphs have O(n^{4/3}) edges; K40 has 780.
        assert!(s.edge_count() < 200, "got {}", s.edge_count());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stretch_rejected() {
        let g = cycle(3);
        let _ = greedy_spanner(&g, 0);
    }
}
