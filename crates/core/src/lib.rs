//! Fault tolerant spanners — a faithful implementation of
//! *“A Trivial Yet Optimal Solution to Vertex Fault Tolerant Spanners”*
//! (Bodwin & Patel, PODC 2019).
//!
//! The paper's result: the obvious fault tolerant generalization of the
//! greedy spanner algorithm — keep an edge iff some ≤ f faults would
//! otherwise stretch it — is *optimal* for vertex faults: its output size
//! is `O(f² · b(n/f, k+1))`, matching the lower bound family. This crate
//! implements every object in that story:
//!
//! * [`greedy_spanner`] — the classic greedy baseline (Althöfer et al.);
//! * [`FtGreedy`] — **Algorithm 1**: the VFT/EFT greedy construction with
//!   pluggable exact fault oracles and recorded witness fault sets;
//! * [`BlockingSet`] — **Lemma 3**: the `(k+1)`-blocking set extracted
//!   from the witnesses, plus direct verification against enumerated
//!   cycles;
//! * [`peel`] — **Lemma 4**: random vertex sampling + blocked-edge
//!   deletion yielding a high-girth witness subgraph;
//! * [`verify`] — stretch verification (plain, per fault set, exhaustive
//!   over all fault sets, sampled, and adversarial);
//! * [`baselines`] — the DK11-style random-subset construction and the
//!   union-of-spanners EFT construction for comparisons;
//! * [`simulation`] — the resilience engine: pluggable failure scenarios
//!   (Bernoulli, regional, witness replay, bursts, scripted traces) with
//!   exact per-query contract accounting over [`routing`];
//! * [`frozen`] / [`serve`] — the serving side: freeze the construction
//!   into an immutable [`FrozenSpanner`] artifact, share it via `Arc`,
//!   and serve any number of concurrent tenants through an
//!   [`EpochServer`] — interned fault views, independent
//!   [`EpochHandle`] sessions, O(Δ) epoch deltas, and a coalescing
//!   batch front-end; persist the artifact with
//!   [`FrozenSpanner::encode`] and load it in a serving replica with
//!   [`FrozenSpanner::decode`] — or map a v2 artifact **in place** with
//!   [`FrozenSpanner::open`] ([`MappedSpanner`]) and serve it without
//!   decoding — build once, serve many, never reconstruct.
//!
//! # Quickstart
//!
//! ```
//! use spanner_core::{verify::verify_ft_exhaustive, FtGreedy};
//! use spanner_faults::FaultModel;
//! use spanner_graph::generators::complete;
//!
//! let g = complete(10);
//! let ft = FtGreedy::new(&g, 3).faults(1).run();
//! // The whole point: H ∖ F spans G ∖ F for EVERY fault set |F| ≤ 1.
//! let audit = verify_ft_exhaustive(&g, ft.spanner(), 1, FaultModel::Vertex);
//! assert!(audit.satisfied());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocking;
mod ft_greedy;
mod greedy;
mod peeling;
mod spanner;

pub mod baselines;
pub mod frozen;
pub mod metrics;
pub mod partition;
pub mod report;
pub mod routing;
pub mod serve;
pub mod simulation;
pub mod verify;

pub use blocking::{verify_blocking_set, BlockingReport, BlockingSet};
pub use frozen::{ArtifactError, FrozenSpanner, MappedSpanner};
pub use ft_greedy::{FtGreedy, FtSpanner, OracleKind};
pub use greedy::{greedy_spanner, greedy_spanner_masked};
pub use partition::{PartitionReport, PartitionedFtGreedy, PartitionedSpanner};
pub use peeling::{expected_yield, peel, PeelOutcome};
pub use serve::{
    BatchCoalescer, EpochDelta, EpochHandle, EpochServer, EpochView, ServerStats, Ticket,
};
pub use spanner::Spanner;
