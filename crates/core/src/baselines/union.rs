//! The classic union-of-spanners EFT baseline.
//!
//! Fold-lore construction for *edge* fault tolerance: compute a greedy
//! `k`-spanner `H₁` of `G`, remove its edges, compute `H₂` of the rest,
//! and so on `f + 1` times; output `H = H₁ ∪ … ∪ H_{f+1}`.
//!
//! **Why it is f-EFT**: fix an edge `(u, v) ∈ G ∖ F` and `|F| ≤ f`. For
//! each layer `i`, either `(u, v) ∈ Hᵢ` or `Hᵢ` contains a `u→v` path of
//! weight ≤ `k·w(u,v)` (the edge was present in layer `i`'s input unless an
//! earlier layer took it — and if an earlier layer took it, that layer
//! contains the edge itself). This yields `f + 1` *edge-disjoint*
//! witnesses (paths or the edge), and `F` can destroy at most `f` of them.
//!
//! Size: at most `(f + 1) · b(n, k+1)` — worse than the FT-greedy's
//! Theorem 1 bound in `f` (linear vs `f^{1−1/k}` at Moore tightness), but
//! polynomial-time. Experiment E5 compares the two.

use crate::{greedy_spanner_masked, Spanner};
use spanner_graph::{FaultMask, Graph};

/// Builds the `(f+1)`-layer union EFT spanner.
///
/// # Panics
///
/// Panics if `stretch == 0`.
///
/// # Examples
///
/// ```
/// use spanner_core::baselines::union_eft_spanner;
/// use spanner_graph::generators::complete;
///
/// let g = complete(12);
/// let s = union_eft_spanner(&g, 3, 1);
/// assert!(s.edge_count() <= g.edge_count());
/// ```
pub fn union_eft_spanner(graph: &Graph, stretch: u64, faults: usize) -> Spanner {
    assert!(stretch >= 1, "stretch must be positive");
    let mut taken = FaultMask::for_graph(graph);
    let mut kept = Vec::new();
    for _ in 0..=faults {
        let layer = greedy_spanner_masked(graph, stretch, &taken);
        if layer.edge_count() == 0 {
            break;
        }
        for parent in layer.parent_edge_ids() {
            kept.push(*parent);
            taken.fault_edge(*parent);
        }
    }
    Spanner::from_parent_edges(graph, kept, stretch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_ft_exhaustive, verify_spanner};
    use crate::FtGreedy;
    use spanner_faults::FaultModel;
    use spanner_graph::generators::{complete, grid};

    #[test]
    fn is_plain_spanner() {
        let g = complete(14);
        let s = union_eft_spanner(&g, 3, 2);
        assert!(verify_spanner(&g, &s).satisfied);
    }

    #[test]
    fn passes_exhaustive_edge_audit() {
        for f in 0..=2usize {
            let g = complete(8);
            let s = union_eft_spanner(&g, 3, f);
            let audit = verify_ft_exhaustive(&g, &s, f, FaultModel::Edge);
            assert!(
                audit.satisfied(),
                "f={f}: {} violations of {}",
                audit.violations,
                audit.trials
            );
        }
    }

    #[test]
    fn grid_audit() {
        let g = grid(3, 4);
        let s = union_eft_spanner(&g, 3, 1);
        let audit = verify_ft_exhaustive(&g, &s, 1, FaultModel::Edge);
        assert!(audit.satisfied());
    }

    #[test]
    fn layers_grow_size_roughly_linearly() {
        let g = complete(20);
        let s0 = union_eft_spanner(&g, 3, 0);
        let s2 = union_eft_spanner(&g, 3, 2);
        assert!(s2.edge_count() > s0.edge_count());
        assert!(s2.edge_count() <= 3 * s0.edge_count() + g.node_count());
    }

    #[test]
    fn exhausts_parent_gracefully() {
        // More layers than the graph can supply: stops early, keeps all.
        let g = grid(2, 2);
        let s = union_eft_spanner(&g, 1, 10);
        assert_eq!(s.edge_count(), g.edge_count());
    }

    #[test]
    fn greedy_beats_union_baseline_in_size() {
        // The headline comparison (E5 in miniature): FT-greedy's EFT output
        // is no larger than the union baseline.
        let g = complete(12);
        let f = 2usize;
        let union = union_eft_spanner(&g, 3, f);
        let greedy = FtGreedy::new(&g, 3).faults(f).model(FaultModel::Edge).run();
        assert!(
            greedy.spanner().edge_count() <= union.edge_count(),
            "greedy {} vs union {}",
            greedy.spanner().edge_count(),
            union.edge_count()
        );
    }
}
