//! Baseline fault tolerant spanner constructions for comparison with the
//! paper's FT-greedy algorithm.
//!
//! * [`dk_spanner`] — DK11-style random-subset construction: polynomial
//!   time, provable VFT guarantee, larger output (experiments E4, E10).
//! * [`union_eft_spanner`] — (f+1) edge-disjoint greedy layers: the classic
//!   EFT baseline (experiment E5).

mod dk;
mod union;

pub use dk::{dk_spanner, DkParams};
pub use union::union_eft_spanner;
