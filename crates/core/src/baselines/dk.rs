//! A Dinitz–Krauthgamer-style polynomial-time VFT spanner baseline.
//!
//! [DK11] ("Fault-tolerant spanners: better and simpler", PODC 2011)
//! introduced the random-subset framework this module re-derives:
//!
//! * Repeat for `T` rounds: sample a vertex set `S` keeping each vertex
//!   independently with probability `p`; compute a (non-FT) greedy
//!   `k`-spanner of the induced subgraph `G[S]`; union the results.
//! * **Why it is f-VFT**: by the per-edge criterion it suffices that for
//!   every edge `(u, v) ∈ G` and every fault set `F` (|F| ≤ f, avoiding
//!   `u, v`), some round has `u, v ∈ S` and `F ∩ S = ∅`: that round's
//!   spanner then contains a `u→v` path of weight ≤ `k·w(u,v)` that lives
//!   inside `S`, hence survives `F`.
//! * One round succeeds for a fixed `(u, v, F)` with probability
//!   `p²(1−p)^f`; with `p = 1/(f+1)` this is at least `1/(e(f+1)²)`. A
//!   union bound over at most `m·n^f` triples gives the provable round
//!   count `T = ⌈e(f+1)²·((f+2)·ln n + 1)⌉`.
//!
//! The provable `T` is large; [`DkParams::heuristic`] exposes the same
//! construction with a tunable multiplier, and the experiment harness
//! audits the result empirically (E4/E10). This is the polynomial-time
//! comparator the paper's introduction contrasts the greedy against: the
//! greedy wins on size, DK wins on asymptotic construction time.

use crate::{greedy_spanner, Spanner};
use rand::Rng;
use spanner_graph::{subgraph, EdgeId, Graph, NodeId};

/// Parameters of the DK-style construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DkParams {
    /// Per-vertex keep probability (`1/(f+1)` in the analysis).
    pub keep_probability: f64,
    /// Number of sampling rounds.
    pub rounds: usize,
}

impl DkParams {
    /// The parameters with the full union-bound guarantee (w.h.p. over all
    /// fault sets). Large; meant for correctness experiments on small
    /// graphs.
    pub fn provable(n: usize, f: usize) -> DkParams {
        let p = 1.0 / (f as f64 + 1.0);
        let ln_n = (n.max(2) as f64).ln();
        let rounds =
            (std::f64::consts::E * (f as f64 + 1.0).powi(2) * ((f as f64 + 2.0) * ln_n + 1.0))
                .ceil() as usize;
        DkParams {
            keep_probability: p,
            rounds: rounds.max(1),
        }
    }

    /// Heuristic parameters: `multiplier · (f+1)² · ln n` rounds. Audited
    /// empirically rather than proven; the experiments use
    /// `multiplier ≈ 3`.
    pub fn heuristic(n: usize, f: usize, multiplier: f64) -> DkParams {
        let p = 1.0 / (f as f64 + 1.0);
        let ln_n = (n.max(2) as f64).ln();
        let rounds = (multiplier * (f as f64 + 1.0).powi(2) * ln_n).ceil() as usize;
        DkParams {
            keep_probability: p,
            rounds: rounds.max(1),
        }
    }
}

/// Runs the DK-style random-subset VFT construction.
///
/// Returns a spanner of `graph` for the given stretch, built as the union
/// of greedy spanners of `params.rounds` random induced subgraphs.
///
/// # Panics
///
/// Panics if `stretch == 0` or `keep_probability ∉ (0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use spanner_core::baselines::{dk_spanner, DkParams};
/// use spanner_graph::generators::complete;
///
/// let g = complete(20);
/// let mut rng = StdRng::seed_from_u64(1);
/// let s = dk_spanner(&g, 3, DkParams::heuristic(20, 1, 3.0), &mut rng);
/// assert!(s.edge_count() <= g.edge_count());
/// ```
pub fn dk_spanner(graph: &Graph, stretch: u64, params: DkParams, rng: &mut impl Rng) -> Spanner {
    assert!(stretch >= 1, "stretch must be positive");
    assert!(
        params.keep_probability > 0.0 && params.keep_probability <= 1.0,
        "keep probability out of range"
    );
    let mut kept = vec![false; graph.edge_count()];
    for _ in 0..params.rounds {
        let sample: Vec<NodeId> = graph
            .nodes()
            .filter(|_| rng.gen_bool(params.keep_probability))
            .collect();
        if sample.len() < 2 {
            continue;
        }
        let induced = subgraph::induced(graph, sample.iter().copied());
        let round_spanner = greedy_spanner(&induced.graph, stretch);
        for own in round_spanner.parent_edge_ids() {
            kept[induced.parent_edge(*own).index()] = true;
        }
    }
    Spanner::from_parent_edges(
        graph,
        kept.iter()
            .enumerate()
            .filter(|(_, k)| **k)
            .map(|(i, _)| EdgeId::new(i)),
        stretch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_ft_exhaustive, verify_spanner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spanner_faults::FaultModel;
    use spanner_graph::generators::complete;

    #[test]
    fn provable_params_shape() {
        let p = DkParams::provable(100, 2);
        assert!((p.keep_probability - 1.0 / 3.0).abs() < 1e-9);
        assert!(p.rounds > 50);
        // Rounds grow with f.
        assert!(DkParams::provable(100, 4).rounds > p.rounds);
    }

    #[test]
    fn heuristic_params_scale_with_multiplier() {
        let a = DkParams::heuristic(100, 2, 1.0);
        let b = DkParams::heuristic(100, 2, 4.0);
        assert!(b.rounds >= 4 * a.rounds - 3);
    }

    #[test]
    fn dk_with_provable_params_is_ft_on_small_graph() {
        let g = complete(8);
        let f = 1usize;
        let mut rng = StdRng::seed_from_u64(77);
        let s = dk_spanner(&g, 3, DkParams::provable(8, f), &mut rng);
        let audit = verify_ft_exhaustive(&g, &s, f, FaultModel::Vertex);
        assert!(
            audit.satisfied(),
            "{} violations of {}",
            audit.violations,
            audit.trials
        );
    }

    #[test]
    fn dk_output_is_plain_spanner_with_heuristic_params() {
        let g = complete(16);
        let mut rng = StdRng::seed_from_u64(5);
        let s = dk_spanner(&g, 3, DkParams::heuristic(16, 1, 6.0), &mut rng);
        // Heuristic rounds are enough to cover the no-fault case w.h.p.
        let r = verify_spanner(&g, &s);
        assert!(r.satisfied, "max stretch {}", r.max_stretch);
    }

    #[test]
    fn empty_rounds_give_empty_spanner() {
        let g = complete(6);
        let mut rng = StdRng::seed_from_u64(5);
        let s = dk_spanner(
            &g,
            3,
            DkParams {
                keep_probability: 1e-9,
                rounds: 3,
            },
            &mut rng,
        );
        assert_eq!(s.edge_count(), 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = complete(12);
        let params = DkParams::heuristic(12, 1, 2.0);
        let a = dk_spanner(&g, 3, params, &mut StdRng::seed_from_u64(9));
        let b = dk_spanner(&g, 3, params, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.parent_edge_ids(), b.parent_edge_ids());
    }
}
