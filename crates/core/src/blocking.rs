//! Blocking sets — the combinatorial heart of the paper's analysis.
//!
//! Definition 3 (vertex form): a `k`-blocking set for `H` is a set
//! `B ⊆ V × E` with (1) `v ∉ e` for every `(v, e) ∈ B` and (2) every cycle
//! of at most `k` edges contains both members of some pair. The closing
//! remark uses the analogous *edge* form (pairs of distinct edges).
//!
//! **Lemma 3** (implemented by [`BlockingSet::from_witnesses`]): the FT
//! greedy output `H` has a `(k+1)`-blocking set of size at most
//! `f·|E(H)|` — take `B = {(x, e) : e ∈ H, x ∈ F_e}` over the recorded
//! witnesses. Why it blocks: for any cycle `C` on ≤ k+1 edges, let `e` be
//! the edge of `C` the greedy considered last. The rest of `C` was already
//! present, forming a `u-v` path of weight ≤ k·w(e); since
//! `dist_{H∖F_e}(u, v) > k·w(e)`, the witness `F_e` must hit that path
//! inside `C ∖ {u, v}`.
//!
//! [`verify_blocking_set`] checks property (2) directly against enumerated
//! short cycles — this is how the reproduction *measures* Lemma 3 instead
//! of trusting it.

use crate::FtSpanner;
use spanner_faults::FaultModel;
use spanner_graph::{cycles, EdgeId, FaultMask, Graph, NodeId};
use std::collections::HashSet;

/// A blocking set in either the vertex or the edge form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockingSet {
    /// Pairs `(vertex, edge)` with the vertex not an endpoint of the edge.
    Vertex(Vec<(NodeId, EdgeId)>),
    /// Pairs of distinct edges.
    Edge(Vec<(EdgeId, EdgeId)>),
}

impl BlockingSet {
    /// Lemma 3: assemble the blocking set from an FT-greedy run's recorded
    /// witnesses. Pairs reference *spanner* edge ids.
    ///
    /// # Examples
    ///
    /// ```
    /// use spanner_core::{BlockingSet, FtGreedy};
    /// use spanner_graph::generators::complete;
    ///
    /// let g = complete(10);
    /// let ft = FtGreedy::new(&g, 3).faults(2).run();
    /// let b = BlockingSet::from_witnesses(&ft);
    /// // |B| <= f * |E(H)| — the Lemma 3 size guarantee.
    /// assert!(b.len() <= 2 * ft.spanner().edge_count());
    /// ```
    pub fn from_witnesses(ft: &FtSpanner) -> BlockingSet {
        match ft.model() {
            FaultModel::Vertex => {
                let mut pairs = Vec::new();
                for (i, witness) in ft.witnesses().iter().enumerate() {
                    let e = EdgeId::new(i);
                    for x in witness.vertex_faults() {
                        pairs.push((*x, e));
                    }
                }
                BlockingSet::Vertex(pairs)
            }
            FaultModel::Edge => {
                let mut pairs = Vec::new();
                for (i, witness) in ft.witnesses().iter().enumerate() {
                    let e = EdgeId::new(i);
                    for other in witness.edge_faults() {
                        pairs.push((*other, e));
                    }
                }
                BlockingSet::Edge(pairs)
            }
        }
    }

    /// Wraps explicit edge pairs (e.g. the lower-bound family's set).
    pub fn from_edge_pairs<I: IntoIterator<Item = (EdgeId, EdgeId)>>(pairs: I) -> BlockingSet {
        BlockingSet::Edge(pairs.into_iter().collect())
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        match self {
            BlockingSet::Vertex(p) => p.len(),
            BlockingSet::Edge(p) => p.len(),
        }
    }

    /// Returns `true` if there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which fault model the pairs belong to.
    pub fn model(&self) -> FaultModel {
        match self {
            BlockingSet::Vertex(_) => FaultModel::Vertex,
            BlockingSet::Edge(_) => FaultModel::Edge,
        }
    }

    /// The Lemma 3 size ratio `|B| / |E(H)|`; the lemma promises it is at
    /// most `f`.
    pub fn size_ratio(&self, h: &Graph) -> f64 {
        if h.edge_count() == 0 {
            0.0
        } else {
            self.len() as f64 / h.edge_count() as f64
        }
    }

    /// Checks structural validity of the pairs against `h`:
    /// vertex pairs must not touch their edge's endpoints; edge pairs must
    /// be distinct edges. (Property (1) of Definition 3.)
    pub fn is_well_formed(&self, h: &Graph) -> bool {
        match self {
            BlockingSet::Vertex(pairs) => pairs.iter().all(|(x, e)| {
                e.index() < h.edge_count()
                    && x.index() < h.node_count()
                    && !h.edge(*e).is_endpoint(*x)
            }),
            BlockingSet::Edge(pairs) => pairs
                .iter()
                .all(|(a, b)| a != b && a.index() < h.edge_count() && b.index() < h.edge_count()),
        }
    }
}

/// Outcome of [`verify_blocking_set`].
#[derive(Clone, Debug)]
pub struct BlockingReport {
    /// Number of short cycles inspected.
    pub cycles_checked: usize,
    /// Cycles (as edge-id lists) not blocked by any pair — empty iff the
    /// set is a valid blocking set for the inspected length.
    pub unblocked: Vec<Vec<EdgeId>>,
    /// `true` if cycle enumeration hit its cap (result then inconclusive).
    pub truncated: bool,
}

impl BlockingReport {
    /// `true` when every enumerated cycle was blocked and enumeration was
    /// complete.
    pub fn is_valid(&self) -> bool {
        self.unblocked.is_empty() && !self.truncated
    }
}

/// Verifies property (2) of Definition 3: every cycle of `h` with at most
/// `max_cycle_len` edges contains some pair of `blocking`. At most
/// `cycle_limit` cycles are enumerated (see [`BlockingReport::truncated`]).
pub fn verify_blocking_set(
    h: &Graph,
    blocking: &BlockingSet,
    max_cycle_len: usize,
    cycle_limit: usize,
) -> BlockingReport {
    let mask = FaultMask::for_graph(h);
    let enumeration = cycles::enumerate_short_cycles(h, &mask, max_cycle_len, cycle_limit);
    let mut unblocked = Vec::new();
    match blocking {
        BlockingSet::Vertex(pairs) => {
            let lookup: HashSet<(u32, u32)> =
                pairs.iter().map(|(x, e)| (x.raw(), e.raw())).collect();
            for c in &enumeration.cycles {
                let blocked = c.nodes().iter().any(|x| {
                    c.edges()
                        .iter()
                        .any(|e| lookup.contains(&(x.raw(), e.raw())))
                });
                if !blocked {
                    unblocked.push(c.edges().to_vec());
                }
            }
        }
        BlockingSet::Edge(pairs) => {
            let lookup: HashSet<(u32, u32)> = pairs
                .iter()
                .map(|(a, b)| (a.raw().min(b.raw()), a.raw().max(b.raw())))
                .collect();
            for c in &enumeration.cycles {
                let es = c.edges();
                let mut blocked = false;
                'outer: for i in 0..es.len() {
                    for j in (i + 1)..es.len() {
                        let key = (es[i].raw().min(es[j].raw()), es[i].raw().max(es[j].raw()));
                        if lookup.contains(&key) {
                            blocked = true;
                            break 'outer;
                        }
                    }
                }
                if !blocked {
                    unblocked.push(es.to_vec());
                }
            }
        }
    }
    BlockingReport {
        cycles_checked: enumeration.cycles.len(),
        unblocked,
        truncated: enumeration.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, grid};

    #[test]
    fn witnesses_yield_wellformed_blocking_set() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let b = BlockingSet::from_witnesses(&ft);
        assert!(b.is_well_formed(ft.spanner().graph()));
        assert_eq!(b.model(), FaultModel::Vertex);
    }

    #[test]
    fn lemma3_size_bound_holds() {
        for f in 0..3usize {
            let g = complete(10);
            let ft = FtGreedy::new(&g, 3).faults(f).run();
            let b = BlockingSet::from_witnesses(&ft);
            assert!(
                b.len() <= f * ft.spanner().edge_count(),
                "f={f}: |B|={} > f*m={}",
                b.len(),
                f * ft.spanner().edge_count()
            );
            assert!(b.size_ratio(ft.spanner().graph()) <= f as f64);
        }
    }

    #[test]
    fn lemma3_blocking_property_vertex_model() {
        for (g, name) in [(complete(9), "K9"), (grid(3, 4), "grid3x4")] {
            let stretch = 3u64;
            let ft = FtGreedy::new(&g, stretch).faults(1).run();
            let b = BlockingSet::from_witnesses(&ft);
            let report =
                verify_blocking_set(ft.spanner().graph(), &b, (stretch + 1) as usize, 1_000_000);
            assert!(
                report.is_valid(),
                "{name}: {} unblocked of {} cycles",
                report.unblocked.len(),
                report.cycles_checked
            );
        }
    }

    #[test]
    fn lemma3_blocking_property_edge_model() {
        let g = complete(9);
        let stretch = 3u64;
        let ft = FtGreedy::new(&g, stretch)
            .faults(2)
            .model(FaultModel::Edge)
            .run();
        let b = BlockingSet::from_witnesses(&ft);
        assert!(b.is_well_formed(ft.spanner().graph()));
        let report =
            verify_blocking_set(ft.spanner().graph(), &b, (stretch + 1) as usize, 1_000_000);
        assert!(
            report.is_valid(),
            "{} unblocked of {}",
            report.unblocked.len(),
            report.cycles_checked
        );
    }

    #[test]
    fn empty_set_fails_on_cyclic_graph() {
        // Greedy with f=1 on K6 keeps short cycles; an empty blocking set
        // must be reported invalid.
        let g = complete(6);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let empty = BlockingSet::Vertex(Vec::new());
        let report = verify_blocking_set(ft.spanner().graph(), &empty, 4, 100_000);
        assert!(report.cycles_checked > 0);
        assert!(!report.is_valid());
    }

    #[test]
    fn truncation_is_inconclusive() {
        let g = complete(8);
        let ft = FtGreedy::new(&g, 2).faults(2).run();
        let b = BlockingSet::from_witnesses(&ft);
        let report = verify_blocking_set(ft.spanner().graph(), &b, 3, 1);
        if report.truncated {
            assert!(!report.is_valid());
        }
    }

    #[test]
    fn explicit_edge_pairs_wrap() {
        let b = BlockingSet::from_edge_pairs([(EdgeId::new(0), EdgeId::new(1))]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.model(), FaultModel::Edge);
        assert!(!b.is_empty());
    }

    #[test]
    fn blowup_blocking_set_validates_via_core_verifier() {
        use spanner_extremal::lower_bound::biclique_blowup;
        use spanner_graph::generators::cycle;
        let base = cycle(8); // girth 8
        let blow = biclique_blowup(&base, 2);
        let b = BlockingSet::from_edge_pairs(blow.edge_blocking_set());
        assert!(b.is_well_formed(blow.graph()));
        let report = verify_blocking_set(blow.graph(), &b, 7, 1_000_000);
        assert!(report.is_valid(), "{} unblocked", report.unblocked.len());
        assert!(report.cycles_checked > 0);
    }
}
