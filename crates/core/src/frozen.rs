//! The frozen spanner artifact: the construction's output, sealed for
//! serving.
//!
//! A [`Spanner`](crate::Spanner) is a *construction-time* object: it
//! grows edge by edge and keeps an incremental CSR view so the fault
//! oracle can query it mid-build. Once the construction finishes, the
//! consumer-facing problem inverts — the spanner never changes again,
//! but it is read by every query of every epoch, possibly from many
//! threads at once. [`FrozenSpanner`] is the artifact for that phase:
//!
//! * the adjacency is finalized into a cache-packed, immutable
//!   [`FrozenCsr`] (one contiguous record per neighbor slot);
//! * the bookkeeping a serving layer needs travels with it — the
//!   spanner-edge → parent-edge map *and* its precomputed inverse (so
//!   translating a parent-id fault set costs O(|F|), not O(|E(H)|) as
//!   [`Spanner::fault_mask`](crate::Spanner::fault_mask) pays), the
//!   stretch target, and optionally the parent graph handle, the fault
//!   budget/model it was built for, and the recorded witness fault sets;
//! * the whole structure is immutable and `Send + Sync`: share one
//!   artifact across any number of [`QueryEngine`](crate::QueryEngine)s
//!   via `Arc` and serve from every core at once.
//!
//! Freeze from either layer: [`Spanner::freeze`](crate::Spanner::freeze)
//! seals the subgraph alone; [`FtSpanner::freeze`](crate::FtSpanner::freeze)
//! additionally records the parent handle, budget, model and witnesses
//! (the metadata adversarial replay and stretch audits feed on).

use crate::Spanner;
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{EdgeId, FaultMask, FrozenCsr, Graph, GraphView};
use std::sync::Arc;

/// Sentinel in the parent→spanner edge map for "not kept".
const NOT_KEPT: u32 = u32::MAX;

/// An immutable, shareable spanner artifact (see the module docs).
///
/// # Examples
///
/// ```
/// use spanner_core::FtGreedy;
/// use spanner_graph::generators::complete;
/// use std::sync::Arc;
///
/// let g = complete(8);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let frozen = Arc::new(ft.freeze(&g));
/// assert_eq!(frozen.stretch(), 3);
/// assert_eq!(frozen.budget(), Some(1));
/// assert_eq!(frozen.witnesses().len(), frozen.edge_count());
/// ```
#[derive(Clone, Debug)]
pub struct FrozenSpanner {
    csr: FrozenCsr,
    parent: Option<Arc<Graph>>,
    parent_edges: Vec<EdgeId>,
    /// Inverse of `parent_edges`, indexed by parent edge id (`NOT_KEPT`
    /// where the parent edge did not survive into the spanner).
    spanner_of_parent: Vec<u32>,
    stretch: u64,
    budget: Option<usize>,
    model: FaultModel,
    witnesses: Vec<FaultSet>,
}

impl FrozenSpanner {
    /// Seals a bare spanner (no parent handle, no budget metadata, no
    /// witnesses); the artifact [`Spanner::freeze`](crate::Spanner::freeze)
    /// builds.
    pub fn from_spanner(spanner: &Spanner) -> Self {
        FrozenSpanner::assemble(spanner, None, None, FaultModel::Vertex, Vec::new())
    }

    /// Seals a spanner together with its construction metadata; the
    /// artifact [`FtSpanner::freeze`](crate::FtSpanner::freeze) builds.
    pub(crate) fn assemble(
        spanner: &Spanner,
        parent: Option<Arc<Graph>>,
        budget: Option<usize>,
        model: FaultModel,
        witnesses: Vec<FaultSet>,
    ) -> Self {
        let parent_edges = spanner.parent_edge_ids().to_vec();
        let slots = parent.as_ref().map(|p| p.edge_count()).unwrap_or(0).max(
            parent_edges
                .iter()
                .map(|e| e.index() + 1)
                .max()
                .unwrap_or(0),
        );
        let mut spanner_of_parent = vec![NOT_KEPT; slots];
        for (own, parent_id) in parent_edges.iter().enumerate() {
            spanner_of_parent[parent_id.index()] = own as u32;
        }
        FrozenSpanner {
            csr: FrozenCsr::from_view(spanner.graph()),
            parent,
            parent_edges,
            spanner_of_parent,
            stretch: spanner.stretch(),
            budget,
            model,
            witnesses,
        }
    }

    /// The packed adjacency queries run over.
    pub fn csr(&self) -> &FrozenCsr {
        &self.csr
    }

    /// Number of vertices (same ids as the parent graph).
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Number of spanner edges.
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// The stretch target the spanner was built for.
    pub fn stretch(&self) -> u64 {
        self.stretch
    }

    /// The fault budget the spanner was built for (`None` when frozen
    /// from a bare [`Spanner`](crate::Spanner), which records none).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// The fault model of the construction (meaningful when
    /// [`FrozenSpanner::budget`] is set).
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The parent graph handle, when the artifact carries one.
    pub fn parent(&self) -> Option<&Arc<Graph>> {
        self.parent.as_ref()
    }

    /// The recorded witness fault sets, indexed by spanner edge id
    /// (empty when frozen from a bare spanner).
    pub fn witnesses(&self) -> &[FaultSet] {
        &self.witnesses
    }

    /// Parent edge id of a spanner edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn parent_edge(&self, edge: EdgeId) -> EdgeId {
        self.parent_edges[edge.index()]
    }

    /// All kept parent edge ids, in spanner edge-id order.
    pub fn parent_edge_ids(&self) -> &[EdgeId] {
        &self.parent_edges
    }

    /// The spanner copy of a parent edge, if it was kept (O(1), unlike
    /// the linear scan a construction-time
    /// [`Spanner`](crate::Spanner) would need).
    pub fn spanner_edge_of_parent(&self, parent_edge: EdgeId) -> Option<EdgeId> {
        match self.spanner_of_parent.get(parent_edge.index()) {
            Some(&own) if own != NOT_KEPT => Some(EdgeId::new(own as usize)),
            _ => None,
        }
    }

    /// Applies a fault set expressed in *parent* ids into a mask over
    /// the spanner: vertex faults carry over unchanged, edge faults hit
    /// the spanner copies of those parent edges (absent copies are
    /// no-ops). The mask is the caller's reusable epoch scratch; this
    /// method only adds faults, it never clears.
    pub fn apply_faults(&self, faults: &FaultSet, mask: &mut FaultMask) {
        for v in faults.vertex_faults() {
            mask.fault_vertex(*v);
        }
        for e in faults.edge_faults() {
            if let Some(own) = self.spanner_edge_of_parent(*e) {
                mask.fault_edge(own);
            }
        }
    }
}

/// Compile-time proof of the serving contract: one artifact, any number
/// of threads.
#[allow(dead_code)]
fn frozen_spanner_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<FrozenSpanner>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, cycle};
    use spanner_graph::NodeId;

    #[test]
    fn freeze_preserves_structure_and_metadata() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let frozen = ft.freeze(&g);
        assert_eq!(frozen.node_count(), 10);
        assert_eq!(frozen.edge_count(), ft.spanner().edge_count());
        assert_eq!(frozen.stretch(), 3);
        assert_eq!(frozen.budget(), Some(1));
        assert_eq!(frozen.model(), FaultModel::Vertex);
        assert_eq!(frozen.witnesses(), ft.witnesses());
        assert_eq!(frozen.parent_edge_ids(), ft.spanner().parent_edge_ids());
        assert_eq!(frozen.parent().unwrap().edge_count(), g.edge_count());
    }

    #[test]
    fn bare_freeze_has_no_metadata() {
        let g = cycle(6);
        let s = Spanner::from_parent_edges(&g, g.edge_ids(), 3);
        let frozen = s.freeze();
        assert_eq!(frozen.budget(), None);
        assert!(frozen.parent().is_none());
        assert!(frozen.witnesses().is_empty());
        assert_eq!(frozen.edge_count(), 6);
    }

    #[test]
    fn parent_edge_translation_round_trips() {
        let g = cycle(4);
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(1), EdgeId::new(3)], 3);
        let frozen = s.freeze();
        assert_eq!(
            frozen.spanner_edge_of_parent(EdgeId::new(1)),
            Some(EdgeId::new(0))
        );
        assert_eq!(
            frozen.spanner_edge_of_parent(EdgeId::new(3)),
            Some(EdgeId::new(1))
        );
        assert_eq!(frozen.spanner_edge_of_parent(EdgeId::new(0)), None);
        assert_eq!(frozen.spanner_edge_of_parent(EdgeId::new(99)), None);
        assert_eq!(frozen.parent_edge(EdgeId::new(1)), EdgeId::new(3));
    }

    #[test]
    fn apply_faults_matches_spanner_fault_mask() {
        let g = cycle(5);
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(0), EdgeId::new(2), EdgeId::new(4)], 3);
        let frozen = s.freeze();
        for faults in [
            FaultSet::vertices([NodeId::new(2), NodeId::new(4)]),
            FaultSet::edges([EdgeId::new(0), EdgeId::new(1), EdgeId::new(4)]),
            FaultSet::empty(FaultModel::Vertex),
        ] {
            let reference = s.fault_mask(&faults);
            let mut mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
            frozen.apply_faults(&faults, &mut mask);
            assert_eq!(mask, reference, "faults {faults:?}");
        }
    }
}
