//! The frozen spanner artifact: the construction's output, sealed for
//! serving.
//!
//! A [`Spanner`] is a *construction-time* object: it
//! grows edge by edge and keeps an incremental CSR view so the fault
//! oracle can query it mid-build. Once the construction finishes, the
//! consumer-facing problem inverts — the spanner never changes again,
//! but it is read by every query of every epoch, possibly from many
//! threads at once. [`FrozenSpanner`] is the artifact for that phase:
//!
//! * the adjacency is finalized into a cache-packed, immutable
//!   [`FrozenCsr`] (one contiguous record per neighbor slot);
//! * the bookkeeping a serving layer needs travels with it — the
//!   spanner-edge → parent-edge map *and* its precomputed inverse (so
//!   translating a parent-id fault set costs O(|F|), not O(|E(H)|) as
//!   [`Spanner::fault_mask`](crate::Spanner::fault_mask) pays), the
//!   stretch target, and optionally the parent graph handle, the fault
//!   budget/model it was built for, and the recorded witness fault sets;
//! * the whole structure is immutable and `Send + Sync`: share one
//!   artifact across any number of [`QueryEngine`](crate::QueryEngine)s
//!   via `Arc` and serve from every core at once.
//!
//! Freeze from either layer: [`Spanner::freeze`](crate::Spanner::freeze)
//! seals the subgraph alone; [`FtSpanner::freeze`](crate::FtSpanner::freeze)
//! additionally records the parent handle, budget, model and witnesses
//! (the metadata adversarial replay and stretch audits feed on).
//!
//! # Persistence: build once, serve many
//!
//! The expensive half of the Bodwin–Patel story is *construction* (every
//! kept edge pays an exact fault-oracle decision); serving is cheap.
//! [`FrozenSpanner::encode`] therefore turns the artifact into a
//! versioned binary document (the `VFTSPANR` container of
//! [`spanner_graph::io::binary`]; byte-level spec in
//! `docs/ARTIFACT_FORMAT.md`) and [`FrozenSpanner::decode`] loads it
//! back — in another process, on another machine — without re-running
//! FT-greedy. Everything a serving replica needs travels in the bytes:
//! the packed adjacency, stretch/budget/model metadata, the witness
//! map, both parent↔spanner edge translation tables (the inverse stored
//! rather than re-derived, so decode's allocations stay bounded by the
//! input — and revalidated element-wise against the forward table), and
//! optionally the parent graph itself.
//!
//! The codec's contract, pinned by `tests/artifact_props.rs`:
//!
//! * `decode(encode(a))` re-encodes **byte-identically** and serves
//!   every epoch'd query batch **bit-identically** to `a`;
//! * truncated, corrupt, or crafted input returns a typed
//!   [`ArtifactError`] — decoding never panics;
//! * unknown format versions and unknown sections are rejected with
//!   typed errors, never misread (the compatibility policy).
//!
//! The `spanner-artifact` harness binary wraps the codec for the shell
//! (`build` / `inspect` / `serve`), and CI round-trips an artifact
//! through a fresh process on every push.

use crate::Spanner;
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::io::binary::{self, put_u32, put_u64, BinaryError, ByteReader, ContainerWriter};
use spanner_graph::{EdgeId, FaultMask, FrozenCsr, Graph, GraphView, NodeId};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Magic bytes of a persisted [`FrozenSpanner`] container.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"VFTSPANR";

/// Format version [`FrozenSpanner::encode`] writes and
/// [`FrozenSpanner::decode`] requires (exact match; unknown versions are
/// a typed error, never a guess).
pub const ARTIFACT_VERSION: u32 = 1;

/// Construction metadata: stretch, model, budget, counts.
pub const SECTION_META: u32 = 1;
/// The spanner adjacency (graph payload, edge ids = spanner edge ids).
pub const SECTION_SPANNER: u32 = 2;
/// Spanner-edge → parent-edge id map, in spanner edge-id order.
pub const SECTION_PARENT_EDGES: u32 = 3;
/// Recorded witness fault sets, indexed by spanner edge id.
pub const SECTION_WITNESSES: u32 = 4;
/// The parent graph (graph payload), present iff the artifact carries
/// the handle.
pub const SECTION_PARENT: u32 = 5;

/// Errors from [`FrozenSpanner::decode`]: either the container itself is
/// bad, or it parsed but describes an inconsistent artifact. Hostile
/// input always lands here — never in a panic.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The binary container was malformed (truncation, corruption, bad
    /// magic/version/section framing, invalid graph payload).
    Format(BinaryError),
    /// The container parsed, but its sections contradict each other
    /// (counts disagree, translation table out of range, spanner edges
    /// absent from the parent, …).
    Inconsistent {
        /// What was being cross-checked.
        context: &'static str,
        /// The contradiction found.
        detail: String,
    },
}

/// Stable error codes [`ArtifactError`] adds on top of the
/// [`BinaryError`] taxonomy
/// ([`BINARY_ERROR_CODES`](spanner_graph::io::binary::BINARY_ERROR_CODES)).
/// The full decode-path code set is the union of the two; the snapshot
/// test in `tests/error_taxonomy.rs` pins it.
pub const ARTIFACT_ERROR_CODES: &[&str] = &["artifact/cross-section"];

impl ArtifactError {
    /// A stable, machine-readable error code (part of the public error
    /// taxonomy: codes never change meaning; new variants get new
    /// codes). Match on codes, not on variants, when forward
    /// compatibility matters — the enum is `#[non_exhaustive]`.
    ///
    /// [`ArtifactError::Format`] routes straight through
    /// [`BinaryError::code`] so the container-level taxonomy has one
    /// source of truth; the only code added at this layer is
    /// `artifact/cross-section` for sections that parse individually
    /// but contradict each other.
    pub fn code(&self) -> &'static str {
        match self {
            ArtifactError::Format(e) => e.code(),
            ArtifactError::Inconsistent { .. } => "artifact/cross-section",
        }
    }

    /// The operator-facing remediation hint for this error's code (one
    /// source of truth with the container layer:
    /// [`binary::remediation_for_code`]).
    pub fn remediation(&self) -> &'static str {
        binary::remediation_for_code(self.code())
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Format(e) => write!(f, "invalid artifact container: {e}"),
            ArtifactError::Inconsistent { context, detail } => {
                write!(f, "inconsistent artifact ({context}): {detail}")
            }
        }
    }
}

impl Error for ArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArtifactError::Format(e) => Some(e),
            ArtifactError::Inconsistent { .. } => None,
        }
    }
}

impl From<BinaryError> for ArtifactError {
    fn from(e: BinaryError) -> Self {
        ArtifactError::Format(e)
    }
}

/// Shorthand for building [`ArtifactError::Inconsistent`].
fn inconsistent(context: &'static str, detail: String) -> ArtifactError {
    ArtifactError::Inconsistent { context, detail }
}

/// Sentinel in the parent→spanner edge map for "not kept".
const NOT_KEPT: u32 = u32::MAX;

/// An immutable, shareable spanner artifact (see the module docs).
///
/// # Examples
///
/// ```
/// use spanner_core::FtGreedy;
/// use spanner_graph::generators::complete;
/// use std::sync::Arc;
///
/// let g = complete(8);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let frozen = Arc::new(ft.freeze(&g));
/// assert_eq!(frozen.stretch(), 3);
/// assert_eq!(frozen.budget(), Some(1));
/// assert_eq!(frozen.witnesses().len(), frozen.edge_count());
/// ```
#[derive(Clone, Debug)]
pub struct FrozenSpanner {
    csr: FrozenCsr,
    parent: Option<Arc<Graph>>,
    parent_edges: Vec<EdgeId>,
    /// Inverse of `parent_edges`, indexed by parent edge id (`NOT_KEPT`
    /// where the parent edge did not survive into the spanner).
    spanner_of_parent: Vec<u32>,
    stretch: u64,
    budget: Option<usize>,
    model: FaultModel,
    witnesses: Vec<FaultSet>,
}

impl FrozenSpanner {
    /// Seals a bare spanner (no parent handle, no budget metadata, no
    /// witnesses); the artifact [`Spanner::freeze`](crate::Spanner::freeze)
    /// builds.
    pub fn from_spanner(spanner: &Spanner) -> Self {
        FrozenSpanner::assemble(spanner, None, None, FaultModel::Vertex, Vec::new())
    }

    /// Seals a spanner together with its construction metadata; the
    /// artifact [`FtSpanner::freeze`](crate::FtSpanner::freeze) builds.
    pub(crate) fn assemble(
        spanner: &Spanner,
        parent: Option<Arc<Graph>>,
        budget: Option<usize>,
        model: FaultModel,
        witnesses: Vec<FaultSet>,
    ) -> Self {
        let parent_edges = spanner.parent_edge_ids().to_vec();
        let spanner_of_parent =
            inverse_translation(parent.as_ref().map(|p| p.edge_count()), &parent_edges);
        FrozenSpanner {
            csr: FrozenCsr::from_view(spanner.graph()),
            parent,
            parent_edges,
            spanner_of_parent,
            stretch: spanner.stretch(),
            budget,
            model,
            witnesses,
        }
    }

    /// The packed adjacency queries run over.
    pub fn csr(&self) -> &FrozenCsr {
        &self.csr
    }

    /// Number of vertices (same ids as the parent graph).
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Number of spanner edges.
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// The stretch target the spanner was built for.
    pub fn stretch(&self) -> u64 {
        self.stretch
    }

    /// The fault budget the spanner was built for (`None` when frozen
    /// from a bare [`Spanner`], which records none).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// The fault model of the construction (meaningful when
    /// [`FrozenSpanner::budget`] is set).
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The parent graph handle, when the artifact carries one.
    pub fn parent(&self) -> Option<&Arc<Graph>> {
        self.parent.as_ref()
    }

    /// The recorded witness fault sets, indexed by spanner edge id
    /// (empty when frozen from a bare spanner).
    pub fn witnesses(&self) -> &[FaultSet] {
        &self.witnesses
    }

    /// Parent edge id of a spanner edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn parent_edge(&self, edge: EdgeId) -> EdgeId {
        self.parent_edges[edge.index()]
    }

    /// All kept parent edge ids, in spanner edge-id order.
    pub fn parent_edge_ids(&self) -> &[EdgeId] {
        &self.parent_edges
    }

    /// The spanner copy of a parent edge, if it was kept (O(1), unlike
    /// the linear scan a construction-time
    /// [`Spanner`] would need).
    pub fn spanner_edge_of_parent(&self, parent_edge: EdgeId) -> Option<EdgeId> {
        match self.spanner_of_parent.get(parent_edge.index()) {
            Some(&own) if own != NOT_KEPT => Some(EdgeId::new(own as usize)),
            _ => None,
        }
    }

    /// Applies a fault set expressed in *parent* ids into a mask over
    /// the spanner: vertex faults carry over unchanged, edge faults hit
    /// the spanner copies of those parent edges (absent copies are
    /// no-ops). The mask is the caller's reusable epoch scratch; this
    /// method only adds faults, it never clears.
    pub fn apply_faults(&self, faults: &FaultSet, mask: &mut FaultMask) {
        for v in faults.vertex_faults() {
            mask.fault_vertex(*v);
        }
        for e in faults.edge_faults() {
            if let Some(own) = self.spanner_edge_of_parent(*e) {
                mask.fault_edge(own);
            }
        }
    }
}

/// Builds the parent→spanner inverse of a `parent_edges` table: one slot
/// per parent edge id (the parent's edge count when the handle is
/// available, otherwise just enough to cover the referenced ids),
/// `NOT_KEPT` where the parent edge did not survive. Shared by
/// [`FrozenSpanner::assemble`] and [`FrozenSpanner::decode`] so the two
/// construction paths cannot drift.
fn inverse_translation(parent_edge_count: Option<usize>, parent_edges: &[EdgeId]) -> Vec<u32> {
    let slots = parent_edge_count.unwrap_or(0).max(
        parent_edges
            .iter()
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0),
    );
    let mut spanner_of_parent = vec![NOT_KEPT; slots];
    for (own, parent_id) in parent_edges.iter().enumerate() {
        spanner_of_parent[parent_id.index()] = own as u32;
    }
    spanner_of_parent
}

impl FrozenSpanner {
    /// Serializes the artifact into the versioned `VFTSPANR` binary
    /// container (spec: `docs/ARTIFACT_FORMAT.md`). The encoding is
    /// canonical — the same artifact always yields the same bytes — and
    /// self-contained: [`FrozenSpanner::decode`] rebuilds an artifact
    /// that serves bit-identically, in any process, with no access to
    /// the construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use spanner_core::{FrozenSpanner, FtGreedy};
    /// use spanner_graph::generators::complete;
    ///
    /// let g = complete(8);
    /// let frozen = FtGreedy::new(&g, 3).faults(1).run().freeze(&g);
    /// let bytes = frozen.encode();
    /// let back = FrozenSpanner::decode(&bytes)?;
    /// assert_eq!(back.encode(), bytes); // canonical roundtrip
    /// # Ok::<(), spanner_core::frozen::ArtifactError>(())
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = Vec::with_capacity(35);
        put_u64(&mut meta, self.stretch);
        meta.push(match self.model {
            FaultModel::Vertex => 0,
            FaultModel::Edge => 1,
        });
        meta.push(self.budget.is_some() as u8);
        put_u64(&mut meta, self.budget.unwrap_or(0) as u64);
        put_u64(&mut meta, self.node_count() as u64);
        put_u64(&mut meta, self.edge_count() as u64);

        let mut spanner = Vec::new();
        binary::write_view_payload(&self.csr, &mut spanner);

        // Both translation directions travel in the bytes. The inverse
        // is derivable from the forward table, but *storing* it is what
        // keeps decode's allocations bounded by the input: its length is
        // then guarded against the bytes actually present, where a
        // re-derived table would be sized by an attacker-controlled
        // maximum id (a crafted 100-byte file claiming parent edge
        // 0xfffffffe must not conjure a 16 GiB allocation).
        let mut parent_edges =
            Vec::with_capacity(16 + 4 * (self.parent_edges.len() + self.spanner_of_parent.len()));
        put_u64(&mut parent_edges, self.parent_edges.len() as u64);
        for id in &self.parent_edges {
            put_u32(&mut parent_edges, id.raw());
        }
        put_u64(&mut parent_edges, self.spanner_of_parent.len() as u64);
        for own in &self.spanner_of_parent {
            put_u32(&mut parent_edges, *own);
        }

        let mut witnesses = Vec::new();
        put_u64(&mut witnesses, self.witnesses.len() as u64);
        for set in &self.witnesses {
            witnesses.push(match set.model() {
                FaultModel::Vertex => 0,
                FaultModel::Edge => 1,
            });
            let (vs, es) = (set.vertex_faults(), set.edge_faults());
            put_u64(&mut witnesses, set.len() as u64);
            for v in vs {
                put_u32(&mut witnesses, v.raw());
            }
            for e in es {
                put_u32(&mut witnesses, e.raw());
            }
        }

        let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
        w.section(SECTION_META, &meta)
            .section(SECTION_SPANNER, &spanner)
            .section(SECTION_PARENT_EDGES, &parent_edges)
            .section(SECTION_WITNESSES, &witnesses);
        if let Some(parent) = &self.parent {
            let mut payload = Vec::new();
            binary::write_view_payload(parent.as_ref(), &mut payload);
            w.section(SECTION_PARENT, &payload);
        }
        w.finish()
    }

    /// Deserializes an artifact previously produced by
    /// [`FrozenSpanner::encode`], revalidating every invariant the
    /// serving layer relies on (translation tables in range, witness map
    /// sized to the edge set, spanner edges present in the parent with
    /// identical endpoints and weights).
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] on any defect — truncation, corruption, an
    /// unknown version or section, or internally contradictory sections.
    /// No input, however hostile, can cause a panic.
    pub fn decode(bytes: &[u8]) -> Result<FrozenSpanner, ArtifactError> {
        let container = binary::parse_container(bytes, ARTIFACT_MAGIC, ARTIFACT_VERSION)?;
        for section in &container.sections {
            if !matches!(
                section.tag,
                SECTION_META
                    | SECTION_SPANNER
                    | SECTION_PARENT_EDGES
                    | SECTION_WITNESSES
                    | SECTION_PARENT
            ) {
                return Err(BinaryError::UnknownSection { tag: section.tag }.into());
            }
        }
        let require = |tag: u32, name: &'static str| {
            container
                .section(tag)
                .ok_or(BinaryError::MissingSection { name })
        };

        // META: the declared shape everything else is checked against.
        let mut r = ByteReader::new(require(SECTION_META, "meta")?);
        let stretch = r.u64("stretch")?;
        let model = match r.u8("fault model")? {
            0 => FaultModel::Vertex,
            1 => FaultModel::Edge,
            other => {
                return Err(BinaryError::Malformed {
                    context: "fault model",
                    detail: format!("unknown tag {other}"),
                }
                .into())
            }
        };
        let has_budget = match r.u8("budget flag")? {
            0 => false,
            1 => true,
            other => {
                return Err(BinaryError::Malformed {
                    context: "budget flag",
                    detail: format!("expected 0 or 1, found {other}"),
                }
                .into())
            }
        };
        let budget_raw = r.u64("budget")?;
        if !has_budget && budget_raw != 0 {
            return Err(BinaryError::Malformed {
                context: "budget",
                detail: format!("flag says absent but value is {budget_raw}"),
            }
            .into());
        }
        let budget = has_budget.then_some(budget_raw as usize);
        let node_count = r.u64("node count")? as usize;
        let edge_count = r.u64("edge count")? as usize;
        r.expect_drained("meta")?;

        // SPANNER: the packed adjacency, cross-checked against META.
        let mut r = ByteReader::new(require(SECTION_SPANNER, "spanner adjacency")?);
        let csr = binary::read_frozen_csr_payload(&mut r)?;
        r.expect_drained("spanner adjacency")?;
        if csr.node_count() != node_count || csr.edge_count() != edge_count {
            return Err(inconsistent(
                "spanner shape",
                format!(
                    "meta declares {node_count} nodes / {edge_count} edges, adjacency holds {} / {}",
                    csr.node_count(),
                    csr.edge_count()
                ),
            ));
        }

        // PARENT (optional): full simple-graph invariants re-enforced.
        let parent = match container.section(SECTION_PARENT) {
            None => None,
            Some(payload) => {
                let mut r = ByteReader::new(payload);
                let graph = binary::read_graph_payload(&mut r)?;
                r.expect_drained("parent graph")?;
                if graph.node_count() != node_count {
                    return Err(inconsistent(
                        "parent shape",
                        format!(
                            "parent has {} nodes, spanner has {node_count}",
                            graph.node_count()
                        ),
                    ));
                }
                Some(Arc::new(graph))
            }
        };

        // PARENT_EDGES: both translation directions. The stored inverse
        // is read first under the bytes-present allocation guard
        // (`ByteReader::count`), then proven equal to what the freezing
        // path would have derived — never re-derived from the forward
        // ids, whose attacker-controlled maximum would otherwise size
        // the table (and the allocation) unboundedly.
        let mut r = ByteReader::new(require(SECTION_PARENT_EDGES, "parent-edge table")?);
        let count = r.count(4, "parent-edge count")?;
        if count != edge_count {
            return Err(inconsistent(
                "parent-edge table",
                format!("{count} entries for {edge_count} spanner edges"),
            ));
        }
        let mut parent_edges = Vec::with_capacity(count);
        for _ in 0..count {
            parent_edges.push(EdgeId::from(r.u32("parent edge id")?));
        }
        let slots = r.count(4, "parent-edge slot count")?;
        let mut spanner_of_parent = Vec::with_capacity(slots);
        for _ in 0..slots {
            spanner_of_parent.push(r.u32("parent-edge slot")?);
        }
        r.expect_drained("parent-edge table")?;
        if let Some(&widest) = parent_edges.iter().max() {
            if widest.index() >= slots {
                return Err(inconsistent(
                    "parent-edge table",
                    format!(
                        "forward table references parent edge {widest} outside the {slots}-slot inverse"
                    ),
                ));
            }
        }
        let expected = inverse_translation(parent.as_ref().map(|p| p.edge_count()), &parent_edges);
        if expected != spanner_of_parent {
            return Err(inconsistent(
                "parent-edge table",
                format!(
                    "stored inverse ({} slots) disagrees with the forward table (expect {} slots)",
                    spanner_of_parent.len(),
                    expected.len()
                ),
            ));
        }
        // Injectivity: two spanner edges claiming the same parent edge
        // would let `apply_faults` mask only one copy of a failed link,
        // serving routes over the other. The inverse keeps one entry per
        // distinct parent id, so a simple census detects collisions.
        let kept = spanner_of_parent.iter().filter(|&&s| s != NOT_KEPT).count();
        if kept != edge_count {
            return Err(inconsistent(
                "parent-edge table",
                format!(
                    "forward table is not injective: {edge_count} spanner edges share {kept} parent edges"
                ),
            ));
        }
        if let Some(parent) = &parent {
            for (own, parent_id) in parent_edges.iter().enumerate() {
                if parent_id.index() >= parent.edge_count() {
                    return Err(inconsistent(
                        "parent-edge table",
                        format!(
                            "spanner edge {own} maps to parent edge {parent_id} but the parent has {} edges",
                            parent.edge_count()
                        ),
                    ));
                }
                let own_id = EdgeId::new(own);
                let e = parent.edge(*parent_id);
                if csr.edge_endpoints(own_id) != e.endpoints()
                    || csr.edge_weight(own_id) != e.weight()
                {
                    return Err(inconsistent(
                        "parent-edge table",
                        format!("spanner edge {own} disagrees with parent edge {parent_id}"),
                    ));
                }
            }
        }

        // WITNESSES: indexed by spanner edge id; ids validated against
        // the id spaces they reference (vertex ids over the shared
        // vertex set, edge ids over the partial spanner, matching
        // `FtSpanner::witnesses`).
        let mut r = ByteReader::new(require(SECTION_WITNESSES, "witness map")?);
        let count = r.count(9, "witness count")?;
        if count != 0 && count != edge_count {
            return Err(inconsistent(
                "witness map",
                format!("{count} witness sets for {edge_count} spanner edges"),
            ));
        }
        let mut witnesses = Vec::with_capacity(count);
        for i in 0..count {
            let model_tag = r.u8("witness model")?;
            let len = r.count(4, "witness length")?;
            let mut ids = Vec::with_capacity(len);
            for _ in 0..len {
                ids.push(r.u32("witness component id")? as usize);
            }
            let bound = match model_tag {
                0 => node_count,
                1 => edge_count,
                other => {
                    return Err(BinaryError::Malformed {
                        context: "witness model",
                        detail: format!("unknown tag {other}"),
                    }
                    .into())
                }
            };
            if let Some(&bad) = ids.iter().find(|&&id| id >= bound) {
                return Err(inconsistent(
                    "witness map",
                    format!("witness {i} references component {bad}, id space is {bound}"),
                ));
            }
            // The format stores witness ids normalized (sorted ascending,
            // deduplicated). The FaultSet constructors would silently
            // renormalize a crafted record — and then the artifact would
            // no longer re-encode to the bytes that were accepted, so
            // reject denormalized input here with a typed error instead.
            if ids.windows(2).any(|w| w[0] >= w[1]) {
                return Err(inconsistent(
                    "witness map",
                    format!("witness {i} ids are not sorted and deduplicated"),
                ));
            }
            witnesses.push(if model_tag == 0 {
                FaultSet::vertices(ids.into_iter().map(NodeId::new))
            } else {
                FaultSet::edges(ids.into_iter().map(EdgeId::new))
            });
        }
        r.expect_drained("witness map")?;

        Ok(FrozenSpanner {
            csr,
            parent,
            parent_edges,
            spanner_of_parent,
            stretch,
            budget,
            model,
            witnesses,
        })
    }
}

/// Compile-time proof of the serving contract: one artifact, any number
/// of threads.
#[allow(dead_code)]
fn frozen_spanner_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<FrozenSpanner>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, cycle};
    use spanner_graph::NodeId;

    #[test]
    fn freeze_preserves_structure_and_metadata() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let frozen = ft.freeze(&g);
        assert_eq!(frozen.node_count(), 10);
        assert_eq!(frozen.edge_count(), ft.spanner().edge_count());
        assert_eq!(frozen.stretch(), 3);
        assert_eq!(frozen.budget(), Some(1));
        assert_eq!(frozen.model(), FaultModel::Vertex);
        assert_eq!(frozen.witnesses(), ft.witnesses());
        assert_eq!(frozen.parent_edge_ids(), ft.spanner().parent_edge_ids());
        assert_eq!(frozen.parent().unwrap().edge_count(), g.edge_count());
    }

    #[test]
    fn bare_freeze_has_no_metadata() {
        let g = cycle(6);
        let s = Spanner::from_parent_edges(&g, g.edge_ids(), 3);
        let frozen = s.freeze();
        assert_eq!(frozen.budget(), None);
        assert!(frozen.parent().is_none());
        assert!(frozen.witnesses().is_empty());
        assert_eq!(frozen.edge_count(), 6);
    }

    #[test]
    fn parent_edge_translation_round_trips() {
        let g = cycle(4);
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(1), EdgeId::new(3)], 3);
        let frozen = s.freeze();
        assert_eq!(
            frozen.spanner_edge_of_parent(EdgeId::new(1)),
            Some(EdgeId::new(0))
        );
        assert_eq!(
            frozen.spanner_edge_of_parent(EdgeId::new(3)),
            Some(EdgeId::new(1))
        );
        assert_eq!(frozen.spanner_edge_of_parent(EdgeId::new(0)), None);
        assert_eq!(frozen.spanner_edge_of_parent(EdgeId::new(99)), None);
        assert_eq!(frozen.parent_edge(EdgeId::new(1)), EdgeId::new(3));
    }

    #[test]
    fn codec_round_trips_full_artifact() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let frozen = ft.freeze(&g);
        let bytes = frozen.encode();
        let back = FrozenSpanner::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes, "re-encoding must be byte-identical");
        assert_eq!(back.node_count(), frozen.node_count());
        assert_eq!(back.edge_count(), frozen.edge_count());
        assert_eq!(back.stretch(), frozen.stretch());
        assert_eq!(back.budget(), frozen.budget());
        assert_eq!(back.model(), frozen.model());
        assert_eq!(back.witnesses(), frozen.witnesses());
        assert_eq!(back.parent_edge_ids(), frozen.parent_edge_ids());
        assert_eq!(back.spanner_of_parent, frozen.spanner_of_parent);
        let p = back.parent().unwrap();
        assert_eq!(p.edge_count(), g.edge_count());
        for (id, e) in g.edges() {
            assert_eq!(p.endpoints(id), e.endpoints());
            assert_eq!(p.weight(id), e.weight());
        }
    }

    #[test]
    fn codec_round_trips_bare_artifact() {
        let g = cycle(6);
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(1), EdgeId::new(4)], 5);
        let frozen = s.freeze();
        let bytes = frozen.encode();
        let back = FrozenSpanner::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.budget(), None);
        assert!(back.parent().is_none());
        assert!(back.witnesses().is_empty());
        assert_eq!(
            back.spanner_edge_of_parent(EdgeId::new(4)),
            Some(EdgeId::new(1))
        );
        assert_eq!(back.spanner_edge_of_parent(EdgeId::new(0)), None);
    }

    #[test]
    fn decode_rejects_truncation_and_corruption_everywhere() {
        let g = complete(7);
        let bytes = FtGreedy::new(&g, 3).faults(1).run().freeze(&g).encode();
        for len in 0..bytes.len() {
            assert!(
                FrozenSpanner::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
        for i in (0..bytes.len()).step_by(3) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x2a;
            assert!(
                FrozenSpanner::decode(&corrupt).is_err(),
                "flipping byte {i} must be detected"
            );
        }
    }

    #[test]
    fn decode_rejects_cross_section_contradictions() {
        use spanner_graph::io::binary::{put_u32, put_u64, write_view_payload, ContainerWriter};
        let g = cycle(5);
        let frozen = Spanner::from_parent_edges(&g, g.edge_ids(), 3).freeze();
        // Rebuild the container by hand with a parent-edge table that is
        // one entry short: the count cross-check must catch it.
        let mut meta = Vec::new();
        put_u64(&mut meta, frozen.stretch());
        meta.push(0); // vertex model
        meta.push(0); // no budget
        put_u64(&mut meta, 0);
        put_u64(&mut meta, frozen.node_count() as u64);
        put_u64(&mut meta, frozen.edge_count() as u64);
        let mut spanner = Vec::new();
        write_view_payload(frozen.csr(), &mut spanner);
        let mut short_table = Vec::new();
        put_u64(&mut short_table, (frozen.edge_count() - 1) as u64);
        for id in frozen.parent_edge_ids().iter().skip(1) {
            put_u32(&mut short_table, id.raw());
        }
        let mut witnesses = Vec::new();
        put_u64(&mut witnesses, 0);
        let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
        w.section(SECTION_META, &meta)
            .section(SECTION_SPANNER, &spanner)
            .section(SECTION_PARENT_EDGES, &short_table)
            .section(SECTION_WITNESSES, &witnesses);
        let err = FrozenSpanner::decode(&w.finish()).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Inconsistent { .. }),
            "want Inconsistent, got {err}"
        );
        assert!(err.to_string().contains("parent-edge table"), "{err}");
    }

    #[test]
    fn huge_parent_edge_ids_cannot_force_allocations() {
        use spanner_graph::io::binary::{put_u32, put_u64, write_view_payload, ContainerWriter};
        // A crafted *bare* artifact (no parent section) whose one
        // spanner edge claims parent edge id 0xfffffffe. The inverse
        // table that id implies would be ~16 GiB; decode must reject the
        // file from its stored (bytes-bounded) sections instead of ever
        // sizing an allocation from the id.
        let g = cycle(3);
        let frozen = Spanner::from_parent_edges(&g, [EdgeId::new(0)], 3).freeze();
        let mut meta = Vec::new();
        put_u64(&mut meta, 3);
        meta.push(0);
        meta.push(0);
        put_u64(&mut meta, 0);
        put_u64(&mut meta, frozen.node_count() as u64);
        put_u64(&mut meta, 1);
        let mut spanner = Vec::new();
        write_view_payload(frozen.csr(), &mut spanner);
        let mut witnesses = Vec::new();
        put_u64(&mut witnesses, 0);
        // Case A: the inverse claims u64::MAX slots — the bytes-present
        // guard rejects the count before any allocation.
        // Case B: the inverse is tiny — the forward id falls outside it.
        for inverse_slots in [u64::MAX, 1] {
            let mut table = Vec::new();
            put_u64(&mut table, 1);
            put_u32(&mut table, 0xffff_fffe);
            put_u64(&mut table, inverse_slots);
            if inverse_slots == 1 {
                put_u32(&mut table, 0);
            }
            let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
            w.section(SECTION_META, &meta)
                .section(SECTION_SPANNER, &spanner)
                .section(SECTION_PARENT_EDGES, &table)
                .section(SECTION_WITNESSES, &witnesses);
            let err = FrozenSpanner::decode(&w.finish()).unwrap_err();
            assert!(
                err.to_string().contains("parent-edge"),
                "slots={inverse_slots}: {err}"
            );
        }
    }

    #[test]
    fn noninjective_forward_table_rejected() {
        use spanner_graph::io::binary::{put_u32, put_u64, ContainerWriter};
        // Two spanner copies of the same physical link, both mapped to
        // parent edge 2: epoching {e2} would mask only one copy, so the
        // decoder must refuse the artifact outright.
        let mut meta = Vec::new();
        put_u64(&mut meta, 3);
        meta.push(0);
        meta.push(0);
        put_u64(&mut meta, 0);
        put_u64(&mut meta, 3); // nodes
        put_u64(&mut meta, 2); // edges
        let mut spanner = Vec::new();
        put_u64(&mut spanner, 3);
        put_u64(&mut spanner, 2);
        for _ in 0..2 {
            put_u32(&mut spanner, 0);
            put_u32(&mut spanner, 1);
            put_u64(&mut spanner, 1);
        }
        let mut table = Vec::new();
        put_u64(&mut table, 2);
        put_u32(&mut table, 2);
        put_u32(&mut table, 2);
        put_u64(&mut table, 3); // slots 0..=2
        put_u32(&mut table, NOT_KEPT);
        put_u32(&mut table, NOT_KEPT);
        put_u32(&mut table, 1); // later claimant wins, as derivation does
        let mut witnesses = Vec::new();
        put_u64(&mut witnesses, 0);
        let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
        w.section(SECTION_META, &meta)
            .section(SECTION_SPANNER, &spanner)
            .section(SECTION_PARENT_EDGES, &table)
            .section(SECTION_WITNESSES, &witnesses);
        let err = FrozenSpanner::decode(&w.finish()).unwrap_err();
        assert!(err.to_string().contains("not injective"), "{err}");
    }

    #[test]
    fn denormalized_witness_ids_rejected() {
        use spanner_graph::io::binary::{put_u32, put_u64, write_view_payload, ContainerWriter};
        // Witness ids arrive unsorted: FaultSet would silently
        // renormalize them, breaking re-encode byte identity — so decode
        // must reject them with a typed error instead.
        let g = cycle(4);
        let frozen = Spanner::from_parent_edges(&g, [EdgeId::new(0)], 3).freeze();
        let mut meta = Vec::new();
        put_u64(&mut meta, 3);
        meta.push(0);
        meta.push(0);
        put_u64(&mut meta, 0);
        put_u64(&mut meta, frozen.node_count() as u64);
        put_u64(&mut meta, 1);
        let mut spanner = Vec::new();
        write_view_payload(frozen.csr(), &mut spanner);
        let mut table = Vec::new();
        put_u64(&mut table, 1);
        put_u32(&mut table, 0);
        put_u64(&mut table, 1);
        put_u32(&mut table, 0);
        for bad_ids in [[3u32, 1], [2, 2]] {
            let mut witnesses = Vec::new();
            put_u64(&mut witnesses, 1);
            witnesses.push(0); // vertex model
            put_u64(&mut witnesses, 2);
            for id in bad_ids {
                put_u32(&mut witnesses, id);
            }
            let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
            w.section(SECTION_META, &meta)
                .section(SECTION_SPANNER, &spanner)
                .section(SECTION_PARENT_EDGES, &table)
                .section(SECTION_WITNESSES, &witnesses);
            let err = FrozenSpanner::decode(&w.finish()).unwrap_err();
            assert!(
                err.to_string().contains("sorted and deduplicated"),
                "{bad_ids:?}: {err}"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_version_and_section() {
        let g = cycle(4);
        let frozen = Spanner::from_parent_edges(&g, g.edge_ids(), 3).freeze();
        let bytes = frozen.encode();
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = future.len() - 8;
        let sum = spanner_graph::io::binary::fnv1a64(&future[..body_len]).to_le_bytes();
        future[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            FrozenSpanner::decode(&future),
            Err(ArtifactError::Format(
                spanner_graph::io::binary::BinaryError::UnsupportedVersion { found: 99, .. }
            ))
        ));
    }

    #[test]
    fn apply_faults_matches_spanner_fault_mask() {
        let g = cycle(5);
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(0), EdgeId::new(2), EdgeId::new(4)], 3);
        let frozen = s.freeze();
        for faults in [
            FaultSet::vertices([NodeId::new(2), NodeId::new(4)]),
            FaultSet::edges([EdgeId::new(0), EdgeId::new(1), EdgeId::new(4)]),
            FaultSet::empty(FaultModel::Vertex),
        ] {
            let reference = s.fault_mask(&faults);
            let mut mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
            frozen.apply_faults(&faults, &mut mask);
            assert_eq!(mask, reference, "faults {faults:?}");
        }
    }
}
