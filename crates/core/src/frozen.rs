//! The frozen spanner artifact: the construction's output, sealed for
//! serving.
//!
//! A [`Spanner`] is a *construction-time* object: it
//! grows edge by edge and keeps an incremental CSR view so the fault
//! oracle can query it mid-build. Once the construction finishes, the
//! consumer-facing problem inverts — the spanner never changes again,
//! but it is read by every query of every epoch, possibly from many
//! threads at once. [`FrozenSpanner`] is the artifact for that phase:
//!
//! * the adjacency is finalized into a cache-packed, immutable
//!   [`FrozenCsr`] (one contiguous record per neighbor slot);
//! * the bookkeeping a serving layer needs travels with it — the
//!   spanner-edge → parent-edge map *and* its precomputed inverse (so
//!   translating a parent-id fault set costs O(|F|), not O(|E(H)|) as
//!   [`Spanner::fault_mask`](crate::Spanner::fault_mask) pays), the
//!   stretch target, and optionally the parent graph handle, the fault
//!   budget/model it was built for, and the recorded witness fault sets;
//! * the whole structure is immutable and `Send + Sync`: share one
//!   artifact across any number of
//!   [`EpochServer`](crate::serve::EpochServer) sessions via `Arc` and
//!   serve from every core at once.
//!
//! Freeze from either layer: [`Spanner::freeze`](crate::Spanner::freeze)
//! seals the subgraph alone; [`FtSpanner::freeze`](crate::FtSpanner::freeze)
//! additionally records the parent handle, budget, model and witnesses
//! (the metadata adversarial replay and stretch audits feed on).
//!
//! # Persistence: build once, serve many
//!
//! The expensive half of the Bodwin–Patel story is *construction* (every
//! kept edge pays an exact fault-oracle decision); serving is cheap.
//! [`FrozenSpanner::encode`] therefore turns the artifact into a
//! versioned binary document (the `VFTSPANR` container of
//! [`spanner_graph::io::binary`]; byte-level spec in
//! `docs/ARTIFACT_FORMAT.md`) and [`FrozenSpanner::decode`] loads it
//! back — in another process, on another machine — without re-running
//! FT-greedy. Everything a serving replica needs travels in the bytes:
//! the packed adjacency, stretch/budget/model metadata, the witness
//! map, both parent↔spanner edge translation tables (the inverse stored
//! rather than re-derived, so decode's allocations stay bounded by the
//! input — and revalidated element-wise against the forward table), and
//! optionally the parent graph itself.
//!
//! The codec's contract, pinned by `tests/artifact_props.rs`:
//!
//! * `decode(encode(a))` re-encodes **byte-identically** and serves
//!   every epoch'd query batch **bit-identically** to `a`;
//! * truncated, corrupt, or crafted input returns a typed
//!   [`ArtifactError`] — decoding never panics;
//! * unknown format versions and unknown sections are rejected with
//!   typed errors, never misread (the compatibility policy).
//!
//! The `spanner-artifact` harness binary wraps the codec for the shell
//! (`build` / `inspect` / `serve`), and CI round-trips an artifact
//! through a fresh process on every push.

use crate::Spanner;
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::bytes::{read_u32_at, read_u64_at, SharedBytes};
use spanner_graph::io::binary::{self, put_u32, put_u64, BinaryError, ByteReader, ContainerWriter};
use spanner_graph::{EdgeId, FaultMask, FrozenCsr, Graph, GraphView, NodeId};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Magic bytes of a persisted [`FrozenSpanner`] container.
pub const ARTIFACT_MAGIC: [u8; 8] = *b"VFTSPANR";

/// The v1 container format: tag/length section framing, eager decode.
/// This is what freeze paths write by default; [`FrozenSpanner::decode`]
/// accepts it forever.
pub const ARTIFACT_VERSION: u32 = 1;

/// The v2 container format: alignment-padded sections behind a 64-bit
/// section table, readable **in place** via [`FrozenSpanner::open`].
/// Produced by [`FrozenSpanner::to_v2`] / `spanner-artifact migrate`.
pub const ARTIFACT_VERSION_V2: u32 = 2;

/// v2 header flag: the artifact is routing-only — the witness section
/// was detached at build time and witness accessors return
/// [`ArtifactError::WitnessesDetached`].
pub const FLAG_WITNESSES_DETACHED: u32 = 1;

/// v2 header flag: the witness map is stored *sharded* — every record is
/// zero-padded to an 8-byte boundary and a [`SECTION_WITNESS_INDEX`]
/// section carries per-edge offsets into it, so
/// [`FrozenSpanner::witnesses_for`] decodes only the bytes of the edge
/// it was asked about. Produced by [`FrozenSpanner::to_v2_sharded`] /
/// `spanner-artifact migrate --shard`.
pub const FLAG_WITNESSES_SHARDED: u32 = 2;

/// Construction metadata: stretch, model, budget, counts.
pub const SECTION_META: u32 = 1;
/// The spanner adjacency (graph payload, edge ids = spanner edge ids).
pub const SECTION_SPANNER: u32 = 2;
/// Spanner-edge → parent-edge id map, in spanner edge-id order.
pub const SECTION_PARENT_EDGES: u32 = 3;
/// Recorded witness fault sets, indexed by spanner edge id.
pub const SECTION_WITNESSES: u32 = 4;
/// The parent graph (graph payload), present iff the artifact carries
/// the handle.
pub const SECTION_PARENT: u32 = 5;
/// Per-edge offset index over [`SECTION_WITNESSES`]: `count` then
/// `count + 1` monotone 8-aligned `u64` offsets bracketing each witness
/// record. Present iff [`FLAG_WITNESSES_SHARDED`] is set.
pub const SECTION_WITNESS_INDEX: u32 = 6;

/// Errors from [`FrozenSpanner::decode`] / [`FrozenSpanner::open`]:
/// either the container itself is bad, it parsed but describes an
/// inconsistent artifact, or an accessor asked for data the artifact was
/// deliberately built without. Hostile input always lands here — never
/// in a panic.
///
/// `Clone` so lazily-decoded sections can memoize a failure and return
/// it verbatim on every subsequent access.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The binary container was malformed (truncation, corruption, bad
    /// magic/version/section framing, invalid graph payload).
    Format(BinaryError),
    /// The container parsed, but its sections contradict each other
    /// (counts disagree, translation table out of range, spanner edges
    /// absent from the parent, …).
    Inconsistent {
        /// What was being cross-checked.
        context: &'static str,
        /// The contradiction found.
        detail: String,
    },
    /// The artifact is a routing-only replica: its witness section was
    /// detached at build time ([`FLAG_WITNESSES_DETACHED`]), so witness
    /// queries cannot be served from it.
    WitnessesDetached,
}

/// Stable error codes [`ArtifactError`] adds on top of the
/// [`BinaryError`] taxonomy
/// ([`BINARY_ERROR_CODES`](spanner_graph::io::binary::BINARY_ERROR_CODES)).
/// The full decode-path code set is the union of the two; the snapshot
/// test in `tests/error_taxonomy.rs` pins it.
pub const ARTIFACT_ERROR_CODES: &[&str] =
    &["artifact/cross-section", "artifact/witnesses-detached"];

impl ArtifactError {
    /// A stable, machine-readable error code (part of the public error
    /// taxonomy: codes never change meaning; new variants get new
    /// codes). Match on codes, not on variants, when forward
    /// compatibility matters — the enum is `#[non_exhaustive]`.
    ///
    /// [`ArtifactError::Format`] routes straight through
    /// [`BinaryError::code`] so the container-level taxonomy has one
    /// source of truth; the only code added at this layer is
    /// `artifact/cross-section` for sections that parse individually
    /// but contradict each other.
    pub fn code(&self) -> &'static str {
        match self {
            ArtifactError::Format(e) => e.code(),
            ArtifactError::Inconsistent { .. } => "artifact/cross-section",
            ArtifactError::WitnessesDetached => "artifact/witnesses-detached",
        }
    }

    /// The operator-facing remediation hint for this error's code (one
    /// source of truth with the container layer:
    /// [`binary::remediation_for_code`]).
    pub fn remediation(&self) -> &'static str {
        binary::remediation_for_code(self.code())
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Format(e) => write!(f, "invalid artifact container: {e}"),
            ArtifactError::Inconsistent { context, detail } => {
                write!(f, "inconsistent artifact ({context}): {detail}")
            }
            ArtifactError::WitnessesDetached => {
                write!(f, "witnesses are detached from this routing-only artifact")
            }
        }
    }
}

impl Error for ArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArtifactError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BinaryError> for ArtifactError {
    fn from(e: BinaryError) -> Self {
        ArtifactError::Format(e)
    }
}

/// Shorthand for building [`ArtifactError::Inconsistent`].
fn inconsistent(context: &'static str, detail: String) -> ArtifactError {
    ArtifactError::Inconsistent { context, detail }
}

/// Sentinel in the parent→spanner edge map for "not kept".
const NOT_KEPT: u32 = u32::MAX;

/// The spanner↔parent edge translation tables: owned `Vec`s (freeze and
/// v1 decode) or in-place reads over a shared v2 buffer (the open path).
/// Both store the forward table (spanner edge → parent edge id) and the
/// precomputed inverse, in the same canonical byte format.
#[derive(Clone, Debug)]
enum TranslationTables {
    Owned {
        parent_edges: Vec<EdgeId>,
        spanner_of_parent: Vec<u32>,
    },
    Bytes {
        bytes: SharedBytes,
        /// Absolute section range inside `bytes` (raw re-encode).
        at: usize,
        len: usize,
        fwd_count: usize,
        inv_count: usize,
    },
}

impl TranslationTables {
    fn fwd_len(&self) -> usize {
        match self {
            TranslationTables::Owned { parent_edges, .. } => parent_edges.len(),
            TranslationTables::Bytes { fwd_count, .. } => *fwd_count,
        }
    }

    /// Parent edge id of spanner edge `i`. Panics if `i` is out of range.
    fn fwd(&self, i: usize) -> EdgeId {
        match self {
            TranslationTables::Owned { parent_edges, .. } => parent_edges[i],
            TranslationTables::Bytes {
                bytes,
                at,
                fwd_count,
                ..
            } => {
                assert!(i < *fwd_count, "spanner edge out of range");
                EdgeId::from(read_u32_at(bytes.as_slice(), at + 8 + 4 * i))
            }
        }
    }

    fn inv_len(&self) -> usize {
        match self {
            TranslationTables::Owned {
                spanner_of_parent, ..
            } => spanner_of_parent.len(),
            TranslationTables::Bytes { inv_count, .. } => *inv_count,
        }
    }

    /// Inverse slot of parent edge `s` (`NOT_KEPT` when not kept).
    /// Panics if `s` is out of range.
    fn inv(&self, s: usize) -> u32 {
        match self {
            TranslationTables::Owned {
                spanner_of_parent, ..
            } => spanner_of_parent[s],
            TranslationTables::Bytes {
                bytes,
                at,
                fwd_count,
                inv_count,
                ..
            } => {
                assert!(s < *inv_count, "parent edge slot out of range");
                read_u32_at(bytes.as_slice(), at + 16 + 4 * fwd_count + 4 * s)
            }
        }
    }

    /// The canonical `PARENT_EDGES` section payload.
    fn payload(&self) -> Vec<u8> {
        match self {
            TranslationTables::Owned {
                parent_edges,
                spanner_of_parent,
            } => {
                let mut out =
                    Vec::with_capacity(16 + 4 * (parent_edges.len() + spanner_of_parent.len()));
                put_u64(&mut out, parent_edges.len() as u64);
                for id in parent_edges {
                    put_u32(&mut out, id.raw());
                }
                put_u64(&mut out, spanner_of_parent.len() as u64);
                for own in spanner_of_parent {
                    put_u32(&mut out, *own);
                }
                out
            }
            TranslationTables::Bytes { bytes, at, len, .. } => {
                bytes.as_slice()[*at..*at + *len].to_vec()
            }
        }
    }
}

/// Where the parent graph lives: absent, decoded (freeze / v1 decode),
/// or raw v2 section bytes decoded lazily on first use and memoized —
/// clones share the memo cell, so one decode serves every handle.
#[derive(Clone, Debug)]
enum ParentStore {
    None,
    Eager(Arc<Graph>),
    Lazy {
        bytes: SharedBytes,
        at: usize,
        len: usize,
        cell: Arc<OnceLock<Result<Arc<Graph>, ArtifactError>>>,
    },
}

/// Where the witness map lives: decoded, raw v2 section bytes decoded
/// lazily on first use (memoized, shared across clones), raw *sharded*
/// v2 bytes behind a per-edge offset index (single records decoded on
/// demand, the full map only when [`FrozenSpanner::witnesses`] forces
/// it), or detached at build time (routing-only replica).
///
/// The `touched` counters meter witness-section bytes actually read —
/// the instrumentation `witnessbench` and the sharded-access tests
/// assert on. Shared across clones like the memo cells.
#[derive(Clone, Debug)]
enum WitnessStore {
    Eager(Vec<FaultSet>),
    Lazy {
        bytes: SharedBytes,
        at: usize,
        len: usize,
        cell: Arc<OnceLock<Result<Vec<FaultSet>, ArtifactError>>>,
        touched: Arc<AtomicU64>,
    },
    Sharded {
        bytes: SharedBytes,
        /// Witness section range inside `bytes`.
        at: usize,
        len: usize,
        /// Witness-index section range inside `bytes`.
        idx_at: usize,
        idx_len: usize,
        /// Record count (validated against the payload header at decode).
        count: usize,
        cell: Arc<OnceLock<Result<Vec<FaultSet>, ArtifactError>>>,
        touched: Arc<AtomicU64>,
    },
    Detached,
}

/// An immutable, shareable spanner artifact (see the module docs).
///
/// # Examples
///
/// ```
/// use spanner_core::FtGreedy;
/// use spanner_graph::generators::complete;
/// use std::sync::Arc;
///
/// let g = complete(8);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let frozen = Arc::new(ft.freeze(&g));
/// assert_eq!(frozen.stretch(), 3);
/// assert_eq!(frozen.budget(), Some(1));
/// assert_eq!(frozen.witnesses().unwrap().len(), frozen.edge_count());
/// ```
#[derive(Clone, Debug)]
pub struct FrozenSpanner {
    csr: FrozenCsr,
    parent: ParentStore,
    tables: TranslationTables,
    stretch: u64,
    budget: Option<usize>,
    model: FaultModel,
    witnesses: WitnessStore,
    /// The container version this artifact round-trips through:
    /// [`FrozenSpanner::encode`] re-emits the version the artifact was
    /// decoded from (or built as), so canonical re-encode holds for both
    /// formats.
    version: u32,
    /// Whether [`FrozenSpanner::encode`] writes the witness map sharded
    /// ([`FLAG_WITNESSES_SHARDED`] + [`SECTION_WITNESS_INDEX`]). Carried
    /// separately from the store so an eagerly-held map (the
    /// [`FrozenSpanner::to_v2_sharded`] path) still encodes sharded.
    sharded: bool,
}

impl FrozenSpanner {
    /// Seals a bare spanner (no parent handle, no budget metadata, no
    /// witnesses); the artifact [`Spanner::freeze`](crate::Spanner::freeze)
    /// builds.
    pub fn from_spanner(spanner: &Spanner) -> Self {
        FrozenSpanner::assemble(spanner, None, None, FaultModel::Vertex, Vec::new())
    }

    /// Seals a spanner together with its construction metadata; the
    /// artifact [`FtSpanner::freeze`](crate::FtSpanner::freeze) builds.
    pub(crate) fn assemble(
        spanner: &Spanner,
        parent: Option<Arc<Graph>>,
        budget: Option<usize>,
        model: FaultModel,
        witnesses: Vec<FaultSet>,
    ) -> Self {
        let parent_edges = spanner.parent_edge_ids().to_vec();
        let spanner_of_parent =
            inverse_translation(parent.as_ref().map(|p| p.edge_count()), &parent_edges);
        FrozenSpanner {
            csr: FrozenCsr::from_view(spanner.graph()),
            parent: parent.map_or(ParentStore::None, ParentStore::Eager),
            tables: TranslationTables::Owned {
                parent_edges,
                spanner_of_parent,
            },
            stretch: spanner.stretch(),
            budget,
            model,
            witnesses: WitnessStore::Eager(witnesses),
            version: ARTIFACT_VERSION,
            sharded: false,
        }
    }

    /// The packed adjacency queries run over.
    pub fn csr(&self) -> &FrozenCsr {
        &self.csr
    }

    /// Number of vertices (same ids as the parent graph).
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Number of spanner edges.
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// The stretch target the spanner was built for.
    pub fn stretch(&self) -> u64 {
        self.stretch
    }

    /// The fault budget the spanner was built for (`None` when frozen
    /// from a bare [`Spanner`], which records none).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// The fault model of the construction (meaningful when
    /// [`FrozenSpanner::budget`] is set).
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The container version this artifact round-trips through
    /// ([`ARTIFACT_VERSION`] or [`ARTIFACT_VERSION_V2`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether this artifact serves its packed tables in place from a
    /// shared buffer (the [`FrozenSpanner::open`] path).
    pub fn is_in_place(&self) -> bool {
        self.csr.is_in_place()
    }

    /// Whether the witness section was detached at build time
    /// (routing-only replica).
    pub fn witnesses_detached(&self) -> bool {
        matches!(self.witnesses, WitnessStore::Detached)
    }

    /// Whether the witness map travels sharded: per-record 8-aligned
    /// padding plus a [`SECTION_WITNESS_INDEX`] offset index, so
    /// [`FrozenSpanner::witnesses_for`] touches only the queried edge's
    /// bytes.
    pub fn witnesses_sharded(&self) -> bool {
        self.sharded
    }

    /// Witness-section bytes this artifact has actually read so far:
    /// index entries plus record extents for sharded per-edge access,
    /// the whole section once for a forced monolithic decode. Always 0
    /// for eagerly-decoded or detached stores — the meter exists for the
    /// lazy serving paths, where "how many bytes did that lookup fault
    /// in" is the quantity `witnessbench` gates.
    pub fn witness_bytes_touched(&self) -> u64 {
        match &self.witnesses {
            WitnessStore::Lazy { touched, .. } | WitnessStore::Sharded { touched, .. } => {
                touched.load(Ordering::Relaxed)
            }
            _ => 0,
        }
    }

    /// The parent graph handle, when the artifact carries one.
    ///
    /// On an artifact loaded via [`FrozenSpanner::open`] the parent
    /// section is decoded (and fully cross-checked against the spanner)
    /// on first use, then memoized — including a memoized failure.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] when the lazily-decoded parent section is
    /// corrupt or contradicts the spanner sections. Artifacts built in
    /// process or decoded eagerly never fail here.
    pub fn parent(&self) -> Result<Option<&Arc<Graph>>, ArtifactError> {
        match &self.parent {
            ParentStore::None => Ok(None),
            ParentStore::Eager(g) => Ok(Some(g)),
            ParentStore::Lazy {
                bytes,
                at,
                len,
                cell,
            } => {
                let res = cell.get_or_init(|| {
                    let payload = &bytes.as_slice()[*at..*at + *len];
                    let parent = parse_parent_payload(payload)?;
                    self.check_parent_consistency(&parent)?;
                    Ok(Arc::new(parent))
                });
                match res {
                    Ok(g) => Ok(Some(g)),
                    Err(e) => Err(e.clone()),
                }
            }
        }
    }

    /// The recorded witness fault sets, indexed by spanner edge id
    /// (empty when frozen from a bare spanner).
    ///
    /// On an artifact loaded via [`FrozenSpanner::open`] the witness
    /// section is decoded on first use, then memoized.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::WitnessesDetached`] on a routing-only replica;
    /// otherwise an [`ArtifactError`] when the lazily-decoded witness
    /// section is corrupt.
    pub fn witnesses(&self) -> Result<&[FaultSet], ArtifactError> {
        match &self.witnesses {
            WitnessStore::Eager(w) => Ok(w),
            WitnessStore::Detached => Err(ArtifactError::WitnessesDetached),
            WitnessStore::Lazy {
                bytes,
                at,
                len,
                cell,
                touched,
            } => {
                let res = cell.get_or_init(|| {
                    touched.fetch_add(*len as u64, Ordering::Relaxed);
                    let payload = &bytes.as_slice()[*at..*at + *len];
                    parse_witness_payload(payload, self.node_count(), self.edge_count())
                });
                match res {
                    Ok(w) => Ok(w),
                    Err(e) => Err(e.clone()),
                }
            }
            WitnessStore::Sharded {
                bytes,
                at,
                len,
                idx_at,
                idx_len,
                cell,
                touched,
                ..
            } => {
                let res = cell.get_or_init(|| {
                    touched.fetch_add((*len + *idx_len) as u64, Ordering::Relaxed);
                    let data = bytes.as_slice();
                    parse_sharded_witness_payload(
                        &data[*at..*at + *len],
                        &data[*idx_at..*idx_at + *idx_len],
                        self.node_count(),
                        self.edge_count(),
                    )
                });
                match res {
                    Ok(w) => Ok(w),
                    Err(e) => Err(e.clone()),
                }
            }
        }
    }

    /// The witness fault set of one spanner edge.
    ///
    /// On a sharded artifact ([`FrozenSpanner::witnesses_sharded`]) this
    /// is the page-granular path: two index entries locate edge `e`'s
    /// record and only that record's bytes are read and decoded —
    /// O(|F_e|) per call, no up-front scan, nothing memoized. Every
    /// other store answers from the full map (forcing the one-shot
    /// monolithic decode on a lazy store). An artifact carrying no
    /// witness map (frozen from a bare [`Spanner`]) answers with an
    /// empty set in the artifact's fault model.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::WitnessesDetached`] on a routing-only replica;
    /// otherwise an [`ArtifactError`] when the lazily-read record (or,
    /// for monolithic stores, section) is corrupt.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn witnesses_for(&self, edge: EdgeId) -> Result<FaultSet, ArtifactError> {
        let i = edge.index();
        assert!(i < self.edge_count(), "spanner edge out of range");
        match &self.witnesses {
            WitnessStore::Detached => Err(ArtifactError::WitnessesDetached),
            WitnessStore::Eager(sets) => Ok(sets
                .get(i)
                .cloned()
                .unwrap_or_else(|| FaultSet::empty(self.model))),
            WitnessStore::Lazy { .. } => {
                let sets = self.witnesses()?;
                Ok(sets
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| FaultSet::empty(self.model)))
            }
            WitnessStore::Sharded {
                bytes,
                at,
                idx_at,
                count,
                touched,
                ..
            } => {
                if *count == 0 {
                    return Ok(FaultSet::empty(self.model));
                }
                // The offset index was validated at decode/open time
                // (monotone, 8-aligned, bracketed by the payload), so
                // these two reads and the record slice are in bounds.
                let data = bytes.as_slice();
                let start = read_u64_at(data, idx_at + 8 + 8 * i) as usize;
                let next = read_u64_at(data, idx_at + 8 + 8 * (i + 1)) as usize;
                touched.fetch_add(16 + (next - start) as u64, Ordering::Relaxed);
                parse_sharded_witness_record(
                    &data[*at + start..*at + next],
                    i,
                    self.node_count(),
                    self.edge_count(),
                )
            }
        }
    }

    /// Parent edge id of a spanner edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn parent_edge(&self, edge: EdgeId) -> EdgeId {
        self.tables.fwd(edge.index())
    }

    /// All kept parent edge ids, in spanner edge-id order.
    pub fn parent_edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.tables.fwd_len()).map(move |i| self.tables.fwd(i))
    }

    /// The spanner copy of a parent edge, if it was kept (O(1), unlike
    /// the linear scan a construction-time
    /// [`Spanner`] would need).
    pub fn spanner_edge_of_parent(&self, parent_edge: EdgeId) -> Option<EdgeId> {
        let s = parent_edge.index();
        if s >= self.tables.inv_len() {
            return None;
        }
        match self.tables.inv(s) {
            NOT_KEPT => None,
            own => Some(EdgeId::new(own as usize)),
        }
    }

    /// Applies a fault set expressed in *parent* ids into a mask over
    /// the spanner: vertex faults carry over unchanged, edge faults hit
    /// the spanner copies of those parent edges (absent copies are
    /// no-ops). The mask is the caller's reusable epoch scratch; this
    /// method only adds faults, it never clears.
    pub fn apply_faults(&self, faults: &FaultSet, mask: &mut FaultMask) {
        for v in faults.vertex_faults() {
            mask.fault_vertex(*v);
        }
        for e in faults.edge_faults() {
            if let Some(own) = self.spanner_edge_of_parent(*e) {
                mask.fault_edge(own);
            }
        }
    }
}

/// Builds the parent→spanner inverse of a `parent_edges` table: one slot
/// per parent edge id (the parent's edge count when the handle is
/// available, otherwise just enough to cover the referenced ids),
/// `NOT_KEPT` where the parent edge did not survive. Shared by
/// [`FrozenSpanner::assemble`] and [`FrozenSpanner::decode`] so the two
/// construction paths cannot drift.
fn inverse_translation(parent_edge_count: Option<usize>, parent_edges: &[EdgeId]) -> Vec<u32> {
    let slots = parent_edge_count.unwrap_or(0).max(
        parent_edges
            .iter()
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0),
    );
    let mut spanner_of_parent = vec![NOT_KEPT; slots];
    for (own, parent_id) in parent_edges.iter().enumerate() {
        spanner_of_parent[parent_id.index()] = own as u32;
    }
    spanner_of_parent
}

/// The fields of a parsed `META` section.
struct MetaFields {
    stretch: u64,
    model: FaultModel,
    budget: Option<usize>,
    node_count: usize,
    edge_count: usize,
}

/// Parses the 35-byte `META` payload (identical in v1 and v2).
fn parse_meta_payload(payload: &[u8]) -> Result<MetaFields, ArtifactError> {
    let mut r = ByteReader::new(payload);
    let stretch = r.u64("stretch")?;
    let model = match r.u8("fault model")? {
        0 => FaultModel::Vertex,
        1 => FaultModel::Edge,
        other => {
            return Err(BinaryError::Malformed {
                context: "fault model",
                detail: format!("unknown tag {other}"),
            }
            .into())
        }
    };
    let has_budget = match r.u8("budget flag")? {
        0 => false,
        1 => true,
        other => {
            return Err(BinaryError::Malformed {
                context: "budget flag",
                detail: format!("expected 0 or 1, found {other}"),
            }
            .into())
        }
    };
    let budget_raw = r.u64("budget")?;
    if !has_budget && budget_raw != 0 {
        return Err(BinaryError::Malformed {
            context: "budget",
            detail: format!("flag says absent but value is {budget_raw}"),
        }
        .into());
    }
    let budget = has_budget.then_some(budget_raw as usize);
    let node_count = r.u64("node count")? as usize;
    let edge_count = r.u64("edge count")? as usize;
    r.expect_drained("meta")?;
    Ok(MetaFields {
        stretch,
        model,
        budget,
        node_count,
        edge_count,
    })
}

/// Serializes the `WITNESSES` section payload (identical in v1 and v2).
fn witness_payload(sets: &[FaultSet]) -> Vec<u8> {
    let mut witnesses = Vec::new();
    put_u64(&mut witnesses, sets.len() as u64);
    for set in sets {
        witnesses.push(match set.model() {
            FaultModel::Vertex => 0,
            FaultModel::Edge => 1,
        });
        let (vs, es) = (set.vertex_faults(), set.edge_faults());
        put_u64(&mut witnesses, set.len() as u64);
        for v in vs {
            put_u32(&mut witnesses, v.raw());
        }
        for e in es {
            put_u32(&mut witnesses, e.raw());
        }
    }
    witnesses
}

/// Parses and validates one witness record (model tag, length, ids)
/// from `r`: ids in range for their model's id space, stored normalized
/// (sorted, deduplicated) so accept implies canonical re-encode. The
/// record body is byte-identical between the monolithic and sharded
/// layouts; only the framing around it differs.
fn parse_witness_record(
    r: &mut ByteReader<'_>,
    i: usize,
    node_count: usize,
    edge_count: usize,
) -> Result<FaultSet, ArtifactError> {
    let model_tag = r.u8("witness model")?;
    let len = r.count(4, "witness length")?;
    let mut ids = Vec::with_capacity(len);
    for _ in 0..len {
        ids.push(r.u32("witness component id")? as usize);
    }
    let bound = match model_tag {
        0 => node_count,
        1 => edge_count,
        other => {
            return Err(BinaryError::Malformed {
                context: "witness model",
                detail: format!("unknown tag {other}"),
            }
            .into())
        }
    };
    if let Some(&bad) = ids.iter().find(|&&id| id >= bound) {
        return Err(inconsistent(
            "witness map",
            format!("witness {i} references component {bad}, id space is {bound}"),
        ));
    }
    // The format stores witness ids normalized (sorted ascending,
    // deduplicated). The FaultSet constructors would silently
    // renormalize a crafted record — and then the artifact would
    // no longer re-encode to the bytes that were accepted, so
    // reject denormalized input here with a typed error instead.
    if ids.windows(2).any(|w| w[0] >= w[1]) {
        return Err(inconsistent(
            "witness map",
            format!("witness {i} ids are not sorted and deduplicated"),
        ));
    }
    Ok(if model_tag == 0 {
        FaultSet::vertices(ids.into_iter().map(NodeId::new))
    } else {
        FaultSet::edges(ids.into_iter().map(EdgeId::new))
    })
}

/// Parses and validates a `WITNESSES` payload (monolithic layout:
/// records packed back to back, no padding). Shared by v1 decode and
/// the v2 lazy store.
fn parse_witness_payload(
    payload: &[u8],
    node_count: usize,
    edge_count: usize,
) -> Result<Vec<FaultSet>, ArtifactError> {
    let mut r = ByteReader::new(payload);
    let count = r.count(9, "witness count")?;
    if count != 0 && count != edge_count {
        return Err(inconsistent(
            "witness map",
            format!("{count} witness sets for {edge_count} spanner edges"),
        ));
    }
    let mut witnesses = Vec::with_capacity(count);
    for i in 0..count {
        witnesses.push(parse_witness_record(&mut r, i, node_count, edge_count)?);
    }
    r.expect_drained("witness map")?;
    Ok(witnesses)
}

/// Parses and validates one *sharded* witness record: the record body
/// followed by zero padding up to the 8-byte boundary the offset index
/// promised. The indexed extent must be exactly the canonical padded
/// length — a record that under- or over-fills its slice means the
/// index and payload disagree, which is the sharded layout's own
/// failure class ([`BinaryError::WitnessIndex`]).
fn parse_sharded_witness_record(
    rec: &[u8],
    i: usize,
    node_count: usize,
    edge_count: usize,
) -> Result<FaultSet, ArtifactError> {
    let mut r = ByteReader::new(rec);
    let set = parse_witness_record(&mut r, i, node_count, edge_count)?;
    let body = 9 + 4 * set.len();
    let padded = body.next_multiple_of(binary::V2_SECTION_ALIGN);
    if rec.len() != padded {
        return Err(BinaryError::WitnessIndex {
            context: "witness record",
            detail: format!(
                "record {i} is indexed as {} bytes, its body pads to {padded}",
                rec.len()
            ),
        }
        .into());
    }
    if rec[body..].iter().any(|&b| b != 0) {
        return Err(BinaryError::WitnessIndex {
            context: "witness record",
            detail: format!("record {i} carries nonzero padding"),
        }
        .into());
    }
    Ok(set)
}

/// Parses and validates a full sharded `WITNESSES` payload against its
/// offset index: every record must start exactly where the index says,
/// fill its indexed extent, and pass the shared per-record checks. This
/// is the force-everything path ([`FrozenSpanner::witnesses`] on a
/// sharded store, which the eager [`FrozenSpanner::decode`] uses to
/// validate the whole file); per-edge serving goes through
/// [`parse_sharded_witness_record`] directly.
fn parse_sharded_witness_payload(
    payload: &[u8],
    idx_payload: &[u8],
    node_count: usize,
    edge_count: usize,
) -> Result<Vec<FaultSet>, ArtifactError> {
    let count = binary::parse_offset_index(idx_payload, 8, payload.len() as u64)?;
    let declared = read_u64_at(payload, 0) as usize;
    if declared != count {
        return Err(BinaryError::WitnessIndex {
            context: "witness index",
            detail: format!("index holds {count} records, witness map declares {declared}"),
        }
        .into());
    }
    if count != 0 && count != edge_count {
        return Err(inconsistent(
            "witness map",
            format!("{count} witness sets for {edge_count} spanner edges"),
        ));
    }
    let offset_at = |i: usize| read_u64_at(idx_payload, 8 + 8 * i) as usize;
    let mut witnesses = Vec::with_capacity(count);
    for i in 0..count {
        witnesses.push(parse_sharded_witness_record(
            &payload[offset_at(i)..offset_at(i + 1)],
            i,
            node_count,
            edge_count,
        )?);
    }
    Ok(witnesses)
}

/// Serializes the sharded `WITNESSES` payload and its offset index:
/// every record zero-padded to the next 8-byte boundary (so each starts
/// aligned and the final offset closes the section aligned), offsets
/// collected as the records are laid down. Returns
/// `(witness_payload, index_payload)`.
fn witness_payload_sharded(sets: &[FaultSet]) -> (Vec<u8>, Vec<u8>) {
    let mut payload = Vec::new();
    put_u64(&mut payload, sets.len() as u64);
    let mut offsets = Vec::with_capacity(sets.len() + 1);
    for set in sets {
        offsets.push(payload.len() as u64);
        payload.push(match set.model() {
            FaultModel::Vertex => 0,
            FaultModel::Edge => 1,
        });
        put_u64(&mut payload, set.len() as u64);
        for v in set.vertex_faults() {
            put_u32(&mut payload, v.raw());
        }
        for e in set.edge_faults() {
            put_u32(&mut payload, e.raw());
        }
        payload.resize(payload.len().next_multiple_of(binary::V2_SECTION_ALIGN), 0);
    }
    offsets.push(payload.len() as u64);
    (payload, binary::write_offset_index(&offsets))
}

/// Parses a `PARENT` payload into a [`Graph`] (full simple-graph
/// invariants re-enforced). Cross-checks against the spanner happen in
/// `FrozenSpanner::check_parent_consistency` / the v1 decode body.
fn parse_parent_payload(payload: &[u8]) -> Result<Graph, ArtifactError> {
    let mut r = ByteReader::new(payload);
    let graph = binary::read_graph_payload(&mut r)?;
    r.expect_drained("parent graph")?;
    Ok(graph)
}

/// Validates a v2 `PARENT_EDGES` section **in place** and returns a
/// borrowed table view. O(fwd + inv) scans, no allocation sized by the
/// input. The checks pin the stored inverse to exactly the inverse
/// function of the forward table (back-pointer agreement + a kept-slot
/// census that also proves the forward table injective), and — when no
/// parent travels with the artifact — the canonical slot count
/// `max(fwd) + 1`; with a parent, the slot count is checked against the
/// parent's edge count when the parent is decoded.
fn validate_tables_v2(
    bytes: &SharedBytes,
    at: usize,
    len: usize,
    edge_count: usize,
    parent_present: bool,
) -> Result<TranslationTables, ArtifactError> {
    let data = bytes.as_slice();
    if len < 16 {
        return Err(BinaryError::Truncated {
            context: "parent-edge table",
        }
        .into());
    }
    let fwd_count_raw = read_u64_at(data, at);
    if fwd_count_raw != edge_count as u64 {
        return Err(inconsistent(
            "parent-edge table",
            format!("{fwd_count_raw} entries for {edge_count} spanner edges"),
        ));
    }
    let fwd_count = edge_count;
    let inv_header = 8 + 4 * fwd_count;
    let Some(inv_bytes) = len.checked_sub(inv_header + 8) else {
        return Err(BinaryError::Truncated {
            context: "parent-edge table",
        }
        .into());
    };
    let inv_count_raw = read_u64_at(data, at + inv_header);
    if inv_bytes % 4 != 0 || inv_count_raw != (inv_bytes / 4) as u64 {
        return Err(BinaryError::Malformed {
            context: "parent-edge table",
            detail: format!(
                "{inv_count_raw} inverse slots declared, {inv_bytes} payload bytes present"
            ),
        }
        .into());
    }
    let inv_count = inv_count_raw as usize;
    let fwd = |i: usize| read_u32_at(data, at + 8 + 4 * i) as usize;
    let inv = |s: usize| read_u32_at(data, at + inv_header + 8 + 4 * s);
    let mut max_fwd_plus1 = 0usize;
    for own in 0..fwd_count {
        let pid = fwd(own);
        if pid >= inv_count {
            return Err(inconsistent(
                "parent-edge table",
                format!("forward table references parent edge {pid} outside the {inv_count}-slot inverse"),
            ));
        }
        max_fwd_plus1 = max_fwd_plus1.max(pid + 1);
    }
    let mut kept = 0usize;
    for s in 0..inv_count {
        let own = inv(s);
        if own == NOT_KEPT {
            continue;
        }
        kept += 1;
        if own as usize >= fwd_count || fwd(own as usize) != s {
            return Err(inconsistent(
                "parent-edge table",
                format!("stored inverse disagrees with the forward table at slot {s}"),
            ));
        }
    }
    // kept == edge_count, with every kept slot pointing at a distinct
    // forward entry that points back, makes slot↔entry a bijection:
    // the stored inverse IS the inverse function, and the forward table
    // is injective (two spanner copies of one parent edge would let
    // `apply_faults` mask only one of them).
    if kept != edge_count {
        return Err(inconsistent(
            "parent-edge table",
            format!(
                "forward table is not injective: {edge_count} spanner edges share {kept} parent edges"
            ),
        ));
    }
    if !parent_present && inv_count != max_fwd_plus1 {
        return Err(inconsistent(
            "parent-edge table",
            format!("inverse has {inv_count} slots, canonical is {max_fwd_plus1}"),
        ));
    }
    Ok(TranslationTables::Bytes {
        bytes: bytes.clone(),
        at,
        len,
        fwd_count,
        inv_count,
    })
}

impl FrozenSpanner {
    /// Serializes the artifact into the versioned `VFTSPANR` binary
    /// container (spec: `docs/ARTIFACT_FORMAT.md`). The encoding is
    /// canonical — the same artifact always yields the same bytes — and
    /// self-contained: [`FrozenSpanner::decode`] rebuilds an artifact
    /// that serves bit-identically, in any process, with no access to
    /// the construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use spanner_core::{FrozenSpanner, FtGreedy};
    /// use spanner_graph::generators::complete;
    ///
    /// let g = complete(8);
    /// let frozen = FtGreedy::new(&g, 3).faults(1).run().freeze(&g);
    /// let bytes = frozen.encode();
    /// let back = FrozenSpanner::decode(&bytes)?;
    /// assert_eq!(back.encode(), bytes); // canonical roundtrip
    /// # Ok::<(), spanner_core::frozen::ArtifactError>(())
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        match self.version {
            ARTIFACT_VERSION_V2 => self.encode_v2(),
            _ => self.encode_v1(),
        }
    }

    /// The 35-byte `META` section payload (shared by both versions).
    fn meta_payload(&self) -> Vec<u8> {
        let mut meta = Vec::with_capacity(35);
        put_u64(&mut meta, self.stretch);
        meta.push(match self.model {
            FaultModel::Vertex => 0,
            FaultModel::Edge => 1,
        });
        meta.push(self.budget.is_some() as u8);
        put_u64(&mut meta, self.budget.unwrap_or(0) as u64);
        put_u64(&mut meta, self.node_count() as u64);
        put_u64(&mut meta, self.edge_count() as u64);
        meta
    }

    fn encode_v1(&self) -> Vec<u8> {
        let mut spanner = Vec::new();
        binary::write_view_payload(&self.csr, &mut spanner);

        // Both translation directions travel in the bytes. The inverse
        // is derivable from the forward table, but *storing* it is what
        // keeps decode's allocations bounded by the input: its length is
        // then guarded against the bytes actually present, where a
        // re-derived table would be sized by an attacker-controlled
        // maximum id (a crafted 100-byte file claiming parent edge
        // 0xfffffffe must not conjure a 16 GiB allocation).
        let parent_edges = self.tables.payload();

        let sets = match &self.witnesses {
            WitnessStore::Eager(sets) => sets,
            // v1 artifacts are always eagerly decoded; lazy or detached
            // stores only arise behind `version == 2`.
            _ => unreachable!("v1 artifacts hold eager witness stores"),
        };
        let witnesses = witness_payload(sets);

        let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
        w.section(SECTION_META, &self.meta_payload())
            .section(SECTION_SPANNER, &spanner)
            .section(SECTION_PARENT_EDGES, &parent_edges)
            .section(SECTION_WITNESSES, &witnesses);
        if let ParentStore::Eager(parent) = &self.parent {
            let mut payload = Vec::new();
            binary::write_view_payload(parent.as_ref(), &mut payload);
            w.section(SECTION_PARENT, &payload);
        }
        w.finish()
    }

    fn encode_v2(&self) -> Vec<u8> {
        let mut flags = if self.witnesses_detached() {
            FLAG_WITNESSES_DETACHED
        } else {
            0
        };
        if self.sharded {
            flags |= FLAG_WITNESSES_SHARDED;
        }
        let mut w = binary::ContainerWriterV2::new(ARTIFACT_MAGIC, ARTIFACT_VERSION_V2, flags);
        w.section(SECTION_META, self.meta_payload());
        let mut spanner = Vec::with_capacity(self.csr.payload_v2_len());
        self.csr.write_payload_v2(&mut spanner);
        w.section(SECTION_SPANNER, spanner);
        w.section(SECTION_PARENT_EDGES, self.tables.payload());
        // The witness index (tag 6) sorts after the parent section (tag
        // 5) in the canonical ascending-tag order, so it is held back
        // here and emitted last.
        let mut witness_index: Option<Vec<u8>> = None;
        match &self.witnesses {
            WitnessStore::Eager(sets) => {
                if self.sharded {
                    let (payload, idx) = witness_payload_sharded(sets);
                    w.section(SECTION_WITNESSES, payload);
                    witness_index = Some(idx);
                } else {
                    w.section(SECTION_WITNESSES, witness_payload(sets));
                }
            }
            // Lazily-held sections re-emit their raw (validated) bytes,
            // so re-encoding never forces a decode and stays canonical.
            WitnessStore::Lazy { bytes, at, len, .. } => {
                w.section(
                    SECTION_WITNESSES,
                    bytes.as_slice()[*at..*at + *len].to_vec(),
                );
            }
            WitnessStore::Sharded {
                bytes,
                at,
                len,
                idx_at,
                idx_len,
                ..
            } => {
                let data = bytes.as_slice();
                w.section(SECTION_WITNESSES, data[*at..*at + *len].to_vec());
                witness_index = Some(data[*idx_at..*idx_at + *idx_len].to_vec());
            }
            WitnessStore::Detached => {}
        }
        match &self.parent {
            ParentStore::None => {}
            ParentStore::Eager(parent) => {
                let mut payload = Vec::new();
                binary::write_view_payload(parent.as_ref(), &mut payload);
                w.section(SECTION_PARENT, payload);
            }
            ParentStore::Lazy { bytes, at, len, .. } => {
                w.section(SECTION_PARENT, bytes.as_slice()[*at..*at + *len].to_vec());
            }
        }
        if let Some(idx) = witness_index {
            w.section(SECTION_WITNESS_INDEX, idx);
        }
        w.finish()
    }

    /// Re-versions this artifact as a v2 (in-place layout) container:
    /// [`FrozenSpanner::encode`] then writes the alignment-padded v2
    /// format [`FrozenSpanner::open`] reads in place. Content is
    /// unchanged — this is the `spanner-artifact migrate` primitive, and
    /// it is byte-canonical: the same artifact always yields the same
    /// v2 bytes, and re-migrating a v2 artifact is the identity.
    ///
    /// Always produces the *monolithic* witness layout: on a sharded
    /// artifact this is the unshard direction, and
    /// `to_v2_sharded().to_v2()` round-trips to the original monolithic
    /// bytes (the migrate identity `artifact_props.rs` pins).
    ///
    /// # Panics
    ///
    /// Panics when unsharding an [`FrozenSpanner::open`]ed artifact
    /// whose (lazily-validated) witness records turn out corrupt —
    /// untrusted bytes should go through [`FrozenSpanner::decode`],
    /// which validates everything first.
    pub fn to_v2(&self) -> FrozenSpanner {
        let mut out = self.clone();
        if matches!(self.witnesses, WitnessStore::Sharded { .. }) {
            let sets = self
                .witnesses()
                .expect("sharded witness store failed validation")
                .to_vec();
            out.witnesses = WitnessStore::Eager(sets);
        }
        out.sharded = false;
        out.version = ARTIFACT_VERSION_V2;
        out
    }

    /// Re-versions this artifact as a v2 container with a **sharded**
    /// witness map: records padded to 8-byte boundaries, a
    /// [`SECTION_WITNESS_INDEX`] of per-edge offsets, and
    /// [`FLAG_WITNESSES_SHARDED`] in the header, so a mapped replica's
    /// [`FrozenSpanner::witnesses_for`] touches only the queried edge's
    /// bytes. Byte-canonical like [`FrozenSpanner::to_v2`], and the
    /// `spanner-artifact migrate --shard` primitive. A detached
    /// (routing-only) artifact has no witness map to shard and passes
    /// through unchanged.
    ///
    /// # Panics
    ///
    /// Panics when the witness map must be forced from a lazily-opened
    /// artifact whose witness section turns out corrupt — untrusted
    /// bytes should go through [`FrozenSpanner::decode`] first.
    pub fn to_v2_sharded(&self) -> FrozenSpanner {
        let mut out = self.clone();
        if self.witnesses_detached() {
            out.sharded = false;
        } else {
            let sets = self
                .witnesses()
                .expect("witness store failed validation")
                .to_vec();
            out.witnesses = WitnessStore::Eager(sets);
            out.sharded = true;
        }
        out.version = ARTIFACT_VERSION_V2;
        out
    }

    /// A routing-only copy of this artifact: the witness section (which
    /// dominates artifact size) is dropped, the v2 header carries
    /// [`FLAG_WITNESSES_DETACHED`], and [`FrozenSpanner::witnesses`]
    /// returns [`ArtifactError::WitnessesDetached`]. Always a v2
    /// artifact — v1 has no flag field to mark the absence.
    pub fn detach_witnesses(&self) -> FrozenSpanner {
        let mut out = self.clone();
        out.witnesses = WitnessStore::Detached;
        out.sharded = false;
        out.version = ARTIFACT_VERSION_V2;
        out
    }

    /// Deserializes an artifact previously produced by
    /// [`FrozenSpanner::encode`], revalidating every invariant the
    /// serving layer relies on (translation tables in range, witness map
    /// sized to the edge set, spanner edges present in the parent with
    /// identical endpoints and weights).
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] on any defect — truncation, corruption, an
    /// unknown version or section, or internally contradictory sections.
    /// No input, however hostile, can cause a panic.
    pub fn decode(bytes: &[u8]) -> Result<FrozenSpanner, ArtifactError> {
        // Dispatch on the declared version field; each branch then
        // re-validates the whole container (checksum first) for its
        // format, so a lying version field still fails closed.
        if bytes.len() >= 12 && bytes[8..12] == ARTIFACT_VERSION_V2.to_le_bytes() {
            Self::decode_v2(SharedBytes::copy_aligned(bytes), true)
        } else {
            Self::decode_v1(bytes)
        }
    }

    fn decode_v1(bytes: &[u8]) -> Result<FrozenSpanner, ArtifactError> {
        let container = binary::parse_container(bytes, ARTIFACT_MAGIC, ARTIFACT_VERSION)?;
        for section in &container.sections {
            if !matches!(
                section.tag,
                SECTION_META
                    | SECTION_SPANNER
                    | SECTION_PARENT_EDGES
                    | SECTION_WITNESSES
                    | SECTION_PARENT
            ) {
                return Err(BinaryError::UnknownSection { tag: section.tag }.into());
            }
        }
        let require = |tag: u32, name: &'static str| {
            container
                .section(tag)
                .ok_or(BinaryError::MissingSection { name })
        };

        // META: the declared shape everything else is checked against.
        let meta = parse_meta_payload(require(SECTION_META, "meta")?)?;
        let (stretch, model, budget) = (meta.stretch, meta.model, meta.budget);
        let (node_count, edge_count) = (meta.node_count, meta.edge_count);

        // SPANNER: the packed adjacency, cross-checked against META.
        let mut r = ByteReader::new(require(SECTION_SPANNER, "spanner adjacency")?);
        let csr = binary::read_frozen_csr_payload(&mut r)?;
        r.expect_drained("spanner adjacency")?;
        if csr.node_count() != node_count || csr.edge_count() != edge_count {
            return Err(inconsistent(
                "spanner shape",
                format!(
                    "meta declares {node_count} nodes / {edge_count} edges, adjacency holds {} / {}",
                    csr.node_count(),
                    csr.edge_count()
                ),
            ));
        }

        // PARENT (optional): full simple-graph invariants re-enforced.
        let parent = match container.section(SECTION_PARENT) {
            None => None,
            Some(payload) => {
                let mut r = ByteReader::new(payload);
                let graph = binary::read_graph_payload(&mut r)?;
                r.expect_drained("parent graph")?;
                if graph.node_count() != node_count {
                    return Err(inconsistent(
                        "parent shape",
                        format!(
                            "parent has {} nodes, spanner has {node_count}",
                            graph.node_count()
                        ),
                    ));
                }
                Some(Arc::new(graph))
            }
        };

        // PARENT_EDGES: both translation directions. The stored inverse
        // is read first under the bytes-present allocation guard
        // (`ByteReader::count`), then proven equal to what the freezing
        // path would have derived — never re-derived from the forward
        // ids, whose attacker-controlled maximum would otherwise size
        // the table (and the allocation) unboundedly.
        let mut r = ByteReader::new(require(SECTION_PARENT_EDGES, "parent-edge table")?);
        let count = r.count(4, "parent-edge count")?;
        if count != edge_count {
            return Err(inconsistent(
                "parent-edge table",
                format!("{count} entries for {edge_count} spanner edges"),
            ));
        }
        let mut parent_edges = Vec::with_capacity(count);
        for _ in 0..count {
            parent_edges.push(EdgeId::from(r.u32("parent edge id")?));
        }
        let slots = r.count(4, "parent-edge slot count")?;
        let mut spanner_of_parent = Vec::with_capacity(slots);
        for _ in 0..slots {
            spanner_of_parent.push(r.u32("parent-edge slot")?);
        }
        r.expect_drained("parent-edge table")?;
        if let Some(&widest) = parent_edges.iter().max() {
            if widest.index() >= slots {
                return Err(inconsistent(
                    "parent-edge table",
                    format!(
                        "forward table references parent edge {widest} outside the {slots}-slot inverse"
                    ),
                ));
            }
        }
        let expected = inverse_translation(parent.as_ref().map(|p| p.edge_count()), &parent_edges);
        if expected != spanner_of_parent {
            return Err(inconsistent(
                "parent-edge table",
                format!(
                    "stored inverse ({} slots) disagrees with the forward table (expect {} slots)",
                    spanner_of_parent.len(),
                    expected.len()
                ),
            ));
        }
        // Injectivity: two spanner edges claiming the same parent edge
        // would let `apply_faults` mask only one copy of a failed link,
        // serving routes over the other. The inverse keeps one entry per
        // distinct parent id, so a simple census detects collisions.
        let kept = spanner_of_parent.iter().filter(|&&s| s != NOT_KEPT).count();
        if kept != edge_count {
            return Err(inconsistent(
                "parent-edge table",
                format!(
                    "forward table is not injective: {edge_count} spanner edges share {kept} parent edges"
                ),
            ));
        }
        if let Some(parent) = &parent {
            for (own, parent_id) in parent_edges.iter().enumerate() {
                if parent_id.index() >= parent.edge_count() {
                    return Err(inconsistent(
                        "parent-edge table",
                        format!(
                            "spanner edge {own} maps to parent edge {parent_id} but the parent has {} edges",
                            parent.edge_count()
                        ),
                    ));
                }
                let own_id = EdgeId::new(own);
                let e = parent.edge(*parent_id);
                if csr.edge_endpoints(own_id) != e.endpoints()
                    || csr.edge_weight(own_id) != e.weight()
                {
                    return Err(inconsistent(
                        "parent-edge table",
                        format!("spanner edge {own} disagrees with parent edge {parent_id}"),
                    ));
                }
            }
        }

        // WITNESSES: indexed by spanner edge id; ids validated against
        // the id spaces they reference (vertex ids over the shared
        // vertex set, edge ids over the partial spanner, matching
        // `FtSpanner::witnesses`).
        let witnesses = parse_witness_payload(
            require(SECTION_WITNESSES, "witness map")?,
            node_count,
            edge_count,
        )?;

        Ok(FrozenSpanner {
            csr,
            parent: parent.map_or(ParentStore::None, ParentStore::Eager),
            tables: TranslationTables::Owned {
                parent_edges,
                spanner_of_parent,
            },
            stretch,
            budget,
            model,
            witnesses: WitnessStore::Eager(witnesses),
            version: ARTIFACT_VERSION,
            sharded: false,
        })
    }

    /// Parses a v2 container over `shared`. With `eager` set (the
    /// [`FrozenSpanner::decode`] path) the witness and parent sections
    /// are forced immediately, so the call validates the whole file;
    /// without it (the [`FrozenSpanner::open`] path) they stay raw bytes
    /// until first use and open cost is O(sections + tables scan), with
    /// no per-record materialization of the packed CSR.
    fn decode_v2(shared: SharedBytes, eager: bool) -> Result<FrozenSpanner, ArtifactError> {
        let container = binary::parse_container_v2(
            shared.as_slice(),
            ARTIFACT_MAGIC,
            ARTIFACT_VERSION_V2,
            FLAG_WITNESSES_DETACHED | FLAG_WITNESSES_SHARDED,
        )?;
        let detached = container.flags & FLAG_WITNESSES_DETACHED != 0;
        let sharded = container.flags & FLAG_WITNESSES_SHARDED != 0;
        if detached && sharded {
            return Err(BinaryError::Malformed {
                context: "header flags",
                detail: "witness map declared both detached and sharded".to_string(),
            }
            .into());
        }
        for section in &container.sections {
            match section.tag {
                SECTION_META | SECTION_SPANNER | SECTION_PARENT_EDGES | SECTION_PARENT => {}
                SECTION_WITNESSES if !detached => {}
                SECTION_WITNESSES => {
                    return Err(BinaryError::Malformed {
                        context: "witness map",
                        detail: "detached artifact carries a witness section".to_string(),
                    }
                    .into())
                }
                SECTION_WITNESS_INDEX if sharded => {}
                SECTION_WITNESS_INDEX => {
                    return Err(BinaryError::WitnessIndex {
                        context: "witness index",
                        detail: "index section present without the sharded header flag".to_string(),
                    }
                    .into())
                }
                tag => return Err(BinaryError::UnknownSection { tag }.into()),
            }
        }
        // Canonical section order: ascending tags, the order the writer
        // emits. Anything else would decode fine but re-encode to
        // different bytes, breaking the canonical-roundtrip oracle.
        if container.sections.windows(2).any(|w| w[0].tag >= w[1].tag) {
            return Err(BinaryError::Malformed {
                context: "section table",
                detail: "sections are not in canonical tag order".to_string(),
            }
            .into());
        }
        let require = |tag: u32, name: &'static str| {
            container
                .section(tag)
                .ok_or(BinaryError::MissingSection { name })
        };
        let data = shared.as_slice();
        let section_bytes = |s: binary::SectionV2| &data[s.offset..s.offset + s.len];

        let meta = parse_meta_payload(section_bytes(require(SECTION_META, "meta")?))?;

        // SPANNER: validated in place — alignment, counts, ranges, and
        // adjacency ≡ canonical derivation — then *borrowed*, not
        // rebuilt.
        let sp = require(SECTION_SPANNER, "spanner adjacency")?;
        let csr = FrozenCsr::from_bytes(shared.clone(), sp.offset, sp.len)?;
        if csr.node_count() != meta.node_count || csr.edge_count() != meta.edge_count {
            return Err(inconsistent(
                "spanner shape",
                format!(
                    "meta declares {} nodes / {} edges, adjacency holds {} / {}",
                    meta.node_count,
                    meta.edge_count,
                    csr.node_count(),
                    csr.edge_count()
                ),
            ));
        }

        let parent_section = container.section(SECTION_PARENT);
        let pe = require(SECTION_PARENT_EDGES, "parent-edge table")?;
        let tables = validate_tables_v2(
            &shared,
            pe.offset,
            pe.len,
            meta.edge_count,
            parent_section.is_some(),
        )?;

        let parent = match parent_section {
            None => ParentStore::None,
            Some(p) => ParentStore::Lazy {
                bytes: shared.clone(),
                at: p.offset,
                len: p.len,
                cell: Arc::new(OnceLock::new()),
            },
        };
        let witnesses = if detached {
            WitnessStore::Detached
        } else {
            let w = require(SECTION_WITNESSES, "witness map")?;
            if sharded {
                // The offset index is validated up front — O(count)
                // over the index section only, never the payload — so
                // per-edge access can slice records without any bounds
                // arithmetic of its own.
                let idx = require(SECTION_WITNESS_INDEX, "witness index")?;
                let count = binary::parse_offset_index(section_bytes(idx), 8, w.len as u64)?;
                let declared = read_u64_at(data, w.offset) as usize;
                if declared != count {
                    return Err(BinaryError::WitnessIndex {
                        context: "witness index",
                        detail: format!(
                            "index holds {count} records, witness map declares {declared}"
                        ),
                    }
                    .into());
                }
                if count != 0 && count != meta.edge_count {
                    return Err(inconsistent(
                        "witness map",
                        format!("{count} witness sets for {} spanner edges", meta.edge_count),
                    ));
                }
                WitnessStore::Sharded {
                    bytes: shared.clone(),
                    at: w.offset,
                    len: w.len,
                    idx_at: idx.offset,
                    idx_len: idx.len,
                    count,
                    cell: Arc::new(OnceLock::new()),
                    touched: Arc::new(AtomicU64::new(0)),
                }
            } else {
                WitnessStore::Lazy {
                    bytes: shared.clone(),
                    at: w.offset,
                    len: w.len,
                    cell: Arc::new(OnceLock::new()),
                    touched: Arc::new(AtomicU64::new(0)),
                }
            }
        };

        let frozen = FrozenSpanner {
            csr,
            parent,
            tables,
            stretch: meta.stretch,
            budget: meta.budget,
            model: meta.model,
            witnesses,
            version: ARTIFACT_VERSION_V2,
            sharded,
        };
        if eager {
            // Force (and memoize) the lazy sections so decode() means
            // "the whole file is valid", exactly as it does for v1. A
            // detached witness store is not an invalid file.
            frozen.parent()?;
            match frozen.witnesses() {
                Ok(_) | Err(ArtifactError::WitnessesDetached) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(frozen)
    }

    /// Opens a v2 artifact **in place**: the packed adjacency and
    /// translation tables are validated and then *borrowed* from
    /// `bytes` (an mmap'd file, an aligned heap buffer, …) with no `Vec`
    /// rebuild; the witness map and parent graph are decoded lazily on
    /// first use. Open cost is O(header + validation scans) — the
    /// cold-start path for "build once, serve from thousands of
    /// replicas".
    ///
    /// v1 artifacts are rejected with a typed
    /// [`BinaryError::UnsupportedVersion`] (run `spanner-artifact
    /// migrate` first); [`FrozenSpanner::decode`] keeps accepting them
    /// forever.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] on any structural defect, including a buffer
    /// that misses the 8-byte base alignment
    /// (`artifact/misaligned-section`). Hostile input cannot panic and
    /// cannot size an allocation beyond the bytes present.
    pub fn open(bytes: SharedBytes) -> Result<MappedSpanner, ArtifactError> {
        Ok(MappedSpanner {
            inner: Self::decode_v2(bytes, false)?,
        })
    }

    /// Full parent cross-checks, shared by the lazy (v2) decode path:
    /// the parent must agree with the spanner and translation tables in
    /// shape, ids, endpoints, and weights.
    fn check_parent_consistency(&self, parent: &Graph) -> Result<(), ArtifactError> {
        if parent.node_count() != self.node_count() {
            return Err(inconsistent(
                "parent shape",
                format!(
                    "parent has {} nodes, spanner has {}",
                    parent.node_count(),
                    self.node_count()
                ),
            ));
        }
        // Canonical inverse size when a parent travels with the
        // artifact: one slot per parent edge.
        if self.tables.inv_len() != parent.edge_count() {
            return Err(inconsistent(
                "parent-edge table",
                format!(
                    "inverse has {} slots, parent has {} edges",
                    self.tables.inv_len(),
                    parent.edge_count()
                ),
            ));
        }
        for own in 0..self.tables.fwd_len() {
            let parent_id = self.tables.fwd(own);
            if parent_id.index() >= parent.edge_count() {
                return Err(inconsistent(
                    "parent-edge table",
                    format!(
                        "spanner edge {own} maps to parent edge {parent_id} but the parent has {} edges",
                        parent.edge_count()
                    ),
                ));
            }
            let own_id = EdgeId::new(own);
            let e = parent.edge(parent_id);
            if self.csr.edge_endpoints(own_id) != e.endpoints()
                || self.csr.edge_weight(own_id) != e.weight()
            {
                return Err(inconsistent(
                    "parent-edge table",
                    format!("spanner edge {own} disagrees with parent edge {parent_id}"),
                ));
            }
        }
        Ok(())
    }
}

/// An artifact opened in place over a shared byte buffer — the result
/// of [`FrozenSpanner::open`]. Derefs to [`FrozenSpanner`], so every
/// serving API works unchanged; the wrapper exists to make "this came
/// from the zero-copy path" explicit in signatures like
/// `EpochServer::from_mapped`.
#[derive(Clone, Debug)]
pub struct MappedSpanner {
    inner: FrozenSpanner,
}

impl MappedSpanner {
    /// The underlying artifact.
    pub fn spanner(&self) -> &FrozenSpanner {
        &self.inner
    }

    /// Unwraps into the underlying artifact.
    pub fn into_inner(self) -> FrozenSpanner {
        self.inner
    }
}

impl std::ops::Deref for MappedSpanner {
    type Target = FrozenSpanner;

    fn deref(&self) -> &FrozenSpanner {
        &self.inner
    }
}

/// Compile-time proof of the serving contract: one artifact, any number
/// of threads.
#[allow(dead_code)]
fn frozen_spanner_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<FrozenSpanner>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, cycle};
    use spanner_graph::NodeId;

    #[test]
    fn freeze_preserves_structure_and_metadata() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let frozen = ft.freeze(&g);
        assert_eq!(frozen.node_count(), 10);
        assert_eq!(frozen.edge_count(), ft.spanner().edge_count());
        assert_eq!(frozen.stretch(), 3);
        assert_eq!(frozen.budget(), Some(1));
        assert_eq!(frozen.model(), FaultModel::Vertex);
        assert_eq!(frozen.version(), ARTIFACT_VERSION);
        assert_eq!(frozen.witnesses().unwrap(), ft.witnesses());
        assert_eq!(
            frozen.parent_edge_ids().collect::<Vec<_>>(),
            ft.spanner().parent_edge_ids()
        );
        assert_eq!(
            frozen.parent().unwrap().unwrap().edge_count(),
            g.edge_count()
        );
    }

    #[test]
    fn bare_freeze_has_no_metadata() {
        let g = cycle(6);
        let s = Spanner::from_parent_edges(&g, g.edge_ids(), 3);
        let frozen = s.freeze();
        assert_eq!(frozen.budget(), None);
        assert!(frozen.parent().unwrap().is_none());
        assert!(frozen.witnesses().unwrap().is_empty());
        assert_eq!(frozen.edge_count(), 6);
    }

    #[test]
    fn parent_edge_translation_round_trips() {
        let g = cycle(4);
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(1), EdgeId::new(3)], 3);
        let frozen = s.freeze();
        assert_eq!(
            frozen.spanner_edge_of_parent(EdgeId::new(1)),
            Some(EdgeId::new(0))
        );
        assert_eq!(
            frozen.spanner_edge_of_parent(EdgeId::new(3)),
            Some(EdgeId::new(1))
        );
        assert_eq!(frozen.spanner_edge_of_parent(EdgeId::new(0)), None);
        assert_eq!(frozen.spanner_edge_of_parent(EdgeId::new(99)), None);
        assert_eq!(frozen.parent_edge(EdgeId::new(1)), EdgeId::new(3));
    }

    #[test]
    fn codec_round_trips_full_artifact() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let frozen = ft.freeze(&g);
        let bytes = frozen.encode();
        let back = FrozenSpanner::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes, "re-encoding must be byte-identical");
        assert_eq!(back.node_count(), frozen.node_count());
        assert_eq!(back.edge_count(), frozen.edge_count());
        assert_eq!(back.stretch(), frozen.stretch());
        assert_eq!(back.budget(), frozen.budget());
        assert_eq!(back.model(), frozen.model());
        assert_eq!(back.witnesses().unwrap(), frozen.witnesses().unwrap());
        assert_eq!(
            back.parent_edge_ids().collect::<Vec<_>>(),
            frozen.parent_edge_ids().collect::<Vec<_>>()
        );
        for pe in 0..g.edge_count() {
            assert_eq!(
                back.spanner_edge_of_parent(EdgeId::new(pe)),
                frozen.spanner_edge_of_parent(EdgeId::new(pe))
            );
        }
        let p = back.parent().unwrap().unwrap();
        assert_eq!(p.edge_count(), g.edge_count());
        for (id, e) in g.edges() {
            assert_eq!(p.endpoints(id), e.endpoints());
            assert_eq!(p.weight(id), e.weight());
        }
    }

    #[test]
    fn codec_round_trips_bare_artifact() {
        let g = cycle(6);
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(1), EdgeId::new(4)], 5);
        let frozen = s.freeze();
        let bytes = frozen.encode();
        let back = FrozenSpanner::decode(&bytes).unwrap();
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.budget(), None);
        assert!(back.parent().unwrap().is_none());
        assert!(back.witnesses().unwrap().is_empty());
        assert_eq!(
            back.spanner_edge_of_parent(EdgeId::new(4)),
            Some(EdgeId::new(1))
        );
        assert_eq!(back.spanner_edge_of_parent(EdgeId::new(0)), None);
    }

    #[test]
    fn decode_rejects_truncation_and_corruption_everywhere() {
        let g = complete(7);
        let bytes = FtGreedy::new(&g, 3).faults(1).run().freeze(&g).encode();
        for len in 0..bytes.len() {
            assert!(
                FrozenSpanner::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
        for i in (0..bytes.len()).step_by(3) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x2a;
            assert!(
                FrozenSpanner::decode(&corrupt).is_err(),
                "flipping byte {i} must be detected"
            );
        }
    }

    #[test]
    fn decode_rejects_cross_section_contradictions() {
        use spanner_graph::io::binary::{put_u32, put_u64, write_view_payload, ContainerWriter};
        let g = cycle(5);
        let frozen = Spanner::from_parent_edges(&g, g.edge_ids(), 3).freeze();
        // Rebuild the container by hand with a parent-edge table that is
        // one entry short: the count cross-check must catch it.
        let mut meta = Vec::new();
        put_u64(&mut meta, frozen.stretch());
        meta.push(0); // vertex model
        meta.push(0); // no budget
        put_u64(&mut meta, 0);
        put_u64(&mut meta, frozen.node_count() as u64);
        put_u64(&mut meta, frozen.edge_count() as u64);
        let mut spanner = Vec::new();
        write_view_payload(frozen.csr(), &mut spanner);
        let mut short_table = Vec::new();
        put_u64(&mut short_table, (frozen.edge_count() - 1) as u64);
        for id in frozen.parent_edge_ids().skip(1) {
            put_u32(&mut short_table, id.raw());
        }
        let mut witnesses = Vec::new();
        put_u64(&mut witnesses, 0);
        let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
        w.section(SECTION_META, &meta)
            .section(SECTION_SPANNER, &spanner)
            .section(SECTION_PARENT_EDGES, &short_table)
            .section(SECTION_WITNESSES, &witnesses);
        let err = FrozenSpanner::decode(&w.finish()).unwrap_err();
        assert!(
            matches!(err, ArtifactError::Inconsistent { .. }),
            "want Inconsistent, got {err}"
        );
        assert!(err.to_string().contains("parent-edge table"), "{err}");
    }

    #[test]
    fn huge_parent_edge_ids_cannot_force_allocations() {
        use spanner_graph::io::binary::{put_u32, put_u64, write_view_payload, ContainerWriter};
        // A crafted *bare* artifact (no parent section) whose one
        // spanner edge claims parent edge id 0xfffffffe. The inverse
        // table that id implies would be ~16 GiB; decode must reject the
        // file from its stored (bytes-bounded) sections instead of ever
        // sizing an allocation from the id.
        let g = cycle(3);
        let frozen = Spanner::from_parent_edges(&g, [EdgeId::new(0)], 3).freeze();
        let mut meta = Vec::new();
        put_u64(&mut meta, 3);
        meta.push(0);
        meta.push(0);
        put_u64(&mut meta, 0);
        put_u64(&mut meta, frozen.node_count() as u64);
        put_u64(&mut meta, 1);
        let mut spanner = Vec::new();
        write_view_payload(frozen.csr(), &mut spanner);
        let mut witnesses = Vec::new();
        put_u64(&mut witnesses, 0);
        // Case A: the inverse claims u64::MAX slots — the bytes-present
        // guard rejects the count before any allocation.
        // Case B: the inverse is tiny — the forward id falls outside it.
        for inverse_slots in [u64::MAX, 1] {
            let mut table = Vec::new();
            put_u64(&mut table, 1);
            put_u32(&mut table, 0xffff_fffe);
            put_u64(&mut table, inverse_slots);
            if inverse_slots == 1 {
                put_u32(&mut table, 0);
            }
            let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
            w.section(SECTION_META, &meta)
                .section(SECTION_SPANNER, &spanner)
                .section(SECTION_PARENT_EDGES, &table)
                .section(SECTION_WITNESSES, &witnesses);
            let err = FrozenSpanner::decode(&w.finish()).unwrap_err();
            assert!(
                err.to_string().contains("parent-edge"),
                "slots={inverse_slots}: {err}"
            );
        }
    }

    #[test]
    fn noninjective_forward_table_rejected() {
        use spanner_graph::io::binary::{put_u32, put_u64, ContainerWriter};
        // Two spanner copies of the same physical link, both mapped to
        // parent edge 2: epoching {e2} would mask only one copy, so the
        // decoder must refuse the artifact outright.
        let mut meta = Vec::new();
        put_u64(&mut meta, 3);
        meta.push(0);
        meta.push(0);
        put_u64(&mut meta, 0);
        put_u64(&mut meta, 3); // nodes
        put_u64(&mut meta, 2); // edges
        let mut spanner = Vec::new();
        put_u64(&mut spanner, 3);
        put_u64(&mut spanner, 2);
        for _ in 0..2 {
            put_u32(&mut spanner, 0);
            put_u32(&mut spanner, 1);
            put_u64(&mut spanner, 1);
        }
        let mut table = Vec::new();
        put_u64(&mut table, 2);
        put_u32(&mut table, 2);
        put_u32(&mut table, 2);
        put_u64(&mut table, 3); // slots 0..=2
        put_u32(&mut table, NOT_KEPT);
        put_u32(&mut table, NOT_KEPT);
        put_u32(&mut table, 1); // later claimant wins, as derivation does
        let mut witnesses = Vec::new();
        put_u64(&mut witnesses, 0);
        let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
        w.section(SECTION_META, &meta)
            .section(SECTION_SPANNER, &spanner)
            .section(SECTION_PARENT_EDGES, &table)
            .section(SECTION_WITNESSES, &witnesses);
        let err = FrozenSpanner::decode(&w.finish()).unwrap_err();
        assert!(err.to_string().contains("not injective"), "{err}");
    }

    #[test]
    fn denormalized_witness_ids_rejected() {
        use spanner_graph::io::binary::{put_u32, put_u64, write_view_payload, ContainerWriter};
        // Witness ids arrive unsorted: FaultSet would silently
        // renormalize them, breaking re-encode byte identity — so decode
        // must reject them with a typed error instead.
        let g = cycle(4);
        let frozen = Spanner::from_parent_edges(&g, [EdgeId::new(0)], 3).freeze();
        let mut meta = Vec::new();
        put_u64(&mut meta, 3);
        meta.push(0);
        meta.push(0);
        put_u64(&mut meta, 0);
        put_u64(&mut meta, frozen.node_count() as u64);
        put_u64(&mut meta, 1);
        let mut spanner = Vec::new();
        write_view_payload(frozen.csr(), &mut spanner);
        let mut table = Vec::new();
        put_u64(&mut table, 1);
        put_u32(&mut table, 0);
        put_u64(&mut table, 1);
        put_u32(&mut table, 0);
        for bad_ids in [[3u32, 1], [2, 2]] {
            let mut witnesses = Vec::new();
            put_u64(&mut witnesses, 1);
            witnesses.push(0); // vertex model
            put_u64(&mut witnesses, 2);
            for id in bad_ids {
                put_u32(&mut witnesses, id);
            }
            let mut w = ContainerWriter::new(ARTIFACT_MAGIC, ARTIFACT_VERSION);
            w.section(SECTION_META, &meta)
                .section(SECTION_SPANNER, &spanner)
                .section(SECTION_PARENT_EDGES, &table)
                .section(SECTION_WITNESSES, &witnesses);
            let err = FrozenSpanner::decode(&w.finish()).unwrap_err();
            assert!(
                err.to_string().contains("sorted and deduplicated"),
                "{bad_ids:?}: {err}"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_version_and_section() {
        let g = cycle(4);
        let frozen = Spanner::from_parent_edges(&g, g.edge_ids(), 3).freeze();
        let bytes = frozen.encode();
        let mut future = bytes.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_len = future.len() - 8;
        let sum = spanner_graph::io::binary::fnv1a64(&future[..body_len]).to_le_bytes();
        future[body_len..].copy_from_slice(&sum);
        assert!(matches!(
            FrozenSpanner::decode(&future),
            Err(ArtifactError::Format(
                spanner_graph::io::binary::BinaryError::UnsupportedVersion { found: 99, .. }
            ))
        ));
    }

    #[test]
    fn apply_faults_matches_spanner_fault_mask() {
        let g = cycle(5);
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(0), EdgeId::new(2), EdgeId::new(4)], 3);
        let frozen = s.freeze();
        for faults in [
            FaultSet::vertices([NodeId::new(2), NodeId::new(4)]),
            FaultSet::edges([EdgeId::new(0), EdgeId::new(1), EdgeId::new(4)]),
            FaultSet::empty(FaultModel::Vertex),
        ] {
            let reference = s.fault_mask(&faults);
            let mut mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
            frozen.apply_faults(&faults, &mut mask);
            assert_eq!(mask, reference, "faults {faults:?}");
        }
    }
}
