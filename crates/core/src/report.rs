//! Human-readable construction and scenario reports.
//!
//! One call summarizes everything an operator wants to know about a
//! constructed fault tolerant spanner ([`ConstructionReport`]: sizes,
//! weight/lightness, degrees, witness statistics, audit outcomes) or
//! about a failure-scenario run ([`ScenarioReport`]: SLO-style rates,
//! contract violations, the worst logged events) — rendered as plain
//! text for logs and example output.

use crate::metrics::spanner_metrics;
use crate::simulation::ScenarioOutcome;
use crate::verify::FaultAudit;
use crate::FtSpanner;
use spanner_graph::Graph;
use std::fmt;

/// A summarized FT-greedy construction.
///
/// Build with [`ConstructionReport::new`], then attach audits with
/// [`ConstructionReport::with_audit`]; render via `Display`.
///
/// # Examples
///
/// ```
/// use spanner_core::{report::ConstructionReport, FtGreedy};
/// use spanner_graph::generators::complete;
///
/// let g = complete(10);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let text = ConstructionReport::new(&g, &ft).to_string();
/// assert!(text.contains("fault budget"));
/// assert!(text.contains("witness sizes"));
/// ```
#[derive(Clone, Debug)]
pub struct ConstructionReport {
    stretch: u64,
    faults: usize,
    model: String,
    input_nodes: usize,
    input_edges: usize,
    metrics: crate::metrics::SpannerMetrics,
    witness_histogram: Vec<usize>,
    oracle_stats: spanner_faults::OracleStats,
    audits: Vec<(String, usize, usize)>,
}

impl ConstructionReport {
    /// Summarizes `ft` against its parent graph.
    pub fn new(parent: &Graph, ft: &FtSpanner) -> Self {
        let mut witness_histogram = vec![0usize; ft.faults() + 1];
        for w in ft.witnesses() {
            witness_histogram[w.len().min(ft.faults())] += 1;
        }
        ConstructionReport {
            stretch: ft.spanner().stretch(),
            faults: ft.faults(),
            model: ft.model().to_string(),
            input_nodes: parent.node_count(),
            input_edges: parent.edge_count(),
            metrics: spanner_metrics(parent, ft.spanner()),
            witness_histogram,
            oracle_stats: ft.stats(),
            audits: Vec::new(),
        }
    }

    /// Attaches a named audit outcome (shown as `violations/trials`).
    pub fn with_audit(&mut self, name: &str, audit: &FaultAudit) -> &mut Self {
        self.audits
            .push((name.to_string(), audit.violations, audit.trials));
        self
    }

    /// Histogram of witness fault-set sizes (index = size).
    pub fn witness_histogram(&self) -> &[usize] {
        &self.witness_histogram
    }
}

impl fmt::Display for ConstructionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FT spanner construction (stretch {}, fault budget {}, {} model)",
            self.stretch, self.faults, self.model
        )?;
        writeln!(
            f,
            "  input:    {} nodes, {} edges",
            self.input_nodes, self.input_edges
        )?;
        writeln!(
            f,
            "  output:   {} edges ({:.1}% kept), weight {}, lightness {:.3}",
            self.metrics.edges,
            100.0 * self.metrics.retention,
            self.metrics.weight,
            self.metrics.lightness
        )?;
        writeln!(
            f,
            "  degrees:  max {}, average {:.2}",
            self.metrics.max_degree, self.metrics.avg_degree
        )?;
        write!(f, "  witness sizes:")?;
        for (size, count) in self.witness_histogram.iter().enumerate() {
            write!(f, " |F|={size}: {count}")?;
        }
        writeln!(f)?;
        writeln!(f, "  oracle:   {}", self.oracle_stats)?;
        for (name, violations, trials) in &self.audits {
            writeln!(f, "  audit {name}: {violations}/{trials} violations")?;
        }
        Ok(())
    }
}

/// An SLO-style summary of one scenario run, rendered like a
/// [`ConstructionReport`] section.
///
/// # Examples
///
/// ```
/// use spanner_core::report::ScenarioReport;
/// use spanner_core::simulation::{
///     run_scenario, IndependentBernoulli, ScenarioConfig,
/// };
/// use spanner_core::FtGreedy;
/// use spanner_graph::generators::complete;
///
/// let g = complete(10);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let mut process = IndependentBernoulli {
///     failure_probability: 0.05,
///     repair_probability: 0.5,
/// };
/// let outcome = run_scenario(
///     &g,
///     ft.into_spanner(),
///     1,
///     &ScenarioConfig::default(),
///     &mut process,
///     7,
/// );
/// let text = ScenarioReport::new(1, 3, &outcome).to_string();
/// assert!(text.contains("independent-bernoulli"));
/// assert!(text.contains("contract"));
/// ```
#[derive(Clone, Debug)]
pub struct ScenarioReport<'a> {
    budget: usize,
    stretch: u64,
    outcome: &'a ScenarioOutcome,
    /// How many logged events to render (worst-first is the log order
    /// only when violations are rare; we render the first few).
    max_shown_events: usize,
}

impl<'a> ScenarioReport<'a> {
    /// Wraps a scenario outcome for rendering.
    pub fn new(budget: usize, stretch: u64, outcome: &'a ScenarioOutcome) -> Self {
        ScenarioReport {
            budget,
            stretch,
            outcome,
            max_shown_events: 5,
        }
    }

    /// Caps how many logged contract events the rendering includes.
    pub fn show_events(mut self, count: usize) -> Self {
        self.max_shown_events = count;
        self
    }
}

impl fmt::Display for ScenarioReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.outcome;
        writeln!(
            f,
            "scenario {} (budget {}, stretch target {})",
            o.scenario, self.budget, self.stretch
        )?;
        writeln!(
            f,
            "  process:  {}/{} steps in budget, peak {} down",
            o.steps_within_budget, o.steps, o.peak_failures
        )?;
        writeln!(
            f,
            "  queries:  {} issued ({} in budget), {} routed",
            o.queries, o.in_budget_queries, o.routed
        )?;
        writeln!(
            f,
            "  slo:      in-budget hit {:.2}%, overall hit {:.2}%, availability {:.2}%",
            100.0 * o.in_budget_hit_rate(),
            100.0 * o.overall_hit_rate(),
            100.0 * o.availability()
        )?;
        writeln!(
            f,
            "  contract: {} violations (must be 0), worst in-budget stretch {:.3}",
            o.contract_violations, o.worst_stretch_within_budget
        )?;
        let shown = o.events.iter().take(self.max_shown_events);
        for event in shown {
            let (a, b) = event.pair;
            writeln!(
                f,
                "    event: step {} {a}->{b} achieved {} bound {:.1}{}",
                event.step,
                if event.achieved.is_finite() {
                    format!("{:.1}", event.achieved)
                } else {
                    "unreachable".to_string()
                },
                event.bound,
                if event.in_budget {
                    " [IN BUDGET: violation]"
                } else {
                    " [over budget]"
                }
            )?;
        }
        let hidden = (o.events.len().saturating_sub(self.max_shown_events)) + o.events_dropped;
        if hidden > 0 {
            writeln!(f, "    ... {hidden} more event(s) not shown")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{run_scripted_scenario, ScenarioConfig, Trace};
    use crate::verify::verify_ft_exhaustive;
    use crate::{FtGreedy, Spanner};
    use spanner_faults::FaultModel;
    use spanner_graph::generators::complete;
    use spanner_graph::{EdgeId, Graph, NodeId};

    #[test]
    fn report_contains_all_sections() {
        let g = complete(8);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let audit = verify_ft_exhaustive(&g, ft.spanner(), 2, FaultModel::Vertex);
        let mut report = ConstructionReport::new(&g, &ft);
        report.with_audit("exhaustive", &audit);
        let text = report.to_string();
        assert!(text.contains("stretch 3"));
        assert!(text.contains("fault budget 2"));
        assert!(text.contains("8 nodes"));
        assert!(text.contains("lightness"));
        assert!(text.contains("audit exhaustive: 0/"));
    }

    #[test]
    fn witness_histogram_sums_to_edge_count() {
        let g = complete(9);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let report = ConstructionReport::new(&g, &ft);
        let total: usize = report.witness_histogram().iter().sum();
        assert_eq!(total, ft.spanner().edge_count());
        assert_eq!(report.witness_histogram().len(), 3);
    }

    #[test]
    fn scenario_report_shows_violation_events() {
        // Unit triangle, path "spanner" claiming stretch 1: the pair
        // (0, 2) is over-stretched, so the report must show the event.
        let g = Graph::from_weighted_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 1)]).unwrap();
        let spanner = Spanner::from_parent_edges(&g, [EdgeId::new(0), EdgeId::new(1)], 1);
        let script = vec![vec![(NodeId::new(0), NodeId::new(2))]];
        let outcome = run_scripted_scenario(
            &g,
            spanner,
            1,
            &ScenarioConfig {
                steps: 1,
                model: FaultModel::Vertex,
                ..ScenarioConfig::default()
            },
            &mut Trace::new(Vec::new()),
            &script,
            0,
        );
        let text = ScenarioReport::new(1, 1, &outcome).to_string();
        assert!(text.contains("scenario trace"));
        assert!(text.contains("1 violations (must be 0)"));
        assert!(text.contains("[IN BUDGET: violation]"));
        assert!(text.contains("in-budget hit 0.00%"));
    }

    #[test]
    fn scenario_report_caps_shown_events() {
        let g = Graph::from_weighted_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 1)]).unwrap();
        let spanner = Spanner::from_parent_edges(&g, [EdgeId::new(0), EdgeId::new(1)], 1);
        let script: Vec<Vec<(NodeId, NodeId)>> = (0..4)
            .map(|_| vec![(NodeId::new(0), NodeId::new(2))])
            .collect();
        let outcome = run_scripted_scenario(
            &g,
            spanner,
            1,
            &ScenarioConfig {
                steps: 4,
                model: FaultModel::Vertex,
                ..ScenarioConfig::default()
            },
            &mut Trace::new(Vec::new()),
            &script,
            0,
        );
        let text = ScenarioReport::new(1, 1, &outcome)
            .show_events(1)
            .to_string();
        assert_eq!(text.matches("event: step").count(), 1);
        assert!(text.contains("3 more event(s) not shown"));
    }

    #[test]
    fn zero_fault_histogram_is_all_empty_witnesses() {
        let g = complete(6);
        let ft = FtGreedy::new(&g, 3).run();
        let report = ConstructionReport::new(&g, &ft);
        assert_eq!(report.witness_histogram().len(), 1);
        assert_eq!(report.witness_histogram()[0], ft.spanner().edge_count());
    }
}
