//! Human-readable construction reports.
//!
//! One call summarizes everything an operator wants to know about a
//! constructed fault tolerant spanner: sizes, weight/lightness, degrees,
//! witness statistics, and (optionally) audit outcomes — rendered as
//! plain text for logs and example output.

use crate::metrics::spanner_metrics;
use crate::verify::FaultAudit;
use crate::FtSpanner;
use spanner_graph::Graph;
use std::fmt;

/// A summarized FT-greedy construction.
///
/// Build with [`ConstructionReport::new`], then attach audits with
/// [`ConstructionReport::with_audit`]; render via `Display`.
///
/// # Examples
///
/// ```
/// use spanner_core::{report::ConstructionReport, FtGreedy};
/// use spanner_graph::generators::complete;
///
/// let g = complete(10);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let text = ConstructionReport::new(&g, &ft).to_string();
/// assert!(text.contains("fault budget"));
/// assert!(text.contains("witness sizes"));
/// ```
#[derive(Clone, Debug)]
pub struct ConstructionReport {
    stretch: u64,
    faults: usize,
    model: String,
    input_nodes: usize,
    input_edges: usize,
    metrics: crate::metrics::SpannerMetrics,
    witness_histogram: Vec<usize>,
    oracle_stats: spanner_faults::OracleStats,
    audits: Vec<(String, usize, usize)>,
}

impl ConstructionReport {
    /// Summarizes `ft` against its parent graph.
    pub fn new(parent: &Graph, ft: &FtSpanner) -> Self {
        let mut witness_histogram = vec![0usize; ft.faults() + 1];
        for w in ft.witnesses() {
            witness_histogram[w.len().min(ft.faults())] += 1;
        }
        ConstructionReport {
            stretch: ft.spanner().stretch(),
            faults: ft.faults(),
            model: ft.model().to_string(),
            input_nodes: parent.node_count(),
            input_edges: parent.edge_count(),
            metrics: spanner_metrics(parent, ft.spanner()),
            witness_histogram,
            oracle_stats: ft.stats(),
            audits: Vec::new(),
        }
    }

    /// Attaches a named audit outcome (shown as `violations/trials`).
    pub fn with_audit(&mut self, name: &str, audit: &FaultAudit) -> &mut Self {
        self.audits
            .push((name.to_string(), audit.violations, audit.trials));
        self
    }

    /// Histogram of witness fault-set sizes (index = size).
    pub fn witness_histogram(&self) -> &[usize] {
        &self.witness_histogram
    }
}

impl fmt::Display for ConstructionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FT spanner construction (stretch {}, fault budget {}, {} model)",
            self.stretch, self.faults, self.model
        )?;
        writeln!(
            f,
            "  input:    {} nodes, {} edges",
            self.input_nodes, self.input_edges
        )?;
        writeln!(
            f,
            "  output:   {} edges ({:.1}% kept), weight {}, lightness {:.3}",
            self.metrics.edges,
            100.0 * self.metrics.retention,
            self.metrics.weight,
            self.metrics.lightness
        )?;
        writeln!(
            f,
            "  degrees:  max {}, average {:.2}",
            self.metrics.max_degree, self.metrics.avg_degree
        )?;
        write!(f, "  witness sizes:")?;
        for (size, count) in self.witness_histogram.iter().enumerate() {
            write!(f, " |F|={size}: {count}")?;
        }
        writeln!(f)?;
        writeln!(f, "  oracle:   {}", self.oracle_stats)?;
        for (name, violations, trials) in &self.audits {
            writeln!(f, "  audit {name}: {violations}/{trials} violations")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_ft_exhaustive;
    use crate::FtGreedy;
    use spanner_faults::FaultModel;
    use spanner_graph::generators::complete;

    #[test]
    fn report_contains_all_sections() {
        let g = complete(8);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let audit = verify_ft_exhaustive(&g, ft.spanner(), 2, FaultModel::Vertex);
        let mut report = ConstructionReport::new(&g, &ft);
        report.with_audit("exhaustive", &audit);
        let text = report.to_string();
        assert!(text.contains("stretch 3"));
        assert!(text.contains("fault budget 2"));
        assert!(text.contains("8 nodes"));
        assert!(text.contains("lightness"));
        assert!(text.contains("audit exhaustive: 0/"));
    }

    #[test]
    fn witness_histogram_sums_to_edge_count() {
        let g = complete(9);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let report = ConstructionReport::new(&g, &ft);
        let total: usize = report.witness_histogram().iter().sum();
        assert_eq!(total, ft.spanner().edge_count());
        assert_eq!(report.witness_histogram().len(), 3);
    }

    #[test]
    fn zero_fault_histogram_is_all_empty_witnesses() {
        let g = complete(6);
        let ft = FtGreedy::new(&g, 3).run();
        let report = ConstructionReport::new(&g, &ft);
        assert_eq!(report.witness_histogram().len(), 1);
        assert_eq!(report.witness_histogram()[0], ft.spanner().edge_count());
    }
}
