//! Algorithm 1 of Bodwin–Patel: the fault tolerant greedy spanner.
//!
//! ```text
//! function ft-greedy(G = (V, E, w), k, f)
//!     H ← (V, ∅, w)
//!     for (u, v) ∈ E in order of increasing weight do
//!         if ∃ F, |F| ≤ f vertices (edges), with dist_{H∖F}(u, v) > k·w(u, v) then
//!             add (u, v) to H
//!     return H
//! ```
//!
//! The existence test is delegated to a [`FaultOracle`]; the witness `F_e`
//! found for every kept edge is recorded, because Lemma 3 turns exactly
//! those witnesses into the `(k+1)`-blocking set that drives the size
//! analysis (see [`crate::blocking`]).
//!
//! With `f = 0` this is precisely the classic greedy algorithm
//! ([`crate::greedy_spanner`]); the equivalence is tested.

use crate::Spanner;
use spanner_faults::{
    BranchingConfig, BranchingOracle, ExhaustiveOracle, FaultModel, FaultOracle, FaultSet,
    GreedyHeuristicOracle, HittingSetOracle, OracleQuery, OracleStats, ParallelBranchingOracle,
};
use spanner_graph::{EdgeId, Graph};

/// Which oracle implementation FT-greedy should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OracleKind {
    /// Bounded search tree with packing pruning and memoization (default).
    #[default]
    Branching,
    /// Branching with explicit feature toggles (for ablations).
    BranchingWith(BranchingConfig),
    /// Brute-force subset enumeration (tiny instances only).
    Exhaustive,
    /// Path-enumeration + hitting-set branch & bound.
    HittingSet,
    /// Branching with the root subtrees fanned out over this many worker
    /// threads (exact; useful at large `f` on dense instances).
    Parallel(usize),
    /// **Inexact** polynomial-time heuristic (the open-problem probe):
    /// kept edges are always justified, but edges may be dropped wrongly,
    /// so the output can fail fault audits. For experiment E11; do not use
    /// when the fault-tolerance contract must hold.
    Heuristic,
}

impl OracleKind {
    fn instantiate(self) -> Box<dyn FaultOracle> {
        match self {
            OracleKind::Branching => Box::new(BranchingOracle::new()),
            OracleKind::BranchingWith(cfg) => Box::new(BranchingOracle::with_config(cfg)),
            OracleKind::Exhaustive => Box::new(ExhaustiveOracle::new()),
            OracleKind::HittingSet => Box::new(HittingSetOracle::new()),
            OracleKind::Parallel(threads) => Box::new(ParallelBranchingOracle::new(threads)),
            OracleKind::Heuristic => Box::new(GreedyHeuristicOracle::new()),
        }
    }

    /// Whether this oracle is exact (`false` only for
    /// [`OracleKind::Heuristic`]).
    pub fn is_exact(self) -> bool {
        !matches!(self, OracleKind::Heuristic)
    }
}

/// Configurable FT-greedy runner (non-consuming builder).
///
/// # Examples
///
/// ```
/// use spanner_core::FtGreedy;
/// use spanner_faults::FaultModel;
/// use spanner_graph::generators::complete;
///
/// let g = complete(10);
/// let ft = FtGreedy::new(&g, 3).faults(1).model(FaultModel::Vertex).run();
/// // A 1-VFT spanner needs at least min-degree 2 everywhere.
/// assert!(ft.spanner().edge_count() >= g.node_count());
/// ```
#[derive(Debug)]
pub struct FtGreedy<'a> {
    graph: &'a Graph,
    stretch: u64,
    faults: usize,
    model: FaultModel,
    oracle: OracleKind,
}

impl<'a> FtGreedy<'a> {
    /// Starts configuring a run over `graph` with the given stretch.
    ///
    /// Defaults: `faults = 0`, vertex model, branching oracle.
    ///
    /// # Panics
    ///
    /// Panics if `stretch == 0`.
    pub fn new(graph: &'a Graph, stretch: u64) -> Self {
        assert!(stretch >= 1, "stretch must be positive");
        FtGreedy {
            graph,
            stretch,
            faults: 0,
            model: FaultModel::Vertex,
            oracle: OracleKind::default(),
        }
    }

    /// Sets the fault budget `f`.
    pub fn faults(&mut self, faults: usize) -> &mut Self {
        self.faults = faults;
        self
    }

    /// Sets the fault model (vertex or edge).
    pub fn model(&mut self, model: FaultModel) -> &mut Self {
        self.model = model;
        self
    }

    /// Selects the oracle implementation.
    pub fn oracle(&mut self, oracle: OracleKind) -> &mut Self {
        self.oracle = oracle;
        self
    }

    /// The oracle query for a parent edge at this run's parameters.
    fn query_for(&self, parent_id: EdgeId) -> OracleQuery {
        let e = self.graph.edge(parent_id);
        OracleQuery {
            u: e.u(),
            v: e.v(),
            bound: e.weight().stretched(self.stretch),
            budget: self.faults,
            model: self.model,
        }
    }

    /// Runs Algorithm 1 and returns the fault tolerant spanner with its
    /// recorded witnesses.
    ///
    /// The default branching oracle (and its `BranchingWith`/`Parallel`
    /// variants) runs through a monomorphized hot loop over the spanner's
    /// incremental CSR view — no `Box<dyn>` dispatch, no per-query
    /// allocation. The remaining oracle kinds go through the generic
    /// [`FtGreedy::run_with_oracle`] path.
    pub fn run(&self) -> FtSpanner {
        match self.oracle {
            OracleKind::Branching => self.run_branching(BranchingConfig::default()),
            OracleKind::BranchingWith(config) => self.run_branching(config),
            OracleKind::Parallel(threads) => self.run_pooled(threads),
            kind => {
                let mut oracle = kind.instantiate();
                self.run_with_oracle(oracle.as_mut())
            }
        }
    }

    /// Runs Algorithm 1 with a caller-provided oracle, querying the
    /// growing spanner's [`Graph`]. Monomorphized over the oracle type;
    /// useful for custom oracles and for pinning the optimized paths to
    /// [`spanner_faults::reference::ReferenceBranchingOracle`] in tests
    /// and benchmarks.
    pub fn run_with_oracle<O: FaultOracle + ?Sized>(&self, oracle: &mut O) -> FtSpanner {
        let mut spanner = Spanner::empty(self.graph, self.stretch);
        let mut witnesses = Vec::new();
        // The (weight, id) scan order is computed exactly once per run.
        for parent_id in self.graph.edges_by_weight() {
            let query = self.query_for(parent_id);
            if let Some(found) = oracle.find_blocking_faults(spanner.graph(), query) {
                let e = self.graph.edge(parent_id);
                spanner.push_edge(parent_id, e.u(), e.v(), e.weight());
                witnesses.push(found);
            }
        }
        self.finish(spanner, witnesses, oracle.stats())
    }

    /// The optimized sequential path: one [`BranchingOracle`] whose
    /// scratch lives for the whole construction, querying the spanner's
    /// flat CSR view.
    fn run_branching(&self, config: BranchingConfig) -> FtSpanner {
        let mut oracle = BranchingOracle::with_config(config);
        let mut spanner = Spanner::empty(self.graph, self.stretch);
        let mut witnesses = Vec::new();
        for parent_id in self.graph.edges_by_weight() {
            let query = self.query_for(parent_id);
            if let Some(found) = oracle.find_blocking_faults_in(spanner.view(), query) {
                let e = self.graph.edge(parent_id);
                spanner.push_edge(parent_id, e.u(), e.v(), e.weight());
                witnesses.push(found);
            }
        }
        self.finish(spanner, witnesses, oracle.stats())
    }

    /// The optimized parallel path: a persistent worker pool sharing an
    /// incremental CSR view of the spanner, alive for the whole run
    /// (the pre-PR-2 implementation spawned threads per query).
    fn run_pooled(&self, threads: usize) -> FtSpanner {
        let mut oracle = ParallelBranchingOracle::new(threads);
        self.run_pooled_with(&mut oracle)
    }

    /// The `Parallel` path of [`FtGreedy::run`] over a **caller-owned**
    /// pooled oracle, so one persistent worker pool (and its scratch)
    /// can serve many constructions. `run()` with
    /// [`OracleKind::Parallel`] used to spawn — and join — a fresh pool
    /// per construction; partitioned builds
    /// ([`crate::partition`]) run every shard and the boundary stitch
    /// through a single oracle instead, and
    /// [`spanner_faults::OracleStats::pool_spawns`] proves it.
    ///
    /// The shared view is reset to this run's graph; the oracle's
    /// cumulative work counters keep accumulating across runs (reset
    /// them with [`spanner_faults::FaultOracle::reset_stats`] if
    /// per-run numbers are wanted). The returned
    /// [`FtSpanner::stats`] is the cumulative snapshot at finish.
    pub fn run_pooled_with(&self, oracle: &mut ParallelBranchingOracle) -> FtSpanner {
        oracle.view_reset(self.graph.node_count());
        // During the run the oracle's shared view *is* the growing
        // spanner; the `Spanner` (with its own CSR mirror) is assembled
        // once at the end rather than maintained redundantly per edge.
        let mut kept = Vec::new();
        let mut witnesses = Vec::new();
        for parent_id in self.graph.edges_by_weight() {
            let query = self.query_for(parent_id);
            if let Some(found) = oracle.find_blocking_faults_in_view(query) {
                let e = self.graph.edge(parent_id);
                oracle.view_push_edge(e.u(), e.v(), e.weight());
                kept.push(parent_id);
                witnesses.push(found);
            }
        }
        let spanner = Spanner::from_kept_edges_in_order(self.graph, kept, self.stretch);
        self.finish(spanner, witnesses, oracle.stats())
    }

    fn finish(&self, spanner: Spanner, witnesses: Vec<FaultSet>, stats: OracleStats) -> FtSpanner {
        FtSpanner {
            spanner,
            witnesses,
            model: self.model,
            faults: self.faults,
            stats,
        }
    }
}

/// The output of [`FtGreedy::run`]: the spanner plus the per-edge witness
/// fault sets and oracle work counters.
#[derive(Clone, Debug)]
pub struct FtSpanner {
    spanner: Spanner,
    witnesses: Vec<FaultSet>,
    model: FaultModel,
    faults: usize,
    stats: OracleStats,
}

impl FtSpanner {
    /// Assembles an `FtSpanner` from its parts; the partitioned
    /// construction ([`crate::partition`]) builds its stitched union
    /// result through this.
    pub(crate) fn from_parts(
        spanner: Spanner,
        witnesses: Vec<FaultSet>,
        model: FaultModel,
        faults: usize,
        stats: OracleStats,
    ) -> Self {
        FtSpanner {
            spanner,
            witnesses,
            model,
            faults,
            stats,
        }
    }

    /// The constructed spanner.
    pub fn spanner(&self) -> &Spanner {
        &self.spanner
    }

    /// Consumes self, returning the spanner.
    pub fn into_spanner(self) -> Spanner {
        self.spanner
    }

    /// The witness fault set recorded when spanner edge `i` was added:
    /// at that moment, `dist_{H∖F_i}(u_i, v_i) > k·w_i` held.
    ///
    /// Indexed by *spanner* edge id. Fault-set edge ids refer to spanner
    /// edge ids (the partial `H` the oracle ran against), matching the
    /// blocking-set definition of the paper.
    pub fn witnesses(&self) -> &[FaultSet] {
        &self.witnesses
    }

    /// The fault model the spanner was built for.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The fault budget `f` the spanner was built for.
    pub fn faults(&self) -> usize {
        self.faults
    }

    /// Oracle work counters for the whole construction.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Seals the construction into an immutable
    /// [`FrozenSpanner`](crate::FrozenSpanner) serving artifact carrying
    /// the full metadata: a handle on `parent` (cloned once, shared via
    /// `Arc` from then on), the fault budget and model it was built for,
    /// and the recorded witness fault sets.
    pub fn freeze(&self, parent: &Graph) -> crate::FrozenSpanner {
        crate::FrozenSpanner::assemble(
            &self.spanner,
            Some(std::sync::Arc::new(parent.clone())),
            Some(self.faults),
            self.model,
            self.witnesses.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_spanner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spanner_graph::generators::{complete, cycle, grid, with_uniform_weights};

    #[test]
    fn zero_faults_matches_classic_greedy() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = with_uniform_weights(&complete(14), 1, 30, &mut rng);
        for stretch in [1u64, 3, 5] {
            let classic = greedy_spanner(&g, stretch);
            let ft = FtGreedy::new(&g, stretch).run();
            assert_eq!(
                classic.parent_edge_ids(),
                ft.spanner().parent_edge_ids(),
                "stretch {stretch}"
            );
            // All witnesses are empty at f = 0.
            assert!(ft.witnesses().iter().all(|w| w.is_empty()));
        }
    }

    #[test]
    fn witnesses_match_edges() {
        let g = complete(8);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        assert_eq!(ft.witnesses().len(), ft.spanner().edge_count());
        assert!(ft.witnesses().iter().all(|w| w.len() <= 1));
        assert_eq!(ft.faults(), 1);
        assert_eq!(ft.model(), FaultModel::Vertex);
    }

    #[test]
    fn ft_spanner_grows_with_budget() {
        let g = complete(12);
        let mut sizes = Vec::new();
        for f in 0..3 {
            let ft = FtGreedy::new(&g, 3).faults(f).run();
            sizes.push(ft.spanner().edge_count());
        }
        assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "{sizes:?}");
        assert!(sizes[2] > sizes[0], "budget should change the output here");
    }

    #[test]
    fn cycle_is_fully_kept_under_one_vertex_fault() {
        // C6 with f=1, k=3: losing any vertex makes the cycle a path;
        // every edge is needed.
        let g = cycle(6);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        assert_eq!(ft.spanner().edge_count(), 6);
    }

    #[test]
    fn oracle_kinds_agree_on_small_graphs() {
        let g = grid(3, 3);
        let mut sizes = Vec::new();
        for kind in [
            OracleKind::Branching,
            OracleKind::Exhaustive,
            OracleKind::HittingSet,
            OracleKind::BranchingWith(BranchingConfig {
                use_packing: false,
                use_memo: false,
                use_cut_shortcut: false,
            }),
            OracleKind::Parallel(3),
        ] {
            let ft = FtGreedy::new(&g, 3).faults(1).oracle(kind).run();
            sizes.push(ft.spanner().edge_count());
        }
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "oracle kinds disagree: {sizes:?}"
        );
    }

    #[test]
    fn edge_model_also_runs() {
        let g = complete(8);
        let ft = FtGreedy::new(&g, 3).faults(1).model(FaultModel::Edge).run();
        assert!(ft.spanner().edge_count() >= 8);
        assert_eq!(ft.model(), FaultModel::Edge);
    }

    #[test]
    fn stats_are_populated() {
        let g = complete(8);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        assert!(ft.stats().shortest_path_queries > 0);
        assert!(ft.stats().nodes_explored > 0);
    }
}
