//! The epoch-based query engine — now a thin compatibility shim over
//! the concurrent serving layer in [`serve`](crate::serve).
//!
//! [`QueryEngine`] was the first epoch-serving surface: apply a failure
//! set once ([`QueryEngine::epoch`]), then serve batches against the
//! masked view. Its limitation is structural: `epoch()` /
//! `begin_epoch()` / `route_batch()` all take `&mut self`, so one
//! engine serves exactly one tenant's fault view at a time. The
//! redesigned entry point is [`EpochServer`]
//! — `Send + Sync`, sharable across tenants, with interned fault views,
//! a shared worker pool, and O(Δ) epoch deltas
//! ([`EpochHandle::derive`](crate::serve::EpochHandle::derive)).
//!
//! Every `QueryEngine` now *is* an `EpochServer` session underneath:
//! the mutate-then-query surface is kept (and deprecated) purely so
//! existing callers keep compiling and keep getting bit-identical
//! answers, because the shim funnels into the exact same
//! `serve`-module implementations. Migration map:
//!
//! | old (`QueryEngine`)             | new ([`serve`](crate::serve))                     |
//! |---------------------------------|---------------------------------------------------|
//! | `new(artifact).with_threads(n)` | `EpochServer::new(artifact).with_threads(n)`      |
//! | `engine.epoch(&faults)`         | `let mut h = server.epoch(&faults)`               |
//! | `engine.begin_epoch()`          | `let mut h = server.epoch_clear()`                |
//! | `….fault_vertex(v)` re-epoch    | `h = h.step(EpochDelta::new().fault_vertex(v))`   |
//! | `engine.route_batch(&pairs)`    | `h.route_batch(&pairs)`                           |
//! | `engine.par_route_batch(…)`     | `h.par_route_batch(…)` (pool shared server-wide)  |
//! | `engine.epoch_count()`          | `server.stats().epochs_opened`                    |
//!
//! The serving semantics (epoch model, batch amortization,
//! bit-identical pooled batches, scratch-reuse contract, artifact
//! provenance independence) are documented once, on
//! [`serve`](crate::serve).

use crate::routing::{Route, RouteError};
use crate::serve::{EpochHandle, EpochServer};
use crate::FrozenSpanner;
use spanner_faults::FaultSet;
use spanner_graph::{Dist, EdgeId, FaultMask, NodeId};
use std::sync::Arc;

/// An epoch-based query engine over a shared [`FrozenSpanner`] — a
/// single-tenant compatibility shim over
/// [`EpochServer`] (see the module docs for
/// the migration map). Answers are bit-identical to the serving layer's
/// because they *are* the serving layer's.
///
/// # Examples
///
/// ```
/// use spanner_core::{FtGreedy, QueryEngine};
/// use spanner_faults::FaultSet;
/// use spanner_graph::NodeId;
/// use spanner_graph::generators::complete;
/// use std::sync::Arc;
///
/// let g = complete(8);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let artifact = Arc::new(ft.freeze(&g));
///
/// let mut engine = QueryEngine::new(artifact);
/// // Apply the failure set once, then serve the whole batch against it.
/// # #[allow(deprecated)]
/// engine.epoch(&FaultSet::vertices([NodeId::new(3)]));
/// let routes = engine.route_batch(&[
///     (NodeId::new(0), NodeId::new(7)),
///     (NodeId::new(1), NodeId::new(5)),
/// ]);
/// assert!(routes.iter().all(|r| r.is_ok()));
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    server: EpochServer,
    /// The current epoch's fault state over the spanner (reused across
    /// epochs, grown never shrunk — the original scratch contract).
    mask: FaultMask,
    /// The server session serving the current epoch, materialized
    /// lazily on the first query after a mutation.
    session: Option<EpochHandle>,
    epochs: u64,
}

impl QueryEngine {
    /// Creates a sequential engine over the artifact (its own private
    /// [`EpochServer`]). Add worker threads with
    /// [`QueryEngine::with_threads`] to enable
    /// [`QueryEngine::par_route_batch`].
    pub fn new(frozen: Arc<FrozenSpanner>) -> Self {
        QueryEngine::over(EpochServer::new(frozen))
    }

    /// Creates an engine serving through an existing (possibly shared)
    /// [`EpochServer`] — the bridge form: the engine's epochs intern
    /// into, and its pooled batches run on, the shared server state.
    pub fn over(server: EpochServer) -> Self {
        let frozen = server.artifact();
        let mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
        QueryEngine {
            server,
            mask,
            session: None,
            epochs: 0,
        }
    }

    /// Sets the worker-pool width for parallel batches, delegating to
    /// [`EpochServer::with_threads`] — **the** definition of the thread
    /// convention (`0` = auto, `1` = sequential, `n` = exactly `n`).
    /// The pool belongs to the underlying server, so engines sharing a
    /// server (via [`QueryEngine::over`]) share one set of workers.
    ///
    /// # Panics
    ///
    /// Panics if the server's pool already started working.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.server = self.server.with_threads(threads);
        self
    }

    /// The underlying epoch server (shared state: view intern table,
    /// worker pool, [`ServerStats`](crate::serve::ServerStats)).
    pub fn server(&self) -> &EpochServer {
        &self.server
    }

    /// The shared artifact this engine serves.
    pub fn artifact(&self) -> &Arc<FrozenSpanner> {
        self.server.artifact()
    }

    /// Number of epochs applied through this engine (a reuse
    /// diagnostic: mask work is proportional to epochs, never to
    /// queries). Server-wide counters live in
    /// [`EpochServer::stats`](crate::serve::EpochServer::stats).
    pub fn epoch_count(&self) -> u64 {
        self.epochs
    }

    fn begin_epoch_impl(&mut self) {
        let frozen = self.server.artifact();
        self.mask
            .reset_for(frozen.node_count(), frozen.edge_count());
        self.session = None;
        self.epochs += 1;
    }

    /// Starts a fresh, failure-free epoch (clears the mask in place).
    /// Compose the failure state with [`QueryEngine::fault_vertex`] /
    /// [`QueryEngine::fault_parent_edge`], or use [`QueryEngine::epoch`]
    /// to do both in one call.
    #[deprecated(
        since = "0.1.0",
        note = "QueryEngine is a compatibility shim; open an EpochServer session instead \
                (see the migration table in spanner_core::query)"
    )]
    pub fn begin_epoch(&mut self) -> &mut Self {
        self.begin_epoch_impl();
        self
    }

    /// Fails a vertex for the current epoch.
    #[deprecated(
        since = "0.1.0",
        note = "QueryEngine is a compatibility shim; open an EpochServer session instead \
                (see the migration table in spanner_core::query)"
    )]
    pub fn fault_vertex(&mut self, v: NodeId) -> &mut Self {
        self.session = None;
        self.mask.fault_vertex(v);
        self
    }

    /// Fails a *parent* edge for the current epoch (translated through
    /// the artifact's map; a no-op when the spanner did not keep it).
    #[deprecated(
        since = "0.1.0",
        note = "QueryEngine is a compatibility shim; open an EpochServer session instead \
                (see the migration table in spanner_core::query)"
    )]
    pub fn fault_parent_edge(&mut self, parent_edge: EdgeId) -> &mut Self {
        if let Some(own) = self.server.artifact().spanner_edge_of_parent(parent_edge) {
            self.session = None;
            self.mask.fault_edge(own);
        }
        self
    }

    /// Starts a new epoch under `failures` (vertex faults and/or parent
    /// edge faults): the failure set is applied **once**, here, and every
    /// query until the next epoch reads the resulting masked view.
    #[deprecated(
        since = "0.1.0",
        note = "QueryEngine is a compatibility shim; open an EpochServer session instead \
                (see the migration table in spanner_core::query)"
    )]
    pub fn epoch(&mut self, failures: &FaultSet) -> &mut Self {
        self.begin_epoch_impl();
        let frozen = self.server.artifact();
        frozen.apply_faults(failures, &mut self.mask);
        self
    }

    /// Starts a new epoch from a prebuilt mask over the *spanner's*
    /// graph (the [`Spanner::fault_mask`](crate::Spanner::fault_mask)
    /// form), copied in place.
    #[deprecated(
        since = "0.1.0",
        note = "QueryEngine is a compatibility shim; open an EpochServer session instead \
                (see the migration table in spanner_core::query)"
    )]
    pub fn epoch_from_spanner_mask(&mut self, mask: &FaultMask) -> &mut Self {
        self.begin_epoch_impl();
        self.mask.copy_from(mask);
        self
    }

    /// The current epoch's fault mask over the spanner.
    pub fn epoch_mask(&self) -> &FaultMask {
        &self.mask
    }

    /// The server session for the current epoch state, (re)opened
    /// lazily so that a burst of mutator calls costs one view build.
    fn session(&mut self) -> &mut EpochHandle {
        if self.session.is_none() {
            self.session = Some(self.server.epoch_from_spanner_mask(&self.mask));
        }
        self.session.as_mut().expect("materialized above")
    }

    /// Routes `from → to` in the current epoch.
    ///
    /// # Errors
    ///
    /// [`RouteError::EndpointFailed`] if an endpoint is failed in this
    /// epoch; [`RouteError::Unreachable`] if the survivors are
    /// disconnected (which an `f`-FT spanner guarantees cannot happen
    /// while at most `f` components are down and the parent stays
    /// connected).
    pub fn route(&mut self, from: NodeId, to: NodeId) -> Result<Route, RouteError> {
        self.session().route(from, to)
    }

    /// Costs `from → to` in the current epoch without extracting the
    /// path — no allocation at all, the query-heavy-loop form.
    ///
    /// # Errors
    ///
    /// Same contract as [`QueryEngine::route`].
    pub fn route_cost(&mut self, from: NodeId, to: NodeId) -> Result<Dist, RouteError> {
        self.session().route_cost(from, to)
    }

    /// Serves a whole batch against the current epoch, one answer per
    /// pair in input order, amortizing one Dijkstra search per distinct
    /// query source (see the [`serve`](crate::serve) module's
    /// bit-identity notes). A failed
    /// or unreachable pair yields its error in its own slot without
    /// disturbing the rest of the batch.
    pub fn route_batch(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<Result<Route, RouteError>> {
        self.session().route_batch(pairs)
    }

    /// Like [`QueryEngine::route_batch`], fanned out over the server's
    /// shared worker pool — and bit-identical to it: same routes, same
    /// edges, same distances, same errors, in the same order, regardless
    /// of thread count or scheduling.
    pub fn par_route_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Result<Route, RouteError>> {
        self.session().par_route_batch(pairs)
    }
}

#[cfg(test)]
#[allow(deprecated)] // the shim's own tests deliberately pin the deprecated surface
mod tests {
    use super::*;
    use crate::routing::ResilientRouter;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, cycle};

    fn artifact(n: usize, f: usize) -> Arc<FrozenSpanner> {
        let g = complete(n);
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        Arc::new(ft.freeze(&g))
    }

    fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
        (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (NodeId::new(u), NodeId::new(v))))
            .collect()
    }

    #[test]
    fn engine_matches_router_per_query() {
        let frozen = artifact(9, 1);
        let g = complete(9);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let mut router = ResilientRouter::new(ft.into_spanner());
        let mut engine = QueryEngine::new(frozen);
        for failed in 0..9usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            engine.epoch(&failures);
            for &(u, v) in &all_pairs(9) {
                assert_eq!(
                    engine.route(u, v),
                    router.route(u, v, &failures),
                    "{u}->{v} failing v{failed}"
                );
                assert_eq!(
                    engine.route_cost(u, v),
                    engine.route(u, v).map(|r| r.dist),
                    "cost/route disagree {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_sequential() {
        let frozen = artifact(10, 1);
        let pairs = all_pairs(10);
        for failed in [0usize, 4, 9] {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            let mut seq = QueryEngine::new(Arc::clone(&frozen));
            seq.epoch(&failures);
            let expected = seq.route_batch(&pairs);
            for threads in [2usize, 3, 8] {
                let mut par = QueryEngine::new(Arc::clone(&frozen)).with_threads(threads);
                par.epoch(&failures);
                assert_eq!(
                    par.par_route_batch(&pairs),
                    expected,
                    "threads={threads} failing v{failed}"
                );
            }
        }
    }

    #[test]
    fn pool_persists_across_epochs_and_batches() {
        let frozen = artifact(8, 1);
        let pairs = all_pairs(8);
        let mut engine = QueryEngine::new(Arc::clone(&frozen)).with_threads(2);
        for failed in 0..8usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            engine.epoch(&failures);
            let mut fresh = QueryEngine::new(Arc::clone(&frozen));
            fresh.epoch(&failures);
            assert_eq!(
                engine.par_route_batch(&pairs),
                fresh.route_batch(&pairs),
                "epoch state leaked at v{failed}"
            );
        }
        assert_eq!(engine.epoch_count(), 8);
    }

    #[test]
    fn engines_sharing_a_server_share_views_and_pool() {
        let server = EpochServer::new(artifact(8, 1)).with_threads(2);
        let pairs = all_pairs(8);
        let faults = FaultSet::vertices([NodeId::new(3)]);
        let mut a = QueryEngine::over(server.clone());
        let mut b = QueryEngine::over(server.clone());
        a.epoch(&faults);
        b.epoch(&faults);
        assert_eq!(a.par_route_batch(&pairs), b.route_batch(&pairs));
        let stats = server.stats();
        assert_eq!(stats.views_shared, 1, "the two engines share one view");
    }

    #[test]
    fn failed_endpoint_isolated_within_batch() {
        let frozen = artifact(8, 1);
        let mut engine = QueryEngine::new(frozen);
        engine.epoch(&FaultSet::vertices([NodeId::new(3)]));
        let pairs = [
            (NodeId::new(0), NodeId::new(7)),
            (NodeId::new(3), NodeId::new(5)),
            (NodeId::new(1), NodeId::new(2)),
        ];
        let answers = engine.route_batch(&pairs);
        assert_eq!(answers[1], Err(RouteError::EndpointFailed(NodeId::new(3))));
        assert!(answers[0].is_ok() && answers[2].is_ok());
    }

    #[test]
    fn parent_edge_epochs_translate() {
        let g = cycle(6);
        let full = crate::Spanner::from_parent_edges(&g, g.edge_ids(), 3);
        let mut engine = QueryEngine::new(Arc::new(full.freeze()));
        engine.epoch(&FaultSet::edges([EdgeId::new(0)]));
        let route = engine.route(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(route.dist, Dist::finite(5), "must detour the long way");
        // Composed epoch mutators behave like the one-shot form.
        engine.begin_epoch().fault_parent_edge(EdgeId::new(0));
        assert_eq!(
            engine.route(NodeId::new(0), NodeId::new(1)).unwrap().dist,
            Dist::finite(5)
        );
    }

    #[test]
    fn empty_and_tiny_batches() {
        let frozen = artifact(6, 1);
        let mut engine = QueryEngine::new(frozen).with_threads(4);
        engine.epoch(&FaultSet::vertices([]));
        assert!(engine.par_route_batch(&[]).is_empty());
        let one = engine.par_route_batch(&[(NodeId::new(0), NodeId::new(5))]);
        assert_eq!(one.len(), 1);
        assert!(one[0].is_ok());
    }
}
