//! The epoch-based query engine: batch serving over a frozen spanner.
//!
//! [`ResilientRouter`](crate::routing::ResilientRouter) answers one
//! query at a time and re-applies the failure set on every call — the
//! right shape for a one-off lookup, the wrong one for a serving loop
//! where thousands of queries arrive under the *same* failure state.
//! [`QueryEngine`] restructures the read path around **fault epochs**:
//!
//! * [`QueryEngine::epoch`] applies a failure set **once** into a
//!   reusable masked view of the shared [`FrozenSpanner`] artifact
//!   (vertex faults directly, parent-edge faults through the artifact's
//!   O(1) translation map);
//! * every subsequent [`QueryEngine::route`] /
//!   [`QueryEngine::route_cost`] / [`QueryEngine::route_batch`] call is
//!   answered against that epoch with zero per-query setup;
//! * [`QueryEngine::route_batch`] additionally amortizes one Dijkstra
//!   search per **distinct query source**: since Dijkstra settles each
//!   vertex exactly once, a settled target's path is the same whether
//!   the search stopped at that target or ran on, so same-source
//!   queries can share a single [`DijkstraEngine::search_from`] and pay
//!   only per-target extraction — without changing a bit of any answer;
//! * [`QueryEngine::par_route_batch`] fans a batch out over a persistent
//!   worker pool (the same pattern as the construction-side
//!   `ParallelBranchingOracle`) and reassembles the answers in input
//!   order — **bit-identical** to the sequential batch, routes, edges,
//!   distances and errors alike (property-tested).
//!
//! # Scratch-reuse contract
//!
//! Mirroring the construction-side oracles, the engine's hot state is
//! allocated once and recycled:
//!
//! 1. **The epoch mask grows, never shrinks.** [`QueryEngine::begin_epoch`]
//!    clears the mask in place ([`FaultMask::reset_for`]); steady-state
//!    epochs perform no allocation.
//! 2. **One Dijkstra engine + path scratch per serving thread.** The
//!    sequential path owns one pair; every pool worker owns its own,
//!    alive for the engine's whole lifetime. Query results are pure
//!    functions of `(artifact, mask, pair)`, so per-thread scratch never
//!    leaks into answers.
//! 3. **Workers read, never write.** The artifact is shared as
//!    `Arc<FrozenSpanner>` and the epoch mask crosses to the pool as an
//!    `Arc<FaultMask>` snapshot taken at most once per epoch.
//!
//! Determinism: the pool chunks the batch by index and sorts the
//! per-chunk answers back into input order; each answer is computed by
//! the same monomorphized Dijkstra over the same frozen adjacency with
//! the same tie-breaks as the sequential path, so thread count and
//! scheduling cannot influence a single bit of the output.
//!
//! The engine does not care where its artifact came from: one built in
//! this process ([`Spanner::freeze`](crate::Spanner::freeze) /
//! [`FtSpanner::freeze`](crate::FtSpanner::freeze)) and one loaded from
//! a persisted file
//! ([`FrozenSpanner::decode`](crate::FrozenSpanner::decode), see the
//! [`frozen`](crate::frozen) module docs) serve bit-identical answers —
//! that is the build-once/serve-many contract, property-tested in
//! `tests/artifact_props.rs`.

use crate::routing::{Route, RouteError};
use crate::FrozenSpanner;
use spanner_faults::FaultSet;
use spanner_graph::{DijkstraEngine, Dist, EdgeId, FaultMask, NodeId, PathScratch};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Serves one pair against the frozen artifact under `mask`. The single
/// implementation every path (sequential, batch, pool worker) routes
/// through, so they cannot drift.
fn route_one(
    frozen: &FrozenSpanner,
    engine: &mut DijkstraEngine,
    scratch: &mut PathScratch,
    mask: &FaultMask,
    from: NodeId,
    to: NodeId,
) -> Result<Route, RouteError> {
    for v in [from, to] {
        if mask.is_vertex_faulted(v) {
            return Err(RouteError::EndpointFailed(v));
        }
    }
    if engine.shortest_path_bounded_into(frozen.csr(), from, to, Dist::INFINITE, mask, scratch) {
        Ok(route_from_scratch(scratch))
    } else {
        Err(RouteError::Unreachable { from, to })
    }
}

/// Converts the freshly extracted scratch into an owned [`Route`].
fn route_from_scratch(scratch: &PathScratch) -> Route {
    Route {
        nodes: scratch.nodes().to_vec(),
        edges: scratch.edges().to_vec(),
        dist: scratch.dist(),
    }
}

/// Serves a whole batch under `mask`, amortizing one Dijkstra search per
/// **distinct source**: queries sharing a source are answered by a single
/// [`DijkstraEngine::search_from`] plus per-target extraction, singleton
/// sources by an early-stopped pair query. Answers land in input order
/// and are bit-identical to serving every pair through [`route_one`]
/// (Dijkstra settles each vertex once, so a settled target's path does
/// not depend on where the search stopped — pinned by the property
/// tests). Shared by the sequential batch path and every pool worker.
fn serve_batch(
    frozen: &FrozenSpanner,
    engine: &mut DijkstraEngine,
    scratch: &mut PathScratch,
    mask: &FaultMask,
    pairs: &[(NodeId, NodeId)],
) -> Vec<Result<Route, RouteError>> {
    let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
    order.sort_unstable_by_key(|&i| pairs[i as usize].0);
    let mut out: Vec<Option<Result<Route, RouteError>>> = vec![None; pairs.len()];
    let mut at = 0usize;
    while at < order.len() {
        let from = pairs[order[at] as usize].0;
        let mut end = at + 1;
        while end < order.len() && pairs[order[end] as usize].0 == from {
            end += 1;
        }
        let group = &order[at..end];
        at = end;
        if group.len() == 1 {
            let i = group[0] as usize;
            let (from, to) = pairs[i];
            out[i] = Some(route_one(frozen, engine, scratch, mask, from, to));
            continue;
        }
        if mask.is_vertex_faulted(from) {
            for &i in group {
                out[i as usize] = Some(Err(RouteError::EndpointFailed(from)));
            }
            continue;
        }
        engine.search_from(frozen.csr(), from, Dist::INFINITE, mask);
        for &i in group {
            let to = pairs[i as usize].1;
            out[i as usize] = Some(if mask.is_vertex_faulted(to) {
                Err(RouteError::EndpointFailed(to))
            } else if engine.extract_path_into(to, Dist::INFINITE, scratch) {
                Ok(route_from_scratch(scratch))
            } else {
                Err(RouteError::Unreachable { from, to })
            });
        }
    }
    out.into_iter()
        .map(|answer| answer.expect("every index served"))
        .collect()
}

/// One contiguous slice of a parallel batch, handed to a pool worker.
struct BatchJob {
    seq: u64,
    chunk: usize,
    pairs: Vec<(NodeId, NodeId)>,
    mask: Arc<FaultMask>,
}

/// A worker's answers for one chunk, in the chunk's own order.
type BatchAnswer = (u64, usize, Vec<Result<Route, RouteError>>);

/// The persistent batch pool: shared job queue, result channel, joined
/// on drop.
struct BatchPool {
    jobs: mpsc::Sender<BatchJob>,
    results: mpsc::Receiver<BatchAnswer>,
    handles: Vec<JoinHandle<()>>,
}

/// Wrapper so the pool (whose channels are not `Debug`) can live inside
/// a `#[derive(Debug)]` struct.
struct BatchPoolHandle(BatchPool);

impl std::fmt::Debug for BatchPoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchPool")
            .field("workers", &self.0.handles.len())
            .finish()
    }
}

/// Chunks outstanding per worker in a parallel batch (finer than one
/// chunk per thread so an unlucky chunk of long queries cannot straggle
/// the whole batch).
const CHUNKS_PER_THREAD: usize = 4;

/// An epoch-based query engine over a shared [`FrozenSpanner`] (see the
/// module docs for the epoch model and the scratch-reuse contract).
///
/// # Examples
///
/// ```
/// use spanner_core::{FtGreedy, QueryEngine};
/// use spanner_faults::FaultSet;
/// use spanner_graph::NodeId;
/// use spanner_graph::generators::complete;
/// use std::sync::Arc;
///
/// let g = complete(8);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let artifact = Arc::new(ft.freeze(&g));
///
/// let mut engine = QueryEngine::new(artifact);
/// // Apply the failure set once, then serve the whole batch against it.
/// engine.epoch(&FaultSet::vertices([NodeId::new(3)]));
/// let routes = engine.route_batch(&[
///     (NodeId::new(0), NodeId::new(7)),
///     (NodeId::new(1), NodeId::new(5)),
/// ]);
/// assert!(routes.iter().all(|r| r.is_ok()));
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    frozen: Arc<FrozenSpanner>,
    /// The current epoch's fault state over the spanner (reused across
    /// epochs; see the scratch contract).
    mask: FaultMask,
    /// Lazily taken `Arc` snapshot of `mask` for the pool, invalidated
    /// by any epoch mutation (at most one snapshot per epoch).
    snapshot: Option<Arc<FaultMask>>,
    engine: DijkstraEngine,
    path: PathScratch,
    epochs: u64,
    threads: usize,
    pool: Option<BatchPoolHandle>,
    seq: u64,
}

impl QueryEngine {
    /// Creates a sequential engine over the artifact. Add worker threads
    /// with [`QueryEngine::with_threads`] to enable
    /// [`QueryEngine::par_route_batch`].
    pub fn new(frozen: Arc<FrozenSpanner>) -> Self {
        let mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
        QueryEngine {
            frozen,
            mask,
            snapshot: None,
            engine: DijkstraEngine::new(),
            path: PathScratch::new(),
            epochs: 0,
            threads: 1,
            pool: None,
            seq: 0,
        }
    }

    /// Sets the worker-pool size for parallel batches (at least 1; with
    /// 1, [`QueryEngine::par_route_batch`] degrades to the sequential
    /// batch). Workers are spawned lazily on the first parallel batch.
    ///
    /// # Panics
    ///
    /// Panics if the pool already started working (workers bake the
    /// artifact in at spawn time).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(
            self.pool.is_none(),
            "configure the engine before its first parallel batch"
        );
        self.threads = threads.max(1);
        self
    }

    /// The shared artifact this engine serves.
    pub fn artifact(&self) -> &Arc<FrozenSpanner> {
        &self.frozen
    }

    /// Number of epochs applied so far (a reuse diagnostic: mask work is
    /// proportional to epochs, never to queries).
    pub fn epoch_count(&self) -> u64 {
        self.epochs
    }

    /// Starts a fresh, failure-free epoch (clears the mask in place).
    /// Compose the failure state with [`QueryEngine::fault_vertex`] /
    /// [`QueryEngine::fault_parent_edge`], or use [`QueryEngine::epoch`]
    /// to do both in one call.
    pub fn begin_epoch(&mut self) -> &mut Self {
        self.mask
            .reset_for(self.frozen.node_count(), self.frozen.edge_count());
        self.snapshot = None;
        self.epochs += 1;
        self
    }

    /// Fails a vertex for the current epoch.
    pub fn fault_vertex(&mut self, v: NodeId) -> &mut Self {
        self.snapshot = None;
        self.mask.fault_vertex(v);
        self
    }

    /// Fails a *parent* edge for the current epoch (translated through
    /// the artifact's map; a no-op when the spanner did not keep it).
    pub fn fault_parent_edge(&mut self, parent_edge: EdgeId) -> &mut Self {
        if let Some(own) = self.frozen.spanner_edge_of_parent(parent_edge) {
            self.snapshot = None;
            self.mask.fault_edge(own);
        }
        self
    }

    /// Starts a new epoch under `failures` (vertex faults and/or parent
    /// edge faults): the failure set is applied **once**, here, and every
    /// query until the next epoch reads the resulting masked view.
    pub fn epoch(&mut self, failures: &FaultSet) -> &mut Self {
        self.begin_epoch();
        self.frozen.apply_faults(failures, &mut self.mask);
        self
    }

    /// Starts a new epoch from a prebuilt mask over the *spanner's*
    /// graph (the [`Spanner::fault_mask`](crate::Spanner::fault_mask)
    /// form), copied in place — the compatibility entrance for callers
    /// that already hold spanner-id masks rather than parent-id fault
    /// sets. Costs one mask copy per call; prefer [`QueryEngine::epoch`]
    /// when the failure state is a [`FaultSet`].
    pub fn epoch_from_spanner_mask(&mut self, mask: &FaultMask) -> &mut Self {
        self.begin_epoch();
        self.mask.copy_from(mask);
        self
    }

    /// The current epoch's fault mask over the spanner.
    pub fn epoch_mask(&self) -> &FaultMask {
        &self.mask
    }

    /// Routes `from → to` in the current epoch.
    ///
    /// # Errors
    ///
    /// [`RouteError::EndpointFailed`] if an endpoint is failed in this
    /// epoch; [`RouteError::Unreachable`] if the survivors are
    /// disconnected (which an `f`-FT spanner guarantees cannot happen
    /// while at most `f` components are down and the parent stays
    /// connected).
    pub fn route(&mut self, from: NodeId, to: NodeId) -> Result<Route, RouteError> {
        route_one(
            &self.frozen,
            &mut self.engine,
            &mut self.path,
            &self.mask,
            from,
            to,
        )
    }

    /// Costs `from → to` in the current epoch without extracting the
    /// path — no allocation at all, the query-heavy-loop form.
    ///
    /// # Errors
    ///
    /// Same contract as [`QueryEngine::route`].
    pub fn route_cost(&mut self, from: NodeId, to: NodeId) -> Result<Dist, RouteError> {
        for v in [from, to] {
            if self.mask.is_vertex_faulted(v) {
                return Err(RouteError::EndpointFailed(v));
            }
        }
        self.engine
            .dist_bounded(self.frozen.csr(), from, to, Dist::INFINITE, &self.mask)
            .ok_or(RouteError::Unreachable { from, to })
    }

    /// Serves a whole batch against the current epoch, one answer per
    /// pair in input order, amortizing one Dijkstra search per distinct
    /// query source (see `serve_batch`'s bit-identity note). A failed
    /// or unreachable pair yields its error in its own slot without
    /// disturbing the rest of the batch.
    pub fn route_batch(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<Result<Route, RouteError>> {
        serve_batch(
            &self.frozen,
            &mut self.engine,
            &mut self.path,
            &self.mask,
            pairs,
        )
    }

    /// Like [`QueryEngine::route_batch`], fanned out over the persistent
    /// worker pool — and bit-identical to it: same routes, same edges,
    /// same distances, same errors, in the same order, regardless of
    /// thread count or scheduling.
    pub fn par_route_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Result<Route, RouteError>> {
        if self.threads <= 1 || pairs.len() <= 1 {
            return self.route_batch(pairs);
        }
        self.ensure_pool();
        if self.snapshot.is_none() {
            self.snapshot = Some(Arc::new(self.mask.clone()));
        }
        let mask = Arc::clone(self.snapshot.as_ref().expect("taken above"));
        self.seq += 1;
        let chunk_size = pairs
            .len()
            .div_ceil(self.threads * CHUNKS_PER_THREAD)
            .max(1);
        let pool = &self.pool.as_ref().expect("pool spawned").0;
        let mut chunks = 0usize;
        for (chunk, slice) in pairs.chunks(chunk_size).enumerate() {
            pool.jobs
                .send(BatchJob {
                    seq: self.seq,
                    chunk,
                    pairs: slice.to_vec(),
                    mask: Arc::clone(&mask),
                })
                .expect("batch pool alive");
            chunks += 1;
        }
        let mut records: Vec<(usize, Vec<Result<Route, RouteError>>)> = Vec::with_capacity(chunks);
        while records.len() < chunks {
            // recv_timeout + liveness check rather than a bare recv: if a
            // worker dies mid-chunk (panic), its answer never arrives but
            // the channel stays open through the survivors — a bare recv
            // would hang the serving loop instead of failing loudly.
            match pool.results.recv_timeout(Duration::from_millis(100)) {
                Ok((seq, chunk, answers)) => {
                    // Drop answers from an earlier batch that aborted
                    // mid-drain (a caught worker panic): counting them
                    // toward this batch's quota would attribute routes to
                    // the wrong pairs.
                    if seq == self.seq {
                        records.push((chunk, answers));
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    assert!(
                        !pool.handles.iter().any(|h| h.is_finished()),
                        "a batch worker died mid-query"
                    );
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("batch pool shut down mid-query");
                }
            }
        }
        records.sort_by_key(|(chunk, _)| *chunk);
        records
            .into_iter()
            .flat_map(|(_, answers)| answers)
            .collect()
    }

    /// Spawns the persistent workers on first use.
    fn ensure_pool(&mut self) {
        if self.pool.is_some() {
            return;
        }
        let (job_tx, job_rx) = mpsc::channel::<BatchJob>();
        let (result_tx, result_rx) = mpsc::channel::<BatchAnswer>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut handles = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            let jobs = Arc::clone(&job_rx);
            let results = result_tx.clone();
            let frozen = Arc::clone(&self.frozen);
            handles.push(std::thread::spawn(move || {
                // One Dijkstra engine + path scratch per worker, alive for
                // the pool's lifetime: scratch persists across every batch
                // of every epoch.
                let mut engine = DijkstraEngine::new();
                let mut path = PathScratch::new();
                loop {
                    let job = {
                        let rx = jobs.lock().expect("job queue lock");
                        match rx.recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped
                        }
                    };
                    let answers =
                        serve_batch(&frozen, &mut engine, &mut path, &job.mask, &job.pairs);
                    let (seq, chunk) = (job.seq, job.chunk);
                    // Release the mask snapshot before reporting, so the
                    // epoch that follows a drained batch sees it freed.
                    drop(job);
                    if results.send((seq, chunk, answers)).is_err() {
                        return; // pool dropped mid-flight
                    }
                }
            }));
        }
        self.pool = Some(BatchPoolHandle(BatchPool {
            jobs: job_tx,
            results: result_rx,
            handles,
        }));
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        if let Some(BatchPoolHandle(pool)) = self.pool.take() {
            drop(pool.jobs); // closes the queue; workers exit their loop
            drop(pool.results);
            for handle in pool.handles {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::ResilientRouter;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, cycle};

    fn artifact(n: usize, f: usize) -> Arc<FrozenSpanner> {
        let g = complete(n);
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        Arc::new(ft.freeze(&g))
    }

    fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
        (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (NodeId::new(u), NodeId::new(v))))
            .collect()
    }

    #[test]
    fn engine_matches_router_per_query() {
        let frozen = artifact(9, 1);
        let g = complete(9);
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let mut router = ResilientRouter::new(ft.into_spanner());
        let mut engine = QueryEngine::new(frozen);
        for failed in 0..9usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            engine.epoch(&failures);
            for &(u, v) in &all_pairs(9) {
                assert_eq!(
                    engine.route(u, v),
                    router.route(u, v, &failures),
                    "{u}->{v} failing v{failed}"
                );
                assert_eq!(
                    engine.route_cost(u, v),
                    engine.route(u, v).map(|r| r.dist),
                    "cost/route disagree {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn parallel_batch_is_bit_identical_to_sequential() {
        let frozen = artifact(10, 1);
        let pairs = all_pairs(10);
        for failed in [0usize, 4, 9] {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            let mut seq = QueryEngine::new(Arc::clone(&frozen));
            seq.epoch(&failures);
            let expected = seq.route_batch(&pairs);
            for threads in [2usize, 3, 8] {
                let mut par = QueryEngine::new(Arc::clone(&frozen)).with_threads(threads);
                par.epoch(&failures);
                assert_eq!(
                    par.par_route_batch(&pairs),
                    expected,
                    "threads={threads} failing v{failed}"
                );
            }
        }
    }

    #[test]
    fn pool_persists_across_epochs_and_batches() {
        let frozen = artifact(8, 1);
        let pairs = all_pairs(8);
        let mut engine = QueryEngine::new(Arc::clone(&frozen)).with_threads(2);
        for failed in 0..8usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            engine.epoch(&failures);
            let mut fresh = QueryEngine::new(Arc::clone(&frozen));
            fresh.epoch(&failures);
            assert_eq!(
                engine.par_route_batch(&pairs),
                fresh.route_batch(&pairs),
                "epoch state leaked at v{failed}"
            );
        }
        assert_eq!(engine.epoch_count(), 8);
    }

    #[test]
    fn failed_endpoint_isolated_within_batch() {
        let frozen = artifact(8, 1);
        let mut engine = QueryEngine::new(frozen);
        engine.epoch(&FaultSet::vertices([NodeId::new(3)]));
        let pairs = [
            (NodeId::new(0), NodeId::new(7)),
            (NodeId::new(3), NodeId::new(5)),
            (NodeId::new(1), NodeId::new(2)),
        ];
        let answers = engine.route_batch(&pairs);
        assert_eq!(answers[1], Err(RouteError::EndpointFailed(NodeId::new(3))));
        assert!(answers[0].is_ok() && answers[2].is_ok());
    }

    #[test]
    fn parent_edge_epochs_translate() {
        let g = cycle(6);
        let full = crate::Spanner::from_parent_edges(&g, g.edge_ids(), 3);
        let mut engine = QueryEngine::new(Arc::new(full.freeze()));
        engine.epoch(&FaultSet::edges([EdgeId::new(0)]));
        let route = engine.route(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(route.dist, Dist::finite(5), "must detour the long way");
        // Composed epoch mutators behave like the one-shot form.
        engine.begin_epoch().fault_parent_edge(EdgeId::new(0));
        assert_eq!(
            engine.route(NodeId::new(0), NodeId::new(1)).unwrap().dist,
            Dist::finite(5)
        );
    }

    #[test]
    fn empty_and_tiny_batches() {
        let frozen = artifact(6, 1);
        let mut engine = QueryEngine::new(frozen).with_threads(4);
        engine.epoch(&FaultSet::vertices([]));
        assert!(engine.par_route_batch(&[]).is_empty());
        let one = engine.par_route_batch(&[(NodeId::new(0), NodeId::new(5))]);
        assert_eq!(one.len(), 1);
        assert!(one[0].is_ok());
    }
}
