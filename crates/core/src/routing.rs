//! Route values, routing errors, and stretch auditing.
//!
//! Serving happens in [`serve`](crate::serve): freeze the spanner
//! ([`Spanner::freeze`](crate::Spanner::freeze)), open
//! [`EpochServer`](crate::serve::EpochServer) sessions, and answer
//! queries through them (or through the primitive
//! [`serve::route_one`](crate::serve::route_one) reference). This
//! module holds what those answers are made of — [`Route`] and
//! [`RouteError`], with the stable error-code taxonomy — plus
//! [`stretch_against`], the audit that prices a served route against
//! the surviving *parent* graph.
//!
//! (The one-query-at-a-time `ResilientRouter` and the mutate-then-query
//! `QueryEngine` shims that used to live here and in `query` were
//! deprecated in PR 6 and are gone; every caller speaks to the serving
//! layer directly and gets bit-identical answers, because the shims
//! were already routing through it.)

use spanner_faults::FaultSet;
use spanner_graph::{DijkstraEngine, Dist, EdgeId, FaultMask, Graph, NodeId};

/// A route served from a frozen spanner artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Vertices from source to target inclusive.
    pub nodes: Vec<NodeId>,
    /// Spanner edges in path order.
    pub edges: Vec<EdgeId>,
    /// Total route weight.
    pub dist: Dist,
}

/// Routing errors.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// Source or target is currently failed.
    EndpointFailed(NodeId),
    /// No surviving route exists in the spanner.
    Unreachable {
        /// The query source.
        from: NodeId,
        /// The query target.
        to: NodeId,
    },
}

/// Every stable [`RouteError`] code, one per variant; pinned together
/// with the decode-path codes by `tests/error_taxonomy.rs`.
pub const ROUTE_ERROR_CODES: &[&str] = &["route/endpoint-failed", "route/unreachable"];

impl RouteError {
    /// A stable, machine-readable error code (part of the public error
    /// taxonomy: codes never change meaning; new variants get new
    /// codes). Match on codes, not on variants, when forward
    /// compatibility matters — the enum is `#[non_exhaustive]`.
    pub fn code(&self) -> &'static str {
        match self {
            RouteError::EndpointFailed(_) => "route/endpoint-failed",
            RouteError::Unreachable { .. } => "route/unreachable",
        }
    }
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::EndpointFailed(v) => write!(f, "endpoint {v} is failed"),
            RouteError::Unreachable { from, to } => {
                write!(f, "no surviving route from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The achieved stretch of a route against the parent graph under the
/// same failures: `1.0` means the route is optimal; `None` if the
/// parent itself has no surviving path (then any route is a bonus) or
/// the route is empty.
///
/// This is the audit side of the spanner contract — an `f`-FT
/// `k`-spanner promises every in-budget answer stays within `k×` of
/// what the surviving *parent* would charge.
///
/// # Examples
///
/// ```
/// use spanner_core::{routing::stretch_against, serve::EpochServer, FtGreedy};
/// use spanner_faults::FaultSet;
/// use spanner_graph::{generators::complete, NodeId};
/// use std::sync::Arc;
///
/// let g = complete(8);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let server = EpochServer::new(Arc::new(ft.freeze(&g)));
///
/// let failed = FaultSet::vertices([NodeId::new(3)]);
/// let route = server.epoch(&failed).route(NodeId::new(0), NodeId::new(7))?;
/// let stretch = stretch_against(&g, &route, &failed).unwrap();
/// assert!(stretch <= 3.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn stretch_against(parent: &Graph, route: &Route, failures: &FaultSet) -> Option<f64> {
    let (from, to) = (*route.nodes.first()?, *route.nodes.last()?);
    let mut parent_mask = FaultMask::for_graph(parent);
    for v in failures.vertex_faults() {
        parent_mask.fault_vertex(*v);
    }
    for e in failures.edge_faults() {
        parent_mask.fault_edge(*e);
    }
    let best =
        DijkstraEngine::new().dist_bounded(parent, from, to, Dist::INFINITE, &parent_mask)?;
    let achieved = route.dist.value()? as f64;
    Some(achieved / best.value().max(Some(1))? as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::EpochServer;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, cycle};
    use std::sync::Arc;

    fn server_over_complete(n: usize, f: usize) -> (Graph, EpochServer) {
        let g = complete(n);
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let server = EpochServer::new(Arc::new(ft.freeze(&g)));
        (g, server)
    }

    #[test]
    fn routes_within_stretch_with_no_failures() {
        let (g, server) = server_over_complete(10, 1);
        let empty = FaultSet::vertices([]);
        let mut session = server.epoch(&empty);
        for u in 0..10 {
            for v in (u + 1)..10 {
                let route = session.route(NodeId::new(u), NodeId::new(v)).unwrap();
                assert!(route.dist <= Dist::finite(3));
                let stretch = stretch_against(&g, &route, &empty).unwrap();
                assert!(stretch <= 3.0);
            }
        }
    }

    #[test]
    fn survives_every_single_vertex_failure() {
        let (g, server) = server_over_complete(9, 1);
        for failed in 0..9usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            let mut session = server.epoch(&failures);
            for u in 0..9 {
                for v in (u + 1)..9 {
                    if u == failed || v == failed {
                        continue;
                    }
                    let route = session.route(NodeId::new(u), NodeId::new(v)).unwrap();
                    let stretch = stretch_against(&g, &route, &failures).unwrap();
                    assert!(stretch <= 3.0, "stretch {stretch} after failing v{failed}");
                }
            }
        }
    }

    #[test]
    fn endpoint_failure_is_reported() {
        let (_, server) = server_over_complete(6, 1);
        let failures = FaultSet::vertices([NodeId::new(2)]);
        let err = server
            .epoch(&failures)
            .route(NodeId::new(2), NodeId::new(4))
            .unwrap_err();
        assert_eq!(err, RouteError::EndpointFailed(NodeId::new(2)));
        assert!(err.to_string().contains("v2"));
    }

    #[test]
    fn unreachable_is_reported_beyond_budget() {
        // A plain (f=0) 3-spanner of C4 drops one edge (the detour has
        // exactly 3 hops); failing an interior vertex of the remaining
        // path disconnects survivors.
        let g = cycle(4);
        let plain = crate::greedy_spanner(&g, 3);
        assert!(plain.edge_count() < 4);
        let server = EpochServer::new(Arc::new(plain.freeze()));
        // Find some failure that disconnects a pair.
        let mut saw_unreachable = false;
        for failed in 0..4usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            let mut session = server.epoch(&failures);
            for u in 0..4 {
                for v in (u + 1)..4 {
                    if u == failed || v == failed {
                        continue;
                    }
                    if let Err(RouteError::Unreachable { .. }) =
                        session.route(NodeId::new(u), NodeId::new(v))
                    {
                        saw_unreachable = true;
                    }
                }
            }
        }
        assert!(
            saw_unreachable,
            "under-built spanner must disconnect somewhere"
        );
    }

    #[test]
    fn route_cost_matches_route_dist() {
        let (_, server) = server_over_complete(9, 1);
        for failed in 0..9usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            let mut session = server.epoch(&failures);
            for u in 0..9 {
                for v in (u + 1)..9 {
                    let (u, v) = (NodeId::new(u), NodeId::new(v));
                    let by_route = session.route(u, v).map(|r| r.dist);
                    let by_cost = session.route_cost(u, v);
                    assert_eq!(by_route, by_cost, "{u}->{v} failing v{failed}");
                }
            }
        }
    }

    #[test]
    fn route_cost_reports_masked_endpoint() {
        let (_, server) = server_over_complete(6, 1);
        let err = server
            .epoch(&FaultSet::vertices([NodeId::new(2)]))
            .route_cost(NodeId::new(2), NodeId::new(4))
            .unwrap_err();
        assert_eq!(err, RouteError::EndpointFailed(NodeId::new(2)));
    }

    #[test]
    fn parent_edge_failures_translate() {
        let g = cycle(6);
        let full = crate::Spanner::from_parent_edges(&g, g.edge_ids(), 3);
        let server = EpochServer::new(Arc::new(full.freeze()));
        // Fail one parent edge; the route detours the long way.
        let failures = FaultSet::edges([EdgeId::new(0)]);
        let route = server
            .epoch(&failures)
            .route(NodeId::new(0), NodeId::new(1))
            .unwrap();
        assert_eq!(route.dist, Dist::finite(5));
    }

    #[test]
    fn route_structure_is_consistent() {
        let (_, server) = server_over_complete(8, 1);
        let failures = FaultSet::vertices([NodeId::new(5)]);
        let route = server
            .epoch(&failures)
            .route(NodeId::new(0), NodeId::new(7))
            .unwrap();
        assert_eq!(*route.nodes.first().unwrap(), NodeId::new(0));
        assert_eq!(*route.nodes.last().unwrap(), NodeId::new(7));
        assert_eq!(route.edges.len() + 1, route.nodes.len());
        assert!(!route.nodes.contains(&NodeId::new(5)));
    }
}
