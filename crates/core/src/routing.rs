//! Resilient routing on top of a fault tolerant spanner.
//!
//! This is the consumer-facing payoff of the whole construction: route
//! queries against the *sparse* spanner instead of the full graph, survive
//! up to `f` component failures, and know the worst-case price (`k×` route
//! inflation) in advance.
//!
//! [`ResilientRouter`] is the one-query-at-a-time compatibility surface:
//! a thin shim over the [`serve`] layer that applies the
//! failure set afresh per call. Serving loops that answer many queries
//! under one failure state — or want concurrent tenants, batched /
//! pooled answers, or O(Δ) epoch deltas — should freeze the spanner
//! ([`Spanner::freeze`]) and open [`EpochServer`] sessions directly;
//! the results are bit-identical (the router routes through the very
//! same implementation).

use crate::serve::{self, EpochServer};
use crate::Spanner;
use spanner_faults::FaultSet;
use spanner_graph::{DijkstraEngine, Dist, EdgeId, FaultMask, Graph, NodeId, PathScratch};
use std::sync::Arc;

/// A route served by [`ResilientRouter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Vertices from source to target inclusive.
    pub nodes: Vec<NodeId>,
    /// Spanner edges in path order.
    pub edges: Vec<EdgeId>,
    /// Total route weight.
    pub dist: Dist,
}

/// Routing errors.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// Source or target is currently failed.
    EndpointFailed(NodeId),
    /// No surviving route exists in the spanner.
    Unreachable {
        /// The query source.
        from: NodeId,
        /// The query target.
        to: NodeId,
    },
}

/// Every stable [`RouteError`] code, one per variant; pinned together
/// with the decode-path codes by `tests/error_taxonomy.rs`.
pub const ROUTE_ERROR_CODES: &[&str] = &["route/endpoint-failed", "route/unreachable"];

impl RouteError {
    /// A stable, machine-readable error code (part of the public error
    /// taxonomy: codes never change meaning; new variants get new
    /// codes). Match on codes, not on variants, when forward
    /// compatibility matters — the enum is `#[non_exhaustive]`.
    pub fn code(&self) -> &'static str {
        match self {
            RouteError::EndpointFailed(_) => "route/endpoint-failed",
            RouteError::Unreachable { .. } => "route/unreachable",
        }
    }
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::EndpointFailed(v) => write!(f, "endpoint {v} is failed"),
            RouteError::Unreachable { from, to } => {
                write!(f, "no surviving route from {from} to {to}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A query engine over a spanner, tolerant to per-query failure sets.
///
/// # Examples
///
/// ```
/// use spanner_core::{routing::ResilientRouter, FtGreedy};
/// use spanner_faults::FaultSet;
/// use spanner_graph::{generators::complete, NodeId};
///
/// let g = complete(8);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let mut router = ResilientRouter::new(ft.into_spanner());
///
/// // Any single vertex may fail; the surviving route costs at most 3×
/// // what the surviving *parent* would charge — that is the contract
/// // (the absolute distance depends on the instance's weights).
/// let failed = FaultSet::vertices([NodeId::new(3)]);
/// let route = router.route(NodeId::new(0), NodeId::new(7), &failed)?;
/// let stretch = router.stretch_against(&g, &route, &failed).unwrap();
/// assert!(stretch <= 3.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ResilientRouter {
    spanner: Spanner,
    server: EpochServer,
    /// Per-call fault state over the spanner (reused, grown never
    /// shrunk).
    mask: FaultMask,
    engine: DijkstraEngine,
    path: PathScratch,
    aux_engine: DijkstraEngine,
}

impl ResilientRouter {
    /// Wraps a spanner for querying: freezes a serving artifact from it
    /// and keeps the spanner itself for [`ResilientRouter::spanner`].
    /// That retention means the adjacency lives twice (construction-time
    /// `Spanner` + frozen artifact) — the price of the compatibility
    /// surface; serving code that doesn't need the `Spanner` back should
    /// freeze once and hold only an [`EpochServer`] over the
    /// `Arc<FrozenSpanner>`.
    pub fn new(spanner: Spanner) -> Self {
        let server = EpochServer::new(Arc::new(spanner.freeze()));
        let frozen = server.artifact();
        let mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
        ResilientRouter {
            spanner,
            server,
            mask,
            engine: DijkstraEngine::new(),
            path: PathScratch::new(),
            aux_engine: DijkstraEngine::new(),
        }
    }

    /// The underlying spanner.
    pub fn spanner(&self) -> &Spanner {
        &self.spanner
    }

    /// The epoch server over this router's frozen artifact — the
    /// concurrent serving surface ([`EpochServer::epoch`] /
    /// [`EpochHandle`](crate::serve::EpochHandle)) for callers that
    /// outgrow one-query-at-a-time routing. Sessions opened here answer
    /// bit-identically to [`ResilientRouter::route`].
    pub fn server(&self) -> &EpochServer {
        &self.server
    }

    /// Routes `from → to` avoiding `failures` (vertex faults and/or parent
    /// edge faults) — one fresh fault epoch per call.
    ///
    /// # Errors
    ///
    /// [`RouteError::EndpointFailed`] if an endpoint is in the failure
    /// set; [`RouteError::Unreachable`] if the survivors are disconnected
    /// (which an `f`-FT spanner guarantees cannot happen while
    /// `|failures| ≤ f` and the *parent* stays connected).
    pub fn route(
        &mut self,
        from: NodeId,
        to: NodeId,
        failures: &FaultSet,
    ) -> Result<Route, RouteError> {
        let frozen = self.server.artifact();
        self.mask
            .reset_for(frozen.node_count(), frozen.edge_count());
        frozen.apply_faults(failures, &mut self.mask);
        serve::route_one(
            frozen,
            &mut self.engine,
            &mut self.path,
            &self.mask,
            from,
            to,
        )
    }

    /// Costs `from → to` against a prebuilt fault mask over the
    /// *spanner's* graph (see [`Spanner::fault_mask`]) without extracting
    /// the path — no allocation and no per-call mask work at all: the
    /// caller's mask is queried directly (over the frozen CSR), so
    /// callers serving many queries under one failure set still translate
    /// the faults once per step, not per query.
    ///
    /// # Errors
    ///
    /// Same contract as [`ResilientRouter::route`]:
    /// [`RouteError::EndpointFailed`] if an endpoint is masked out,
    /// [`RouteError::Unreachable`] if the survivors are disconnected.
    pub fn route_cost(
        &mut self,
        from: NodeId,
        to: NodeId,
        mask: &FaultMask,
    ) -> Result<Dist, RouteError> {
        for v in [from, to] {
            if mask.is_vertex_faulted(v) {
                return Err(RouteError::EndpointFailed(v));
            }
        }
        self.aux_engine
            .dist_bounded(self.server.artifact().csr(), from, to, Dist::INFINITE, mask)
            .ok_or(RouteError::Unreachable { from, to })
    }

    /// The achieved stretch of a route against the parent graph under the
    /// same failures (`1.0` means the route is optimal; `None` if the
    /// parent itself has no surviving path — then any route is a bonus).
    pub fn stretch_against(
        &mut self,
        parent: &Graph,
        route: &Route,
        failures: &FaultSet,
    ) -> Option<f64> {
        let (from, to) = (*route.nodes.first()?, *route.nodes.last()?);
        let mut parent_mask = FaultMask::for_graph(parent);
        for v in failures.vertex_faults() {
            parent_mask.fault_vertex(*v);
        }
        for e in failures.edge_faults() {
            parent_mask.fault_edge(*e);
        }
        let best = self
            .aux_engine
            .dist_bounded(parent, from, to, Dist::INFINITE, &parent_mask)?;
        let achieved = route.dist.value()? as f64;
        Some(achieved / best.value().max(Some(1))? as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, cycle};

    fn router_over_complete(n: usize, f: usize) -> (Graph, ResilientRouter) {
        let g = complete(n);
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let r = ResilientRouter::new(ft.into_spanner());
        (g, r)
    }

    #[test]
    fn routes_within_stretch_with_no_failures() {
        let (g, mut router) = router_over_complete(10, 1);
        let empty = FaultSet::vertices([]);
        for u in 0..10 {
            for v in (u + 1)..10 {
                let route = router
                    .route(NodeId::new(u), NodeId::new(v), &empty)
                    .unwrap();
                assert!(route.dist <= Dist::finite(3));
                let stretch = router.stretch_against(&g, &route, &empty).unwrap();
                assert!(stretch <= 3.0);
            }
        }
    }

    #[test]
    fn survives_every_single_vertex_failure() {
        let (g, mut router) = router_over_complete(9, 1);
        for failed in 0..9usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            for u in 0..9 {
                for v in (u + 1)..9 {
                    if u == failed || v == failed {
                        continue;
                    }
                    let route = router
                        .route(NodeId::new(u), NodeId::new(v), &failures)
                        .unwrap();
                    let stretch = router.stretch_against(&g, &route, &failures).unwrap();
                    assert!(stretch <= 3.0, "stretch {stretch} after failing v{failed}");
                }
            }
        }
    }

    #[test]
    fn endpoint_failure_is_reported() {
        let (_, mut router) = router_over_complete(6, 1);
        let failures = FaultSet::vertices([NodeId::new(2)]);
        let err = router
            .route(NodeId::new(2), NodeId::new(4), &failures)
            .unwrap_err();
        assert_eq!(err, RouteError::EndpointFailed(NodeId::new(2)));
        assert!(err.to_string().contains("v2"));
    }

    #[test]
    fn unreachable_is_reported_beyond_budget() {
        // A plain (f=0) 3-spanner of C4 drops one edge (the detour has
        // exactly 3 hops); failing an interior vertex of the remaining
        // path disconnects survivors.
        let g = cycle(4);
        let plain = crate::greedy_spanner(&g, 3);
        assert!(plain.edge_count() < 4);
        let mut router = ResilientRouter::new(plain);
        // Find some failure that disconnects a pair.
        let mut saw_unreachable = false;
        for failed in 0..4usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            for u in 0..4 {
                for v in (u + 1)..4 {
                    if u == failed || v == failed {
                        continue;
                    }
                    if let Err(RouteError::Unreachable { .. }) =
                        router.route(NodeId::new(u), NodeId::new(v), &failures)
                    {
                        saw_unreachable = true;
                    }
                }
            }
        }
        assert!(
            saw_unreachable,
            "under-built spanner must disconnect somewhere"
        );
    }

    #[test]
    fn route_cost_matches_route_dist() {
        let (_, mut router) = router_over_complete(9, 1);
        for failed in 0..9usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            let mask = router.spanner().fault_mask(&failures);
            for u in 0..9 {
                for v in (u + 1)..9 {
                    let (u, v) = (NodeId::new(u), NodeId::new(v));
                    let by_route = router.route(u, v, &failures).map(|r| r.dist);
                    let by_cost = router.route_cost(u, v, &mask);
                    assert_eq!(by_route, by_cost, "{u}->{v} failing v{failed}");
                }
            }
        }
    }

    #[test]
    fn route_cost_reports_masked_endpoint() {
        let (_, mut router) = router_over_complete(6, 1);
        let mask = router
            .spanner()
            .fault_mask(&FaultSet::vertices([NodeId::new(2)]));
        let err = router
            .route_cost(NodeId::new(2), NodeId::new(4), &mask)
            .unwrap_err();
        assert_eq!(err, RouteError::EndpointFailed(NodeId::new(2)));
    }

    #[test]
    fn parent_edge_failures_translate() {
        let g = cycle(6);
        let full = Spanner::from_parent_edges(&g, g.edge_ids(), 3);
        let mut router = ResilientRouter::new(full);
        // Fail one parent edge; the route detours the long way.
        let failures = FaultSet::edges([EdgeId::new(0)]);
        let route = router
            .route(NodeId::new(0), NodeId::new(1), &failures)
            .unwrap();
        assert_eq!(route.dist, Dist::finite(5));
    }

    #[test]
    fn route_structure_is_consistent() {
        let (_, mut router) = router_over_complete(8, 1);
        let failures = FaultSet::vertices([NodeId::new(5)]);
        let route = router
            .route(NodeId::new(0), NodeId::new(7), &failures)
            .unwrap();
        assert_eq!(*route.nodes.first().unwrap(), NodeId::new(0));
        assert_eq!(*route.nodes.last().unwrap(), NodeId::new(7));
        assert_eq!(route.edges.len() + 1, route.nodes.len());
        assert!(!route.nodes.contains(&NodeId::new(5)));
    }
}
