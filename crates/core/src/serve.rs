//! Concurrent multi-tenant epoch serving over one frozen artifact.
//!
//! Earlier mutate-then-query engines (`epoch()` / `route_batch()` both
//! taking `&mut self`) meant one engine served exactly one tenant's
//! fault view at a time. This module designs the read path around a
//! **session-object** shape:
//!
//! * [`EpochServer`] — the shared, `Send + Sync`, cheaply clonable entry
//!   point over one `Arc<FrozenSpanner>`. It owns the cross-tenant
//!   state: an intern table of fault views keyed by their Zobrist
//!   [`SetFingerprint`] (the construction-side memo machinery, now
//!   shared via [`spanner_faults::fingerprint`]), the worker pool for
//!   pooled batches, and the serving counters ([`ServerStats`]).
//! * [`EpochView`] — one immutable fault view: the materialized
//!   [`FaultMask`] plus its fingerprint, shared as `Arc<EpochView>`.
//!   Tenants asking for the same fault set get the *same* view (warm
//!   state shared, zero duplicate mask work) — interning is by the
//!   effectively-128-bit fingerprint, the same trust the oracle memo has
//!   always placed in these keys.
//! * [`EpochHandle`] — one tenant's session: an `Arc` of the view plus
//!   private Dijkstra scratch. Handles are independent (`Send`), so any
//!   number of them serve concurrently against one server; every route
//!   is a pure function of `(artifact, view, pair)`, so the answers are
//!   bit-identical to serving each pair alone through [`route_one`] no
//!   matter how many tenants interleave (property-tested in
//!   `tests/epoch_server_props.rs`).
//! * [`EpochDelta`] — the O(Δ) epoch transition: derive a child epoch
//!   from a parent by listing only the components that *changed*
//!   ([`EpochHandle::derive`] / [`EpochHandle::step`]). The fingerprint
//!   is updated per effective toggle, so reaching an already-interned
//!   view costs O(Δ) component operations and **zero** mask work; a
//!   genuinely new view additionally pays one word-level mask copy.
//!   [`ServerStats::delta_component_ops`] counts exactly the toggles
//!   examined — the instrumentation proving delta work is proportional
//!   to the delta, not to `|F|` or `n`.
//! * [`BatchCoalescer`] — the batch front-end: `submit` enqueues any
//!   tenant's batch without blocking (async-friendly: submission is
//!   cheap and never routes), `flush` serves all pending batches with
//!   **one** pass per distinct fault view — same-view tenants share the
//!   per-source Dijkstra amortization of `serve_batch` — and hands
//!   each submitter exactly the answers a private `route_batch` would
//!   have produced.
//!
//! # Worker pool and the `threads = 0` convention
//!
//! The pool lives on the server, not on any engine or handle, so every
//! session sharing the server shares one set of workers.
//! [`EpochServer::with_threads`] is **the** place the thread convention
//! is defined: `0` means *auto* (one worker per available CPU,
//! `std::thread::available_parallelism`), `1` means sequential (pooled
//! entry points degrade to the sequential batch), `n ≥ 2` means exactly
//! `n` workers. Workers spawn lazily on the first pooled batch and are
//! joined when the last server clone / handle drops.
//!
//! # Scratch-reuse contract
//!
//! The engine-layer contract carries over: views are built once and
//! shared; each handle owns one Dijkstra engine + path scratch for its
//! lifetime ([`EpochHandle::step`] moves them to the successor epoch);
//! pool workers own theirs for the pool's lifetime; nothing in scratch
//! can leak into answers because every path funnels through the same
//! `route_one` / `serve_batch` implementations the sequential reference
//! uses.

use crate::frozen::MappedSpanner;
use crate::routing::{Route, RouteError};
use crate::FrozenSpanner;
use spanner_faults::fingerprint::{component_hash, SetFingerprint};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{DijkstraEngine, Dist, EdgeId, FaultMask, NodeId, PathScratch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Serves one pair against the frozen artifact under `mask`.
///
/// This is the **reference implementation**: every serving path —
/// [`EpochHandle::route`], sequential and pooled batches, the
/// coalescer — funnels into it (directly or per settled source), so
/// they cannot drift from it. It is public so harnesses and tests can
/// serve a pair without opening a session: bring your own
/// [`DijkstraEngine`], [`PathScratch`], and a mask over the *spanner's*
/// ids (see [`FrozenSpanner::apply_faults`]).
///
/// # Errors
///
/// [`RouteError::EndpointFailed`] if an endpoint is masked out;
/// [`RouteError::Unreachable`] if the survivors are disconnected.
pub fn route_one(
    frozen: &FrozenSpanner,
    engine: &mut DijkstraEngine,
    scratch: &mut PathScratch,
    mask: &FaultMask,
    from: NodeId,
    to: NodeId,
) -> Result<Route, RouteError> {
    for v in [from, to] {
        if mask.is_vertex_faulted(v) {
            return Err(RouteError::EndpointFailed(v));
        }
    }
    if engine.shortest_path_bounded_into(frozen.csr(), from, to, Dist::INFINITE, mask, scratch) {
        Ok(route_from_scratch(scratch))
    } else {
        Err(RouteError::Unreachable { from, to })
    }
}

/// Converts the freshly extracted scratch into an owned [`Route`].
fn route_from_scratch(scratch: &PathScratch) -> Route {
    Route {
        nodes: scratch.nodes().to_vec(),
        edges: scratch.edges().to_vec(),
        dist: scratch.dist(),
    }
}

/// Serves a whole batch under `mask`, amortizing one Dijkstra search per
/// **distinct source**: queries sharing a source are answered by a single
/// [`DijkstraEngine::search_from`] plus per-target extraction, singleton
/// sources by an early-stopped pair query. Answers land in input order
/// and are bit-identical to serving every pair through [`route_one`]
/// (Dijkstra settles each vertex once, so a settled target's path does
/// not depend on where the search stopped — pinned by the property
/// tests). Shared by the sequential batch path, the coalescer, and every
/// pool worker.
pub(crate) fn serve_batch(
    frozen: &FrozenSpanner,
    engine: &mut DijkstraEngine,
    scratch: &mut PathScratch,
    mask: &FaultMask,
    pairs: &[(NodeId, NodeId)],
) -> Vec<Result<Route, RouteError>> {
    let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
    order.sort_unstable_by_key(|&i| pairs[i as usize].0);
    let mut out: Vec<Option<Result<Route, RouteError>>> = vec![None; pairs.len()];
    let mut at = 0usize;
    while at < order.len() {
        let from = pairs[order[at] as usize].0;
        let mut end = at + 1;
        while end < order.len() && pairs[order[end] as usize].0 == from {
            end += 1;
        }
        let group = &order[at..end];
        at = end;
        if group.len() == 1 {
            let i = group[0] as usize;
            let (from, to) = pairs[i];
            out[i] = Some(route_one(frozen, engine, scratch, mask, from, to));
            continue;
        }
        if mask.is_vertex_faulted(from) {
            for &i in group {
                out[i as usize] = Some(Err(RouteError::EndpointFailed(from)));
            }
            continue;
        }
        engine.search_from(frozen.csr(), from, Dist::INFINITE, mask);
        for &i in group {
            let to = pairs[i as usize].1;
            out[i as usize] = Some(if mask.is_vertex_faulted(to) {
                Err(RouteError::EndpointFailed(to))
            } else if engine.extract_path_into(to, Dist::INFINITE, scratch) {
                Ok(route_from_scratch(scratch))
            } else {
                Err(RouteError::Unreachable { from, to })
            });
        }
    }
    out.into_iter()
        .map(|answer| answer.expect("every index served"))
        .collect()
}

/// One immutable fault view over the spanner: the materialized mask plus
/// its order-independent fingerprint. Views are shared (`Arc`) across
/// every tenant that asked for the same fault set.
#[derive(Debug)]
pub struct EpochView {
    mask: FaultMask,
    fingerprint: SetFingerprint,
}

impl EpochView {
    /// The fault mask this view serves under (spanner-graph ids).
    pub fn mask(&self) -> &FaultMask {
        &self.mask
    }

    /// The view's interning fingerprint (see
    /// [`spanner_faults::fingerprint`] for the collision analysis).
    pub fn fingerprint(&self) -> SetFingerprint {
        self.fingerprint
    }

    /// Total faulted components (vertices + spanner edges) in the view.
    pub fn fault_count(&self) -> usize {
        self.mask.fault_count()
    }
}

/// Computes the fingerprint of a materialized mask: vertices hashed with
/// the vertex tag, *spanner* edges with the edge tag — the same
/// convention [`EpochHandle::derive`] maintains incrementally.
fn fingerprint_of_mask(mask: &FaultMask) -> SetFingerprint {
    let mut fp = SetFingerprint::EMPTY;
    for v in mask.faulted_vertices() {
        fp.add(component_hash(FaultModel::Vertex, v.index()));
    }
    for e in mask.faulted_edges() {
        fp.add(component_hash(FaultModel::Edge, e.index()));
    }
    fp
}

/// A snapshot of the server's serving counters (monotone; taken with
/// [`EpochServer::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Epoch handles opened (any entry point, including deltas).
    pub epochs_opened: u64,
    /// Fault views materialized (mask built or copied). Stays below
    /// `epochs_opened` exactly when tenants shared views.
    pub views_built: u64,
    /// Epochs that reused an already-interned view (zero mask work).
    pub views_shared: u64,
    /// Delta component operations examined by [`EpochHandle::derive`] /
    /// [`EpochHandle::step`] — grows with Σ|Δ|, **not** with `|F|` or
    /// `n` (the O(Δ) instrumentation).
    pub delta_component_ops: u64,
}

/// One pooled-batch work item: a chunk of pairs, the view to serve them
/// under, and the submitting batch's private result channel (each batch
/// owns its channel, so concurrent handles can never interleave
/// answers).
struct PoolJob {
    chunk: usize,
    pairs: Vec<(NodeId, NodeId)>,
    view: Arc<EpochView>,
    results: mpsc::Sender<(usize, Vec<Result<Route, RouteError>>)>,
}

/// The server's shared worker pool: spawned lazily on the first pooled
/// batch, joined when the server's last owner drops.
struct WorkerPool {
    /// `Option` so `Drop` can close the queue before joining.
    jobs: Mutex<Option<mpsc::Sender<PoolJob>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    fn spawn(frozen: &Arc<FrozenSpanner>, threads: usize) -> WorkerPool {
        let (job_tx, job_rx) = mpsc::channel::<PoolJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let jobs = Arc::clone(&job_rx);
            let frozen = Arc::clone(frozen);
            workers.push(std::thread::spawn(move || {
                // One Dijkstra engine + path scratch per worker, alive
                // for the pool's lifetime: scratch persists across every
                // batch of every tenant.
                let mut engine = DijkstraEngine::new();
                let mut path = PathScratch::new();
                loop {
                    let job = {
                        let rx = jobs.lock().expect("job queue lock");
                        match rx.recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped
                        }
                    };
                    let answers =
                        serve_batch(&frozen, &mut engine, &mut path, &job.view.mask, &job.pairs);
                    // A submitter that gave up (dropped its receiver) is
                    // not an error for the pool.
                    let _ = job.results.send((job.chunk, answers));
                }
            }));
        }
        WorkerPool {
            jobs: Mutex::new(Some(job_tx)),
            workers: Mutex::new(workers),
        }
    }

    /// True iff some worker thread has exited (used as the liveness
    /// check while draining a batch).
    fn any_worker_dead(&self) -> bool {
        self.workers
            .lock()
            .expect("worker list lock")
            .iter()
            .any(|h| h.is_finished())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the queue; workers exit their loop, then join them.
        self.jobs.lock().expect("job queue lock").take();
        for handle in self.workers.lock().expect("worker list lock").drain(..) {
            let _ = handle.join();
        }
    }
}

/// Chunks outstanding per worker in a pooled batch (finer than one chunk
/// per thread so an unlucky chunk of long queries cannot straggle the
/// whole batch).
const CHUNKS_PER_THREAD: usize = 4;

/// The shared cross-tenant serving state behind every [`EpochServer`]
/// clone and [`EpochHandle`].
struct ServerInner {
    frozen: Arc<FrozenSpanner>,
    /// Intern table: fingerprint key → live view. `Weak` so retired
    /// views are collectable; dead entries are pruned on misses.
    views: Mutex<HashMap<(u64, u64, u64), Weak<EpochView>>>,
    /// Requested worker count (`0` = auto; resolved at pool spawn).
    threads: AtomicUsize,
    pool: Mutex<Option<Arc<WorkerPool>>>,
    epochs_opened: AtomicU64,
    views_built: AtomicU64,
    views_shared: AtomicU64,
    delta_component_ops: AtomicU64,
}

impl ServerInner {
    /// The worker count pooled batches will use (resolving the auto
    /// convention; see [`EpochServer::with_threads`]).
    fn resolved_threads(&self) -> usize {
        match self.threads.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// The shared pool, spawned on first use at the resolved width.
    fn ensure_pool(self: &Arc<Self>) -> Arc<WorkerPool> {
        let mut guard = self.pool.lock().expect("pool lock");
        if let Some(pool) = guard.as_ref() {
            return Arc::clone(pool);
        }
        let pool = Arc::new(WorkerPool::spawn(&self.frozen, self.resolved_threads()));
        *guard = Some(Arc::clone(&pool));
        pool
    }

    /// Interns `view` under its fingerprint, returning the canonical
    /// `Arc` (an already-live equal view wins). Dead entries under other
    /// keys are pruned opportunistically when the table has accumulated
    /// more tombstones than live views.
    fn intern(&self, view: EpochView) -> Arc<EpochView> {
        let key = view.fingerprint.key();
        let mut table = self.views.lock().expect("view table lock");
        if let Some(live) = table.get(&key).and_then(Weak::upgrade) {
            debug_assert_eq!(live.fault_count(), view.fault_count());
            self.views_shared.fetch_add(1, Ordering::Relaxed);
            return live;
        }
        if table.len() > 32 {
            table.retain(|_, w| w.strong_count() > 0);
        }
        let view = Arc::new(view);
        table.insert(key, Arc::downgrade(&view));
        self.views_built.fetch_add(1, Ordering::Relaxed);
        view
    }

    /// Looks up a live view by fingerprint without materializing a mask
    /// (the O(Δ) derive fast path).
    fn lookup(&self, fingerprint: SetFingerprint) -> Option<Arc<EpochView>> {
        let table = self.views.lock().expect("view table lock");
        table.get(&fingerprint.key()).and_then(Weak::upgrade)
    }

    /// Builds (or re-shares) the view for an explicitly materialized
    /// mask and opens a handle over it.
    fn open_view(self: &Arc<Self>, mask: FaultMask) -> Arc<EpochView> {
        self.epochs_opened.fetch_add(1, Ordering::Relaxed);
        let fingerprint = fingerprint_of_mask(&mask);
        self.intern(EpochView { mask, fingerprint })
    }
}

impl std::fmt::Debug for ServerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochServer")
            .field("nodes", &self.frozen.node_count())
            .field("edges", &self.frozen.edge_count())
            .field("threads", &self.threads.load(Ordering::Relaxed))
            .finish()
    }
}

/// The shared, thread-safe epoch server over one frozen artifact (see
/// the module docs for the session model).
///
/// Cloning is cheap (an `Arc` bump) and every clone serves the same
/// intern table, worker pool and counters. The server itself never
/// routes: it hands out [`EpochHandle`] sessions, which do.
///
/// # Examples
///
/// Two tenants with different fault views served concurrently from one
/// artifact:
///
/// ```
/// use spanner_core::{serve::EpochServer, FtGreedy};
/// use spanner_faults::FaultSet;
/// use spanner_graph::{generators::complete, NodeId};
/// use std::sync::Arc;
///
/// let g = complete(8);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let server = EpochServer::new(Arc::new(ft.freeze(&g)));
///
/// let mut tenant_a = server.epoch(&FaultSet::vertices([NodeId::new(3)]));
/// let mut tenant_b = server.epoch(&FaultSet::vertices([NodeId::new(5)]));
/// std::thread::scope(|scope| {
///     scope.spawn(|| {
///         let answers = tenant_a.route_batch(&[(NodeId::new(0), NodeId::new(7))]);
///         assert!(answers[0].is_ok());
///     });
///     scope.spawn(|| {
///         let answers = tenant_b.route_batch(&[(NodeId::new(1), NodeId::new(6))]);
///         assert!(answers[0].is_ok());
///     });
/// });
/// ```
#[derive(Clone, Debug)]
pub struct EpochServer {
    inner: Arc<ServerInner>,
}

impl EpochServer {
    /// Creates a server over the artifact, initially sequential
    /// (`threads = 1`); configure pooled batches with
    /// [`EpochServer::with_threads`].
    pub fn new(frozen: Arc<FrozenSpanner>) -> Self {
        EpochServer {
            inner: Arc::new(ServerInner {
                frozen,
                views: Mutex::new(HashMap::new()),
                threads: AtomicUsize::new(1),
                pool: Mutex::new(None),
                epochs_opened: AtomicU64::new(0),
                views_built: AtomicU64::new(0),
                views_shared: AtomicU64::new(0),
                delta_component_ops: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a server over an artifact opened **in place** with
    /// [`FrozenSpanner::open`] — the zero-copy serving entrance: the
    /// adjacency keeps living in the mapped (or aligned, borrowed)
    /// buffer, witnesses and the parent stay undecoded until asked for,
    /// and every session answers bit-identically to a server over the
    /// same artifact's eager [`FrozenSpanner::decode`] (pinned by
    /// `tests/mapped_serving_props.rs`).
    pub fn from_mapped(mapped: MappedSpanner) -> Self {
        EpochServer::new(Arc::new(mapped.into_inner()))
    }

    /// Sets the shared worker-pool width for pooled batches. **This is
    /// the thread-count convention, defined once:** `0` = auto (one
    /// worker per available CPU), `1` = sequential (pooled entry points
    /// degrade to the sequential batch, no workers spawned), `n ≥ 2` =
    /// exactly `n` workers. Workers spawn lazily on the first pooled
    /// batch and serve every session of this server.
    ///
    /// # Panics
    ///
    /// Panics if the pool already started working (workers bake the
    /// artifact and width in at spawn time).
    pub fn with_threads(self, threads: usize) -> Self {
        assert!(
            self.inner.pool.lock().expect("pool lock").is_none(),
            "configure the server before its first pooled batch"
        );
        self.inner.threads.store(threads, Ordering::Relaxed);
        self
    }

    /// The shared artifact this server serves.
    pub fn artifact(&self) -> &Arc<FrozenSpanner> {
        &self.inner.frozen
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            epochs_opened: self.inner.epochs_opened.load(Ordering::Relaxed),
            views_built: self.inner.views_built.load(Ordering::Relaxed),
            views_shared: self.inner.views_shared.load(Ordering::Relaxed),
            delta_component_ops: self.inner.delta_component_ops.load(Ordering::Relaxed),
        }
    }

    /// Opens a session under `failures` (vertex faults and/or parent
    /// edge faults, translated through the artifact's O(1) map). The
    /// failure set is applied **once** — or not at all, when an equal
    /// view is already live — and the handle serves against the
    /// immutable result.
    pub fn epoch(&self, failures: &FaultSet) -> EpochHandle {
        let frozen = &self.inner.frozen;
        let mut mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
        frozen.apply_faults(failures, &mut mask);
        self.open_mask(mask)
    }

    /// Opens a failure-free session (the natural root for
    /// [`EpochHandle::derive`] chains).
    pub fn epoch_clear(&self) -> EpochHandle {
        let frozen = &self.inner.frozen;
        self.open_mask(FaultMask::with_capacity(
            frozen.node_count(),
            frozen.edge_count(),
        ))
    }

    /// Opens a session from a prebuilt mask over the *spanner's* graph
    /// (the [`Spanner::fault_mask`](crate::Spanner::fault_mask) form) —
    /// the compatibility entrance for callers that already hold
    /// spanner-id masks rather than parent-id fault sets. Costs one mask
    /// copy when the view is new; nothing when it is already live.
    pub fn epoch_from_spanner_mask(&self, mask: &FaultMask) -> EpochHandle {
        let frozen = &self.inner.frozen;
        let mut own = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
        for v in mask.faulted_vertices() {
            own.fault_vertex(v);
        }
        for e in mask.faulted_edges() {
            own.fault_edge(e);
        }
        self.open_mask(own)
    }

    fn open_mask(&self, mask: FaultMask) -> EpochHandle {
        EpochHandle {
            inner: Arc::clone(&self.inner),
            view: self.inner.open_view(mask),
            engine: DijkstraEngine::new(),
            path: PathScratch::new(),
        }
    }
}

/// One fault-or-restore operation of an [`EpochDelta`]. Edge operations
/// name *parent* edge ids (translated through the artifact's map when
/// the delta is applied; parent edges the spanner did not keep are
/// no-ops).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DeltaOp {
    FaultVertex(NodeId),
    RestoreVertex(NodeId),
    FaultParentEdge(EdgeId),
    RestoreParentEdge(EdgeId),
}

/// An ordered list of fault/restore operations describing how one epoch
/// differs from its parent — the O(Δ) alternative to clearing and
/// re-applying a whole fault set per step. Build with the chainable
/// mutators, apply with [`EpochHandle::derive`] or
/// [`EpochHandle::step`]; [`EpochDelta::clear`] keeps the allocation for
/// reuse across steps.
///
/// Operations apply in order, so `fault_vertex(v)` followed by
/// `restore_vertex(v)` is a net no-op. Redundant operations (faulting an
/// already-down component, restoring a live one) are permitted and
/// ignored — a delta is a statement about desired state, not a toggle
/// log.
#[derive(Clone, Debug, Default)]
pub struct EpochDelta {
    ops: Vec<DeltaOp>,
}

impl EpochDelta {
    /// An empty delta.
    pub fn new() -> Self {
        EpochDelta::default()
    }

    /// Fails a vertex in the derived epoch.
    pub fn fault_vertex(&mut self, v: NodeId) -> &mut Self {
        self.ops.push(DeltaOp::FaultVertex(v));
        self
    }

    /// Restores a vertex in the derived epoch.
    pub fn restore_vertex(&mut self, v: NodeId) -> &mut Self {
        self.ops.push(DeltaOp::RestoreVertex(v));
        self
    }

    /// Fails a *parent* edge in the derived epoch (no-op when the
    /// spanner did not keep it).
    pub fn fault_parent_edge(&mut self, parent_edge: EdgeId) -> &mut Self {
        self.ops.push(DeltaOp::FaultParentEdge(parent_edge));
        self
    }

    /// Restores a *parent* edge in the derived epoch (no-op when the
    /// spanner did not keep it).
    pub fn restore_parent_edge(&mut self, parent_edge: EdgeId) -> &mut Self {
        self.ops.push(DeltaOp::RestoreParentEdge(parent_edge));
        self
    }

    /// Number of operations in the delta (the Δ the cost is proportional
    /// to).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Empties the delta, keeping its allocation (for the step-loop
    /// reuse pattern).
    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

/// One tenant's serving session: an immutable fault view plus private
/// Dijkstra scratch. Handles are `Send` and independent — open as many
/// as there are tenants and serve them from any threads; answers are
/// bit-identical to the sequential reference regardless of interleaving
/// (see the module docs).
#[derive(Debug)]
pub struct EpochHandle {
    inner: Arc<ServerInner>,
    view: Arc<EpochView>,
    engine: DijkstraEngine,
    path: PathScratch,
}

impl EpochHandle {
    /// The immutable fault view this session serves under.
    pub fn view(&self) -> &Arc<EpochView> {
        &self.view
    }

    /// The shared artifact.
    pub fn artifact(&self) -> &Arc<FrozenSpanner> {
        &self.inner.frozen
    }

    /// A server handle back to the shared state (for opening sibling
    /// sessions or reading [`EpochServer::stats`]).
    pub fn server(&self) -> EpochServer {
        EpochServer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Routes `from → to` in this epoch.
    ///
    /// # Errors
    ///
    /// [`RouteError::EndpointFailed`] if an endpoint is failed in this
    /// view; [`RouteError::Unreachable`] if the survivors are
    /// disconnected (which an `f`-FT spanner guarantees cannot happen
    /// while at most `f` components are down and the parent stays
    /// connected).
    pub fn route(&mut self, from: NodeId, to: NodeId) -> Result<Route, RouteError> {
        route_one(
            &self.inner.frozen,
            &mut self.engine,
            &mut self.path,
            &self.view.mask,
            from,
            to,
        )
    }

    /// Costs `from → to` in this epoch without extracting the path — no
    /// allocation at all, the query-heavy-loop form.
    ///
    /// # Errors
    ///
    /// Same contract as [`EpochHandle::route`].
    pub fn route_cost(&mut self, from: NodeId, to: NodeId) -> Result<Dist, RouteError> {
        for v in [from, to] {
            if self.view.mask.is_vertex_faulted(v) {
                return Err(RouteError::EndpointFailed(v));
            }
        }
        self.engine
            .dist_bounded(
                self.inner.frozen.csr(),
                from,
                to,
                Dist::INFINITE,
                &self.view.mask,
            )
            .ok_or(RouteError::Unreachable { from, to })
    }

    /// Serves a whole batch against this epoch, one answer per pair in
    /// input order, amortizing one Dijkstra search per distinct query
    /// source (see `serve_batch`'s bit-identity note). A failed or
    /// unreachable pair yields its error in its own slot without
    /// disturbing the rest of the batch.
    pub fn route_batch(&mut self, pairs: &[(NodeId, NodeId)]) -> Vec<Result<Route, RouteError>> {
        serve_batch(
            &self.inner.frozen,
            &mut self.engine,
            &mut self.path,
            &self.view.mask,
            pairs,
        )
    }

    /// Like [`EpochHandle::route_batch`], fanned out over the server's
    /// shared worker pool — and bit-identical to it: same routes, edges,
    /// distances and errors, in the same order, regardless of thread
    /// count, scheduling, or how many other sessions are pooling batches
    /// at the same time (each batch drains its own private result
    /// channel).
    pub fn par_route_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Result<Route, RouteError>> {
        let threads = self.inner.resolved_threads();
        if threads <= 1 || pairs.len() <= 1 {
            return self.route_batch(pairs);
        }
        pooled_batch(&self.inner, &self.view, threads, pairs)
    }

    /// Opens a *sibling* session whose fault view differs from this one
    /// by exactly `delta`, in O(Δ) component operations: the fingerprint
    /// is updated per effective toggle, an already-interned target view
    /// is re-shared with zero mask work, and only a genuinely new view
    /// pays one word-level mask copy. The parent handle stays valid —
    /// this is the fork form; serving loops that *advance* one session
    /// should prefer [`EpochHandle::step`], which recycles the scratch.
    pub fn derive(&self, delta: &EpochDelta) -> EpochHandle {
        EpochHandle {
            inner: Arc::clone(&self.inner),
            view: derive_view(&self.inner, &self.view, delta),
            engine: DijkstraEngine::new(),
            path: PathScratch::new(),
        }
    }

    /// Advances this session by `delta` in place: the same O(Δ) view
    /// derivation as [`EpochHandle::derive`], but the session keeps its
    /// Dijkstra engine and path scratch — the allocation-free stepping
    /// form the scenario engine runs on.
    pub fn advance(&mut self, delta: &EpochDelta) {
        self.view = derive_view(&self.inner, &self.view, delta);
    }

    /// [`EpochHandle::advance`] in chaining form: consumes the session
    /// and returns its successor epoch (scratch moves along).
    pub fn step(mut self, delta: &EpochDelta) -> EpochHandle {
        self.advance(delta);
        self
    }
}

/// The O(Δ) view derivation shared by [`EpochHandle::derive`] and
/// [`EpochHandle::step`].
fn derive_view(
    inner: &Arc<ServerInner>,
    parent: &Arc<EpochView>,
    delta: &EpochDelta,
) -> Arc<EpochView> {
    inner.epochs_opened.fetch_add(1, Ordering::Relaxed);
    // Fold the delta into the fingerprint, tracking the touched
    // components' evolving states in a small overlay so only *effective*
    // toggles move the fingerprint (fault-then-restore nets out, double
    // faults don't double-count). Everything here is O(Δ).
    let frozen = &inner.frozen;
    let mut fingerprint = parent.fingerprint;
    let mut overlay: HashMap<(FaultModel, usize), bool> = HashMap::with_capacity(delta.ops.len());
    let mut toggle = |model: FaultModel, index: usize, want_faulted: bool| {
        let current = *overlay
            .entry((model, index))
            .or_insert_with(|| match model {
                FaultModel::Vertex => parent.mask.is_vertex_faulted(NodeId::new(index)),
                FaultModel::Edge => parent.mask.is_edge_faulted(EdgeId::new(index)),
            });
        if current != want_faulted {
            let hash = component_hash(model, index);
            if want_faulted {
                fingerprint.add(hash);
            } else {
                fingerprint.remove(hash);
            }
            overlay.insert((model, index), want_faulted);
        }
    };
    for op in &delta.ops {
        match *op {
            DeltaOp::FaultVertex(v) => toggle(FaultModel::Vertex, v.index(), true),
            DeltaOp::RestoreVertex(v) => toggle(FaultModel::Vertex, v.index(), false),
            DeltaOp::FaultParentEdge(pe) => {
                if let Some(own) = frozen.spanner_edge_of_parent(pe) {
                    toggle(FaultModel::Edge, own.index(), true);
                }
            }
            DeltaOp::RestoreParentEdge(pe) => {
                if let Some(own) = frozen.spanner_edge_of_parent(pe) {
                    toggle(FaultModel::Edge, own.index(), false);
                }
            }
        }
    }
    inner
        .delta_component_ops
        .fetch_add(delta.ops.len() as u64, Ordering::Relaxed);
    if fingerprint == parent.fingerprint {
        // Net no-op delta: the parent view is the derived view.
        inner.views_shared.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(parent);
    }
    if let Some(live) = inner.lookup(fingerprint) {
        inner.views_shared.fetch_add(1, Ordering::Relaxed);
        return live;
    }
    // Genuinely new view: one word-level mask copy + O(Δ) toggles.
    let mut mask = parent.mask.clone();
    for ((model, index), faulted) in overlay {
        match (model, faulted) {
            (FaultModel::Vertex, true) => {
                mask.fault_vertex(NodeId::new(index));
            }
            (FaultModel::Vertex, false) => {
                mask.restore_vertex(NodeId::new(index));
            }
            (FaultModel::Edge, true) => {
                mask.fault_edge(EdgeId::new(index));
            }
            (FaultModel::Edge, false) => {
                mask.restore_edge(EdgeId::new(index));
            }
        }
    }
    debug_assert_eq!(fingerprint_of_mask(&mask), fingerprint);
    inner.intern(EpochView { mask, fingerprint })
}

/// Fans one batch over the shared pool and reassembles the answers in
/// input order. The batch owns its result channel, so any number of
/// concurrent batches (from any sessions) share the workers without
/// interleaving.
fn pooled_batch(
    inner: &Arc<ServerInner>,
    view: &Arc<EpochView>,
    threads: usize,
    pairs: &[(NodeId, NodeId)],
) -> Vec<Result<Route, RouteError>> {
    let pool = inner.ensure_pool();
    let (result_tx, result_rx) = mpsc::channel();
    let chunk_size = pairs.len().div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let mut chunks = 0usize;
    {
        let jobs = pool.jobs.lock().expect("job queue lock");
        let jobs = jobs.as_ref().expect("pool alive while server lives");
        for (chunk, slice) in pairs.chunks(chunk_size).enumerate() {
            jobs.send(PoolJob {
                chunk,
                pairs: slice.to_vec(),
                view: Arc::clone(view),
                results: result_tx.clone(),
            })
            .expect("batch pool alive");
            chunks += 1;
        }
    }
    drop(result_tx);
    let mut records: Vec<(usize, Vec<Result<Route, RouteError>>)> = Vec::with_capacity(chunks);
    while records.len() < chunks {
        // recv_timeout + liveness check rather than a bare recv: if a
        // worker dies mid-chunk (panic), its answer never arrives but
        // the channel stays open through the survivors — a bare recv
        // would hang the serving loop instead of failing loudly.
        match result_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(record) => records.push(record),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                assert!(!pool.any_worker_dead(), "a batch worker died mid-query");
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                panic!("batch pool shut down mid-query");
            }
        }
    }
    records.sort_by_key(|(chunk, _)| *chunk);
    records
        .into_iter()
        .flat_map(|(_, answers)| answers)
        .collect()
}

/// A claim check for one submitted batch: [`Ticket::index`] is the slot
/// in the `Vec` that [`BatchCoalescer::flush`] returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket(usize);

impl Ticket {
    /// The submission's slot in the flushed answer vector.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// One pending same-view bundle inside the coalescer.
struct CoalescedGroup {
    view: Arc<EpochView>,
    pairs: Vec<(NodeId, NodeId)>,
}

/// The batch front-end: collects per-tenant batches without blocking,
/// then serves all of them with one pass per **distinct fault view** —
/// same-view tenants share one epoch application and one per-source
/// Dijkstra amortization, and every submission receives exactly the
/// answers its own [`EpochHandle::route_batch`] would have produced
/// (bit-identical; pinned by the property tests).
///
/// `submit` never routes, so a front-end thread can drain a request
/// queue cheaply and `flush` at its own cadence — the async-friendly
/// shape without an async runtime. When the server's pool is configured
/// (threads ≥ 2), each coalesced per-view bundle is fanned over the
/// shared workers.
///
/// # Examples
///
/// ```
/// use spanner_core::{serve::{BatchCoalescer, EpochServer}, FtGreedy};
/// use spanner_faults::FaultSet;
/// use spanner_graph::{generators::complete, NodeId};
/// use std::sync::Arc;
///
/// let g = complete(8);
/// let ft = FtGreedy::new(&g, 3).faults(1).run();
/// let server = EpochServer::new(Arc::new(ft.freeze(&g)));
/// let a = server.epoch(&FaultSet::vertices([NodeId::new(3)]));
/// let b = server.epoch(&FaultSet::vertices([NodeId::new(3)])); // same view
///
/// let mut front = BatchCoalescer::new(&server);
/// let ta = front.submit(&a, &[(NodeId::new(0), NodeId::new(7))]);
/// let tb = front.submit(&b, &[(NodeId::new(1), NodeId::new(6))]);
/// let answers = front.flush();
/// assert!(answers[ta.index()][0].is_ok());
/// assert!(answers[tb.index()][0].is_ok());
/// ```
pub struct BatchCoalescer {
    inner: Arc<ServerInner>,
    engine: DijkstraEngine,
    path: PathScratch,
    groups: Vec<CoalescedGroup>,
    /// Per submission: (group index, offset into the group's pairs,
    /// pair count).
    submissions: Vec<(usize, usize, usize)>,
}

impl BatchCoalescer {
    /// A coalescer over the server's shared state.
    pub fn new(server: &EpochServer) -> Self {
        BatchCoalescer {
            inner: Arc::clone(&server.inner),
            engine: DijkstraEngine::new(),
            path: PathScratch::new(),
            groups: Vec::new(),
            submissions: Vec::new(),
        }
    }

    /// Enqueues one session's batch (no routing happens here). The
    /// returned [`Ticket`] indexes the next [`BatchCoalescer::flush`]'s
    /// answer vector.
    pub fn submit(&mut self, session: &EpochHandle, pairs: &[(NodeId, NodeId)]) -> Ticket {
        debug_assert!(
            Arc::ptr_eq(&self.inner.frozen, &session.inner.frozen),
            "session belongs to a different server"
        );
        let view = &session.view;
        let group = match self.groups.iter().position(|g| Arc::ptr_eq(&g.view, view)) {
            Some(i) => i,
            None => {
                self.groups.push(CoalescedGroup {
                    view: Arc::clone(view),
                    pairs: Vec::new(),
                });
                self.groups.len() - 1
            }
        };
        let offset = self.groups[group].pairs.len();
        self.groups[group].pairs.extend_from_slice(pairs);
        self.submissions.push((group, offset, pairs.len()));
        Ticket(self.submissions.len() - 1)
    }

    /// Number of submissions waiting for the next flush.
    pub fn pending(&self) -> usize {
        self.submissions.len()
    }

    /// Number of distinct fault views the pending submissions coalesce
    /// into (the per-view passes the next flush will pay).
    pub fn pending_views(&self) -> usize {
        self.groups.len()
    }

    /// Serves every pending submission — one pass per distinct view,
    /// pooled when the server has workers configured — and returns the
    /// per-submission answers, indexed by [`Ticket::index`]. Resets the
    /// coalescer for the next round.
    pub fn flush(&mut self) -> Vec<Vec<Result<Route, RouteError>>> {
        let threads = self.inner.resolved_threads();
        let group_answers: Vec<Vec<Result<Route, RouteError>>> = self
            .groups
            .iter()
            .map(|group| {
                if threads > 1 && group.pairs.len() > 1 {
                    pooled_batch(&self.inner, &group.view, threads, &group.pairs)
                } else {
                    serve_batch(
                        &self.inner.frozen,
                        &mut self.engine,
                        &mut self.path,
                        &group.view.mask,
                        &group.pairs,
                    )
                }
            })
            .collect();
        let answers = self
            .submissions
            .iter()
            .map(|&(group, offset, len)| group_answers[group][offset..offset + len].to_vec())
            .collect();
        self.groups.clear();
        self.submissions.clear();
        answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FtGreedy;
    use spanner_graph::generators::{complete, cycle};

    fn artifact(n: usize, f: usize) -> Arc<FrozenSpanner> {
        let g = complete(n);
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        Arc::new(ft.freeze(&g))
    }

    /// Serves one pair the most primitive way — a fresh mask plus the
    /// public reference implementation, no session machinery at all —
    /// so the session paths have something independent to agree with.
    fn reference_route(
        frozen: &FrozenSpanner,
        failures: &FaultSet,
        from: NodeId,
        to: NodeId,
    ) -> Result<Route, RouteError> {
        let mut mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
        frozen.apply_faults(failures, &mut mask);
        route_one(
            frozen,
            &mut DijkstraEngine::new(),
            &mut PathScratch::new(),
            &mask,
            from,
            to,
        )
    }

    fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
        (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (NodeId::new(u), NodeId::new(v))))
            .collect()
    }

    #[test]
    fn server_is_send_sync_and_handles_are_send() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<EpochServer>();
        assert_send::<EpochHandle>();
        assert_send::<BatchCoalescer>();
    }

    #[test]
    fn same_fault_set_shares_one_view() {
        let server = EpochServer::new(artifact(8, 1));
        let faults = FaultSet::vertices([NodeId::new(2), NodeId::new(5)]);
        let a = server.epoch(&faults);
        let b = server.epoch(&faults);
        assert!(Arc::ptr_eq(a.view(), b.view()), "views must be interned");
        let stats = server.stats();
        assert_eq!(stats.epochs_opened, 2);
        assert_eq!(stats.views_built, 1);
        assert_eq!(stats.views_shared, 1);
    }

    #[test]
    fn handle_matches_reference_per_query() {
        let frozen = artifact(9, 1);
        let server = EpochServer::new(Arc::clone(&frozen));
        for failed in 0..9usize {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            let mut handle = server.epoch(&failures);
            for &(u, v) in &all_pairs(9) {
                assert_eq!(
                    handle.route(u, v),
                    reference_route(&frozen, &failures, u, v),
                    "{u}->{v} failing v{failed}"
                );
                assert_eq!(
                    handle.route_cost(u, v),
                    handle.route(u, v).map(|r| r.dist),
                    "cost/route disagree {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn concurrent_tenants_match_sequential_reference() {
        let frozen = artifact(10, 1);
        let server = EpochServer::new(Arc::clone(&frozen));
        let pairs = all_pairs(10);
        let tenants: Vec<FaultSet> = (0..6)
            .map(|i| FaultSet::vertices([NodeId::new(i)]))
            .collect();
        let concurrent: Vec<Vec<Result<Route, RouteError>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = tenants
                .iter()
                .map(|faults| {
                    let mut session = server.epoch(faults);
                    let pairs = &pairs;
                    scope.spawn(move || session.route_batch(pairs))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (faults, answers) in tenants.iter().zip(&concurrent) {
            let reference: Vec<_> = pairs
                .iter()
                .map(|&(u, v)| reference_route(&frozen, faults, u, v))
                .collect();
            assert_eq!(answers, &reference, "tenant {faults:?} diverged");
        }
    }

    #[test]
    fn pooled_batches_from_multiple_handles_are_bit_identical() {
        let frozen = artifact(10, 1);
        let pairs = all_pairs(10);
        let server = EpochServer::new(Arc::clone(&frozen)).with_threads(3);
        for failed in [0usize, 4, 9] {
            let failures = FaultSet::vertices([NodeId::new(failed)]);
            let mut sequential = server.epoch(&failures);
            let expected = sequential.route_batch(&pairs);
            let mut pooled = server.epoch(&failures);
            assert_eq!(
                pooled.par_route_batch(&pairs),
                expected,
                "failing v{failed}"
            );
        }
    }

    #[test]
    fn derive_matches_from_scratch_and_counts_delta_ops() {
        let server = EpochServer::new(artifact(9, 2));
        let pairs = all_pairs(9);
        let mut base = server.epoch(&FaultSet::vertices([NodeId::new(1)]));
        let ops_before = server.stats().delta_component_ops;
        // Δ = {+v4, -v1}: derived view must equal the from-scratch {v4}.
        let mut delta = EpochDelta::new();
        delta
            .fault_vertex(NodeId::new(4))
            .restore_vertex(NodeId::new(1));
        let mut derived = base.derive(&delta);
        let mut scratch_built = server.epoch(&FaultSet::vertices([NodeId::new(4)]));
        assert!(
            Arc::ptr_eq(derived.view(), scratch_built.view()),
            "derived and from-scratch epochs must intern to one view"
        );
        assert_eq!(
            derived.route_batch(&pairs),
            scratch_built.route_batch(&pairs)
        );
        assert!(base.route(NodeId::new(0), NodeId::new(2)).is_ok());
        assert_eq!(
            server.stats().delta_component_ops - ops_before,
            2,
            "delta cost is the operation count"
        );
    }

    #[test]
    fn net_noop_delta_reuses_the_parent_view() {
        let server = EpochServer::new(artifact(8, 1));
        let base = server.epoch(&FaultSet::vertices([NodeId::new(3)]));
        let mut delta = EpochDelta::new();
        delta
            .fault_vertex(NodeId::new(5))
            .restore_vertex(NodeId::new(5))
            .fault_vertex(NodeId::new(3)); // already down: redundant
        let derived = base.derive(&delta);
        assert!(Arc::ptr_eq(base.view(), derived.view()));
    }

    #[test]
    fn delta_translates_parent_edges() {
        let g = cycle(6);
        let full = crate::Spanner::from_parent_edges(&g, g.edge_ids(), 3);
        let server = EpochServer::new(Arc::new(full.freeze()));
        let mut delta = EpochDelta::new();
        delta.fault_parent_edge(EdgeId::new(0));
        let mut handle = server.epoch_clear().step(&delta);
        let route = handle.route(NodeId::new(0), NodeId::new(1)).unwrap();
        assert_eq!(route.dist, Dist::finite(5), "must detour the long way");
        // Restoring through a delta returns to the clear view.
        let mut back = EpochDelta::new();
        back.restore_parent_edge(EdgeId::new(0));
        let mut restored = handle.step(&back);
        assert_eq!(
            restored.route(NodeId::new(0), NodeId::new(1)).unwrap().dist,
            Dist::finite(1)
        );
    }

    #[test]
    fn coalescer_answers_match_private_batches() {
        let server = EpochServer::new(artifact(9, 1));
        let pairs = all_pairs(9);
        let sets = [
            FaultSet::vertices([NodeId::new(0)]),
            FaultSet::vertices([NodeId::new(4)]),
            FaultSet::vertices([NodeId::new(0)]), // shares tenant 0's view
        ];
        let sessions: Vec<EpochHandle> = sets.iter().map(|s| server.epoch(s)).collect();
        let mut front = BatchCoalescer::new(&server);
        let tickets: Vec<Ticket> = sessions
            .iter()
            .map(|session| front.submit(session, &pairs))
            .collect();
        assert_eq!(front.pending(), 3);
        assert_eq!(front.pending_views(), 2, "two tenants share one view");
        let coalesced = front.flush();
        assert_eq!(front.pending(), 0);
        for (session, ticket) in sessions.into_iter().zip(tickets) {
            let mut session = session;
            assert_eq!(
                coalesced[ticket.index()],
                session.route_batch(&pairs),
                "coalesced answers diverged from the private batch"
            );
        }
    }

    #[test]
    fn empty_and_tiny_batches() {
        let server = EpochServer::new(artifact(6, 1)).with_threads(4);
        let mut handle = server.epoch_clear();
        assert!(handle.par_route_batch(&[]).is_empty());
        let one = handle.par_route_batch(&[(NodeId::new(0), NodeId::new(5))]);
        assert_eq!(one.len(), 1);
        assert!(one[0].is_ok());
    }

    #[test]
    fn epoch_from_spanner_mask_matches_fault_set_entry() {
        let frozen = artifact(8, 1);
        let server = EpochServer::new(frozen);
        let faults = FaultSet::vertices([NodeId::new(2)]);
        let by_set = server.epoch(&faults);
        let mask = faults.to_mask(8, server.artifact().edge_count());
        let by_mask = server.epoch_from_spanner_mask(&mask);
        assert!(Arc::ptr_eq(by_set.view(), by_mask.view()));
    }

    #[test]
    #[should_panic(expected = "configure the server before its first pooled batch")]
    fn thread_configuration_after_spawn_panics() {
        let server = EpochServer::new(artifact(6, 1)).with_threads(2);
        let mut handle = server.epoch_clear();
        let _ = handle.par_route_batch(&all_pairs(6));
        let _ = server.with_threads(4);
    }
}
