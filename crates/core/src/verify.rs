//! Spanner verification: plain, under explicit faults, exhaustive over all
//! fault sets, randomized, and adversarial (replaying recorded witnesses).
//!
//! All checks reduce to the standard *per-edge criterion*: `H ∖ F` is a
//! `k`-spanner of `G ∖ F` iff `dist_{H∖F}(u, v) ≤ k·w(u, v)` for every
//! edge `(u, v, w)` of `G ∖ F` whose endpoints survive. (Any shortest path
//! of `G ∖ F` decomposes into such edges; stretching each by ≤ k stretches
//! the whole path by ≤ k.) This turns verification into `|E(G)|` bounded
//! Dijkstra queries instead of all-pairs work.

use crate::{FtSpanner, Spanner};
use rand::seq::SliceRandom;
use rand::Rng;
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{DijkstraEngine, EdgeId, Graph, NodeId};

/// Result of a single stretch check.
#[derive(Clone, Debug)]
pub struct StretchReport {
    /// `true` iff every surviving parent edge is stretched by at most `k`.
    pub satisfied: bool,
    /// The worst stretch ratio observed (`f64::INFINITY` if disconnected
    /// where the parent is connected).
    pub max_stretch: f64,
    /// A pair witnessing the worst stretch, if any edge was checked.
    pub worst_pair: Option<(NodeId, NodeId)>,
    /// Number of parent edges checked.
    pub checked_edges: usize,
}

/// Verifies the plain (fault-free) spanner property.
///
/// # Examples
///
/// ```
/// use spanner_core::{greedy_spanner, verify::verify_spanner};
/// use spanner_graph::generators::complete;
///
/// let g = complete(12);
/// let s = greedy_spanner(&g, 3);
/// assert!(verify_spanner(&g, &s).satisfied);
/// ```
pub fn verify_spanner(parent: &Graph, spanner: &Spanner) -> StretchReport {
    verify_under_faults(parent, spanner, &FaultSet::empty(FaultModel::Vertex))
}

/// Verifies that `spanner ∖ faults` is a `stretch`-spanner of
/// `parent ∖ faults` (per-edge criterion). Fault edge ids refer to the
/// *parent* graph.
pub fn verify_under_faults(parent: &Graph, spanner: &Spanner, faults: &FaultSet) -> StretchReport {
    let stretch = spanner.stretch();
    let h_mask = spanner.fault_mask(faults);
    let mut engine = DijkstraEngine::new();
    let mut max_stretch = 0.0f64;
    let mut worst_pair = None;
    let mut satisfied = true;
    let mut checked_edges = 0usize;
    let faulted_edge = |e: EdgeId| faults.edge_faults().contains(&e);
    let faulted_vertex = |v: NodeId| faults.vertex_faults().contains(&v);
    for (id, e) in parent.edges() {
        if faulted_edge(id) || faulted_vertex(e.u()) || faulted_vertex(e.v()) {
            continue;
        }
        checked_edges += 1;
        let bound = e.weight().stretched(stretch);
        if let Some(d) = engine.dist_bounded(spanner.graph(), e.u(), e.v(), bound, &h_mask) {
            let ratio = d.stretch_over(e.weight());
            if ratio > max_stretch {
                max_stretch = ratio;
                worst_pair = Some((e.u(), e.v()));
            }
        } else {
            satisfied = false;
            let d = spanner_graph::dijkstra::dist(spanner.graph(), e.u(), e.v(), &h_mask);
            let ratio = d.stretch_over(e.weight());
            if ratio > max_stretch || worst_pair.is_none() {
                max_stretch = ratio;
                worst_pair = Some((e.u(), e.v()));
            }
        }
    }
    StretchReport {
        satisfied,
        max_stretch,
        worst_pair,
        checked_edges,
    }
}

/// Result of a multi-fault-set audit.
#[derive(Clone, Debug)]
pub struct FaultAudit {
    /// Number of fault sets checked.
    pub trials: usize,
    /// Number of fault sets under which the spanner property failed.
    pub violations: usize,
    /// The first failing fault set with its report, if any.
    pub first_violation: Option<(FaultSet, StretchReport)>,
}

impl FaultAudit {
    /// `true` iff no violation was found.
    pub fn satisfied(&self) -> bool {
        self.violations == 0
    }

    fn record(&mut self, faults: &FaultSet, report: StretchReport) {
        self.trials += 1;
        if !report.satisfied {
            self.violations += 1;
            if self.first_violation.is_none() {
                self.first_violation = Some((faults.clone(), report));
            }
        }
    }
}

/// Exhaustively verifies the `f`-fault-tolerant spanner property: every
/// fault set of size at most `budget` is checked. Cost grows as
/// `O(n^budget)` (or `m^budget`) — small instances only.
pub fn verify_ft_exhaustive(
    parent: &Graph,
    spanner: &Spanner,
    budget: usize,
    model: FaultModel,
) -> FaultAudit {
    let mut audit = FaultAudit {
        trials: 0,
        violations: 0,
        first_violation: None,
    };
    let pool: Vec<usize> = match model {
        FaultModel::Vertex => (0..parent.node_count()).collect(),
        FaultModel::Edge => (0..parent.edge_count()).collect(),
    };
    let mut chosen: Vec<usize> = Vec::new();
    struct Search<'a> {
        parent: &'a Graph,
        spanner: &'a Spanner,
        model: FaultModel,
        pool: &'a [usize],
    }
    impl Search<'_> {
        fn recurse(
            &self,
            from: usize,
            remaining: usize,
            chosen: &mut Vec<usize>,
            audit: &mut FaultAudit,
        ) {
            let faults = match self.model {
                FaultModel::Vertex => FaultSet::vertices(chosen.iter().map(|i| NodeId::new(*i))),
                FaultModel::Edge => FaultSet::edges(chosen.iter().map(|i| EdgeId::new(*i))),
            };
            let report = verify_under_faults(self.parent, self.spanner, &faults);
            audit.record(&faults, report);
            if remaining == 0 {
                return;
            }
            for i in from..self.pool.len() {
                chosen.push(self.pool[i]);
                self.recurse(i + 1, remaining - 1, chosen, audit);
                chosen.pop();
            }
        }
    }
    Search {
        parent,
        spanner,
        model,
        pool: &pool,
    }
    .recurse(0, budget, &mut chosen, &mut audit);
    audit
}

/// Exact ∀F certification for the **vertex** model without enumerating
/// fault sets.
///
/// Key reduction (the same one FT-greedy itself rests on): `spanner` fails
/// for some `|F| ≤ budget` iff there is a parent edge `(u, v)` and a fault
/// set `F` avoiding `{u, v}` with `dist_{H∖F}(u, v) > k·w(u, v)` — which
/// is precisely a fault-oracle query against `H`. (Faulting `u` or `v`
/// exempts the pair, and vertex faults act identically on `G` and `H`.)
/// So one exact oracle query per parent edge decides the property, in
/// oracle time instead of `O(n^budget)` enumerations.
///
/// Returns the certificate: `None` if the property holds, else the
/// violating parent edge and the fault set that breaks it.
///
/// # Examples
///
/// ```
/// use spanner_core::{verify::certify_vft_exact, FtGreedy};
/// use spanner_graph::generators::complete;
///
/// let g = complete(12);
/// let ft = FtGreedy::new(&g, 3).faults(2).run();
/// assert!(certify_vft_exact(&g, ft.spanner(), 2).is_none());
/// ```
pub fn certify_vft_exact(
    parent: &Graph,
    spanner: &Spanner,
    budget: usize,
) -> Option<(EdgeId, FaultSet)> {
    use spanner_faults::{BranchingOracle, FaultOracle, OracleQuery};
    let mut oracle = BranchingOracle::new();
    for (id, e) in parent.edges() {
        let query = OracleQuery {
            u: e.u(),
            v: e.v(),
            bound: e.weight().stretched(spanner.stretch()),
            budget,
            model: FaultModel::Vertex,
        };
        if let Some(found) = oracle.find_blocking_faults(spanner.graph(), query) {
            return Some((id, found));
        }
    }
    None
}

/// Randomized audit: `trials` fault sets of size exactly `min(budget, pool)`
/// sampled uniformly without replacement within each set.
pub fn verify_ft_sampled(
    parent: &Graph,
    spanner: &Spanner,
    budget: usize,
    model: FaultModel,
    trials: usize,
    rng: &mut impl Rng,
) -> FaultAudit {
    let mut audit = FaultAudit {
        trials: 0,
        violations: 0,
        first_violation: None,
    };
    let mut pool: Vec<usize> = match model {
        FaultModel::Vertex => (0..parent.node_count()).collect(),
        FaultModel::Edge => (0..parent.edge_count()).collect(),
    };
    let size = budget.min(pool.len());
    for _ in 0..trials {
        pool.shuffle(rng);
        let faults = match model {
            FaultModel::Vertex => FaultSet::vertices(pool[..size].iter().map(|i| NodeId::new(*i))),
            FaultModel::Edge => FaultSet::edges(pool[..size].iter().map(|i| EdgeId::new(*i))),
        };
        let report = verify_under_faults(parent, spanner, &faults);
        audit.record(&faults, report);
    }
    audit
}

/// Adaptive audit: hill-climbs fault sets toward higher stretch.
///
/// Between blind sampling ([`verify_ft_sampled`]) and exact certification
/// ([`certify_vft_exact`], vertex model only) sits local search: start
/// from random fault sets and greedily swap single faults while the worst
/// observed stretch increases. This finds violations random sampling
/// misses — especially in the edge model, where no exact certifier is
/// available — while staying polynomial.
///
/// `restarts` independent climbs are performed; each evaluates at most
/// `restarts × pool × budget`-ish stretch reports.
pub fn verify_ft_adaptive(
    parent: &Graph,
    spanner: &Spanner,
    budget: usize,
    model: FaultModel,
    restarts: usize,
    rng: &mut impl Rng,
) -> FaultAudit {
    let mut audit = FaultAudit {
        trials: 0,
        violations: 0,
        first_violation: None,
    };
    let pool_len = match model {
        FaultModel::Vertex => parent.node_count(),
        FaultModel::Edge => parent.edge_count(),
    };
    let size = budget.min(pool_len);
    if size == 0 {
        let faults = FaultSet::empty(model);
        let report = verify_under_faults(parent, spanner, &faults);
        audit.record(&faults, report);
        return audit;
    }
    let make = |ids: &Vec<usize>| match model {
        FaultModel::Vertex => FaultSet::vertices(ids.iter().map(|i| NodeId::new(*i))),
        FaultModel::Edge => FaultSet::edges(ids.iter().map(|i| EdgeId::new(*i))),
    };
    let mut pool: Vec<usize> = (0..pool_len).collect();
    for _ in 0..restarts {
        pool.shuffle(rng);
        let mut current: Vec<usize> = pool[..size].to_vec();
        let faults = make(&current);
        let mut report = verify_under_faults(parent, spanner, &faults);
        audit.record(&faults, report.clone());
        let mut best = report.max_stretch;
        // Greedy single-swap climbs, bounded to keep the audit polynomial.
        let mut improved = true;
        let mut rounds = 0;
        while improved && report.satisfied && rounds < 4 {
            rounds += 1;
            improved = false;
            'swap: for slot in 0..current.len() {
                // Try a handful of random replacements per slot.
                for _ in 0..8 {
                    let candidate = pool[rng.gen_range(0..pool_len)];
                    if current.contains(&candidate) {
                        continue;
                    }
                    let old = current[slot];
                    current[slot] = candidate;
                    let faults = make(&current);
                    let next = verify_under_faults(parent, spanner, &faults);
                    audit.record(&faults, next.clone());
                    if !next.satisfied || next.max_stretch > best {
                        best = next.max_stretch;
                        report = next;
                        improved = true;
                        if !report.satisfied {
                            break 'swap;
                        }
                    } else {
                        current[slot] = old;
                    }
                }
            }
        }
        if !report.satisfied {
            // One violation per restart is enough signal.
            continue;
        }
    }
    audit
}

/// Adversarial audit: replays the witness fault sets the construction
/// itself recorded (translated to parent ids). These are fault sets known
/// to stress the spanner — each one forced an edge to be kept.
pub fn verify_ft_adversarial(parent: &Graph, ft: &FtSpanner) -> FaultAudit {
    let mut audit = FaultAudit {
        trials: 0,
        violations: 0,
        first_violation: None,
    };
    for witness in ft.witnesses() {
        let faults = match witness {
            FaultSet::Vertices(v) => FaultSet::vertices(v.iter().copied()),
            FaultSet::Edges(own_edges) => {
                FaultSet::edges(own_edges.iter().map(|e| ft.spanner().parent_edge(*e)))
            }
        };
        let report = verify_under_faults(parent, ft.spanner(), &faults);
        audit.record(&faults, report);
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_spanner, FtGreedy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spanner_graph::generators::{complete, cycle, grid, with_uniform_weights};

    #[test]
    fn greedy_passes_plain_verification() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = with_uniform_weights(&complete(15), 1, 9, &mut rng);
        let s = greedy_spanner(&g, 3);
        let r = verify_spanner(&g, &s);
        assert!(r.satisfied);
        assert!(r.max_stretch <= 3.0);
        assert_eq!(r.checked_edges, g.edge_count());
    }

    #[test]
    fn greedy_fails_under_faults_it_was_not_built_for() {
        // A plain greedy 3-spanner of a cycle drops an edge; faulting a
        // cycle vertex then disconnects some pair entirely.
        let g = cycle(4);
        let s = greedy_spanner(&g, 3);
        assert_eq!(s.edge_count(), 3, "C4 loses exactly one edge at k=3");
        let audit = verify_ft_exhaustive(&g, &s, 1, FaultModel::Vertex);
        assert!(
            !audit.satisfied(),
            "plain spanner should break under faults"
        );
        assert!(audit.trials > 1);
    }

    #[test]
    fn ft_greedy_passes_exhaustive_vertex_audit() {
        for f in 0..=2usize {
            let g = complete(8);
            let ft = FtGreedy::new(&g, 3).faults(f).run();
            let audit = verify_ft_exhaustive(&g, ft.spanner(), f, FaultModel::Vertex);
            assert!(
                audit.satisfied(),
                "f={f}: {} violations of {}",
                audit.violations,
                audit.trials
            );
        }
    }

    #[test]
    fn ft_greedy_passes_exhaustive_edge_audit() {
        let g = grid(3, 3);
        let ft = FtGreedy::new(&g, 3).faults(1).model(FaultModel::Edge).run();
        let audit = verify_ft_exhaustive(&g, ft.spanner(), 1, FaultModel::Edge);
        assert!(audit.satisfied(), "{:?}", audit.first_violation);
    }

    #[test]
    fn sampled_audit_agrees_with_exhaustive_on_good_spanner() {
        let g = complete(9);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let mut rng = StdRng::seed_from_u64(8);
        let audit = verify_ft_sampled(&g, ft.spanner(), 2, FaultModel::Vertex, 64, &mut rng);
        assert!(audit.satisfied());
        assert_eq!(audit.trials, 64);
    }

    #[test]
    fn adversarial_audit_replays_witnesses() {
        let g = complete(9);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let audit = verify_ft_adversarial(&g, &ft);
        assert_eq!(audit.trials, ft.spanner().edge_count());
        assert!(audit.satisfied(), "{:?}", audit.first_violation);
    }

    #[test]
    fn adversarial_audit_edge_model_translates_ids() {
        let g = grid(3, 3);
        let ft = FtGreedy::new(&g, 3).faults(1).model(FaultModel::Edge).run();
        let audit = verify_ft_adversarial(&g, &ft);
        assert!(audit.satisfied(), "{:?}", audit.first_violation);
    }

    #[test]
    fn disconnection_reports_infinite_stretch() {
        let g = cycle(4);
        // Keep a single edge: everything else is unreachable.
        let s = Spanner::from_parent_edges(&g, [EdgeId::new(0)], 3);
        let r = verify_spanner(&g, &s);
        assert!(!r.satisfied);
        assert!(r.max_stretch.is_infinite());
        assert!(r.worst_pair.is_some());
    }

    #[test]
    fn adaptive_audit_clean_on_ft_spanner() {
        let g = complete(10);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let mut rng = StdRng::seed_from_u64(12);
        for model in [FaultModel::Vertex, FaultModel::Edge] {
            let audit = verify_ft_adaptive(&g, ft.spanner(), 2, model, 4, &mut rng);
            assert!(audit.satisfied(), "{model}: {:?}", audit.first_violation);
            assert!(audit.trials >= 4);
        }
    }

    #[test]
    fn adaptive_audit_finds_planted_violation() {
        // The under-built C4 spanner from the disconnection test: adaptive
        // search must find the violating fault quickly.
        let g = cycle(4);
        let s = greedy_spanner(&g, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let audit = verify_ft_adaptive(&g, &s, 1, FaultModel::Vertex, 6, &mut rng);
        assert!(!audit.satisfied(), "adaptive audit missed the violation");
        // Edge model: faulting a kept edge of the path disconnects too.
        let audit = verify_ft_adaptive(&g, &s, 1, FaultModel::Edge, 6, &mut rng);
        assert!(!audit.satisfied());
    }

    #[test]
    fn adaptive_audit_zero_budget() {
        let g = complete(6);
        let s = Spanner::from_parent_edges(&g, g.edge_ids(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let audit = verify_ft_adaptive(&g, &s, 0, FaultModel::Vertex, 3, &mut rng);
        assert!(audit.satisfied());
        assert_eq!(audit.trials, 1);
    }

    #[test]
    fn exact_certification_agrees_with_enumeration() {
        // Positive cases: FT-greedy outputs certify clean.
        for f in 0..=2usize {
            let g = complete(8);
            let ft = FtGreedy::new(&g, 3).faults(f).run();
            let cert = certify_vft_exact(&g, ft.spanner(), f);
            let enumerated = verify_ft_exhaustive(&g, ft.spanner(), f, FaultModel::Vertex);
            assert!(cert.is_none(), "f={f}: {cert:?}");
            assert!(enumerated.satisfied());
        }
        // Negative case: a plain greedy spanner fails under one fault, and
        // the certificate pinpoints a real violation.
        let g = cycle(4);
        let s = greedy_spanner(&g, 3);
        let (edge, faults) = certify_vft_exact(&g, &s, 1).expect("must find a violation");
        let report = verify_under_faults(&g, &s, &faults);
        assert!(!report.satisfied);
        // The violating edge survives the faults (its endpoints are alive).
        let (u, v) = g.endpoints(edge);
        assert!(!faults.vertex_faults().contains(&u));
        assert!(!faults.vertex_faults().contains(&v));
        // And enumeration agrees there is a violation.
        assert!(!verify_ft_exhaustive(&g, &s, 1, FaultModel::Vertex).satisfied());
    }

    #[test]
    fn exact_certification_on_random_graphs_matches_enumeration() {
        use spanner_graph::generators::erdos_renyi;
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..10 {
            let g = erdos_renyi(10, 0.4, &mut rng);
            // Deliberately under-built: f=0 spanner audited at f=1.
            let s = greedy_spanner(&g, 3);
            let cert = certify_vft_exact(&g, &s, 1);
            let enumerated = verify_ft_exhaustive(&g, &s, 1, FaultModel::Vertex);
            assert_eq!(
                cert.is_none(),
                enumerated.satisfied(),
                "trial {trial}: certification and enumeration disagree"
            );
        }
    }

    #[test]
    fn trivial_spanner_always_satisfies() {
        let g = complete(7);
        let s = Spanner::from_parent_edges(&g, g.edge_ids(), 1);
        let audit = verify_ft_exhaustive(&g, &s, 2, FaultModel::Vertex);
        assert!(audit.satisfied());
        let audit = verify_ft_exhaustive(&g, &s, 2, FaultModel::Edge);
        assert!(audit.satisfied());
    }
}
