//! Spanner quality metrics beyond edge count.
//!
//! Practitioners judge spanners on more than sparsity: *lightness* (total
//! weight over MST weight) matters when edges are priced by length (fiber,
//! cable), and degree statistics matter for router fan-out. Experiment E12
//! reports these for every construction.

use crate::Spanner;
use spanner_graph::{mst, Dist, Graph};

/// A bundle of quality measures for one spanner against its parent.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannerMetrics {
    /// Edge count of the spanner.
    pub edges: usize,
    /// `|E(H)| / |E(G)|`.
    pub retention: f64,
    /// Total spanner weight.
    pub weight: Dist,
    /// `weight(H) / weight(MST(G))` — at least 1 for connected spanners
    /// of connected parents.
    pub lightness: f64,
    /// Maximum degree of the spanner.
    pub max_degree: usize,
    /// Average degree of the spanner (`2m/n`; 0 for empty node sets).
    pub avg_degree: f64,
}

/// Computes [`SpannerMetrics`] for `spanner` over `parent`.
///
/// # Examples
///
/// ```
/// use spanner_core::{greedy_spanner, metrics::spanner_metrics};
/// use spanner_graph::generators::complete;
///
/// let g = complete(10);
/// let s = greedy_spanner(&g, 3);
/// let m = spanner_metrics(&g, &s);
/// assert!(m.lightness >= 1.0);
/// assert!(m.retention < 1.0);
/// ```
pub fn spanner_metrics(parent: &Graph, spanner: &Spanner) -> SpannerMetrics {
    let h = spanner.graph();
    let n = h.node_count();
    let weight = h.total_weight();
    let mst_w = mst::mst_weight(parent);
    let lightness = match (weight.value(), mst_w.value()) {
        (Some(w), Some(m)) if m > 0 => w as f64 / m as f64,
        _ => f64::NAN,
    };
    SpannerMetrics {
        edges: h.edge_count(),
        retention: spanner.retention(parent),
        weight,
        lightness,
        max_degree: h.max_degree(),
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * h.edge_count() as f64 / n as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_spanner, FtGreedy, Spanner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spanner_graph::generators::{complete, with_uniform_weights};

    #[test]
    fn trivial_spanner_has_lightness_of_whole_graph() {
        let g = complete(6); // unit weights: MST weight 5, total 15
        let s = Spanner::from_parent_edges(&g, g.edge_ids(), 1);
        let m = spanner_metrics(&g, &s);
        assert_eq!(m.edges, 15);
        assert_eq!(m.retention, 1.0);
        assert!((m.lightness - 3.0).abs() < 1e-9);
        assert_eq!(m.max_degree, 5);
        assert!((m.avg_degree - 5.0).abs() < 1e-9);
    }

    #[test]
    fn connected_spanner_lightness_at_least_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = with_uniform_weights(&complete(14), 1, 20, &mut rng);
        for stretch in [1u64, 3, 5] {
            let s = greedy_spanner(&g, stretch);
            let m = spanner_metrics(&g, &s);
            assert!(
                m.lightness >= 1.0 - 1e-9,
                "stretch {stretch}: {}",
                m.lightness
            );
        }
    }

    #[test]
    fn fault_tolerance_costs_weight() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = with_uniform_weights(&complete(12), 1, 9, &mut rng);
        let plain = spanner_metrics(&g, &greedy_spanner(&g, 3));
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let tolerant = spanner_metrics(&g, ft.spanner());
        assert!(tolerant.edges > plain.edges);
        assert!(tolerant.lightness > plain.lightness);
    }

    #[test]
    fn stretch_one_greedy_is_light_on_trees() {
        // A tree input: the only spanner is the tree itself, lightness 1.
        let g = spanner_graph::Graph::from_weighted_edges(4, [(0, 1, 2), (1, 2, 3), (1, 3, 4)])
            .unwrap();
        let s = greedy_spanner(&g, 1);
        let m = spanner_metrics(&g, &s);
        assert!((m.lightness - 1.0).abs() < 1e-9);
        assert_eq!(m.retention, 1.0);
    }
}
