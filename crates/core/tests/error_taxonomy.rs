//! Snapshot of the stable error-code taxonomy.
//!
//! Every typed error on the serving trust boundary — container decode
//! ([`BinaryError`]), artifact cross-validation ([`ArtifactError`]) and
//! query serving ([`RouteError`]) — carries a stable `code()`. Replicas
//! and operators match on those codes, so the *exact* set is part of
//! the public contract: this test pins it, and pins the documentation
//! appendix (`docs/ARTIFACT_FORMAT.md`, "Attack classes & error
//! taxonomy") to the same set. Adding or renaming a variant without
//! updating the snapshot below **and** the docs fails here, loudly.

use spanner_core::frozen::{ArtifactError, ARTIFACT_ERROR_CODES};
use spanner_core::routing::{RouteError, ROUTE_ERROR_CODES};
use spanner_graph::io::binary::{remediation_for_code, BinaryError, BINARY_ERROR_CODES};
use spanner_graph::{GraphError, NodeId};
use std::collections::BTreeSet;

/// The frozen taxonomy. This list is the snapshot: a new error variant
/// (or a renamed code) must be added here deliberately, with its
/// remediation documented, or the assertions below fail.
const SNAPSHOT: &[&str] = &[
    "artifact/bad-magic",
    "artifact/bad-version",
    "artifact/bit-flip",
    "artifact/cross-section",
    "artifact/graph-invariant",
    "artifact/malformed",
    "artifact/misaligned-section",
    "artifact/missing-section",
    "artifact/section-replay",
    "artifact/truncation",
    "artifact/unknown-section",
    "artifact/witness-index",
    "artifact/witnesses-detached",
    "route/endpoint-failed",
    "route/unreachable",
];

/// One constructed value per variant of every error type on the
/// boundary. If a crate adds a variant, its `code()` match arm is
/// compiler-enforced in-crate; this function is what drags the new code
/// into the snapshot comparison.
fn constructed_codes() -> BTreeSet<&'static str> {
    let binary = [
        BinaryError::Truncated { context: "t" },
        BinaryError::BadMagic {
            found: [0; 8],
            expected: *b"VFTSPANR",
        },
        BinaryError::UnsupportedVersion {
            found: 9,
            supported: 1,
        },
        BinaryError::ChecksumMismatch {
            stored: 0,
            computed: 1,
        },
        BinaryError::UnknownSection { tag: 7 },
        BinaryError::DuplicateSection { tag: 1 },
        BinaryError::MissingSection { name: "meta" },
        BinaryError::Malformed {
            context: "c",
            detail: String::new(),
        },
        BinaryError::Graph(GraphError::SelfLoop {
            node: NodeId::new(0),
        }),
        BinaryError::MisalignedSection {
            context: "c",
            offset: 1,
        },
        BinaryError::WitnessIndex {
            context: "c",
            detail: String::new(),
        },
    ];
    let artifact = [
        ArtifactError::Format(BinaryError::Truncated { context: "t" }),
        ArtifactError::Inconsistent {
            context: "c",
            detail: String::new(),
        },
        ArtifactError::WitnessesDetached,
    ];
    let route = [
        RouteError::EndpointFailed(NodeId::new(0)),
        RouteError::Unreachable {
            from: NodeId::new(0),
            to: NodeId::new(1),
        },
    ];
    let mut codes = BTreeSet::new();
    codes.extend(binary.iter().map(BinaryError::code));
    codes.extend(artifact.iter().map(ArtifactError::code));
    codes.extend(route.iter().map(RouteError::code));
    codes
}

#[test]
fn code_set_matches_the_snapshot_exactly() {
    let constructed = constructed_codes();
    let snapshot: BTreeSet<&str> = SNAPSHOT.iter().copied().collect();
    assert_eq!(
        constructed, snapshot,
        "the error-code taxonomy drifted: update the SNAPSHOT in this \
         test AND the appendix in docs/ARTIFACT_FORMAT.md together"
    );
    // The per-crate exported lists must agree with what the variants
    // actually produce (they are the docs' source of truth).
    let exported: BTreeSet<&str> = BINARY_ERROR_CODES
        .iter()
        .chain(ARTIFACT_ERROR_CODES)
        .chain(ROUTE_ERROR_CODES)
        .copied()
        .collect();
    assert_eq!(constructed, exported, "exported code lists drifted");
}

#[test]
fn format_errors_route_through_the_binary_taxonomy() {
    // One source of truth: wrapping a BinaryError must not invent a
    // second code for the same defect.
    let inner = BinaryError::ChecksumMismatch {
        stored: 1,
        computed: 2,
    };
    let code = inner.code();
    let wrapped = ArtifactError::from(BinaryError::ChecksumMismatch {
        stored: 1,
        computed: 2,
    });
    assert_eq!(wrapped.code(), code);
    assert_eq!(wrapped.remediation(), remediation_for_code(code));
}

#[test]
fn every_code_is_documented_with_a_remediation() {
    let doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/ARTIFACT_FORMAT.md"
    ))
    .expect("docs/ARTIFACT_FORMAT.md must exist");
    for code in SNAPSHOT {
        assert!(
            doc.contains(&format!("`{code}`")),
            "code {code} is not documented in docs/ARTIFACT_FORMAT.md"
        );
        if code.starts_with("artifact/") {
            let hint = remediation_for_code(code);
            assert_ne!(
                hint,
                remediation_for_code("artifact/definitely-not-a-code"),
                "code {code} only has the generic fallback remediation"
            );
            assert!(
                doc.contains(hint),
                "remediation for {code} ({hint:?}) is not in the docs appendix"
            );
        }
    }
}
