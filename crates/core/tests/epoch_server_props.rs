//! Concurrent epoch serving must be invisible in the answers.
//!
//! PR 6 rebuilt the read path around a shared `EpochServer` handing out
//! independent `EpochHandle` sessions with interned fault views and
//! O(Δ) epoch deltas. None of that machinery — view sharing between
//! tenants, per-handle scratch, delta derivation, batch coalescing — is
//! allowed to change a single bit of any answer: these property tests
//! pin N *interleaved* sessions with distinct fault sets to the
//! primitive [`route_one`] reference served pair by pair over a fresh
//! artifact (identical routes, distances and
//! errors across both fault models and `f ∈ {0, 1, 2}`), pin a
//! delta-derived epoch to the from-scratch epoch of the same final
//! fault set, and pin the instrumented delta counter to Σ|Δ| — the
//! serving-side work is proportional to the change, never to `|F|` or
//! `n`.

use proptest::prelude::*;
use spanner_core::routing::{Route, RouteError};
use spanner_core::serve::route_one;
use spanner_core::{BatchCoalescer, EpochDelta, EpochServer, FrozenSpanner, FtGreedy};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{DijkstraEngine, EdgeId, FaultMask, Graph, NodeId, PathScratch, Weight};
use std::sync::Arc;

/// Serves every pair alone through the primitive reference — one fresh
/// mask plus [`route_one`], no session machinery — the independent
/// answer the server sessions must agree with bit for bit.
fn reference_answers(
    frozen: &FrozenSpanner,
    failures: &FaultSet,
    pairs: &[(NodeId, NodeId)],
) -> Vec<Result<Route, RouteError>> {
    let mut mask = FaultMask::with_capacity(frozen.node_count(), frozen.edge_count());
    frozen.apply_faults(failures, &mut mask);
    let mut engine = DijkstraEngine::new();
    let mut scratch = PathScratch::new();
    pairs
        .iter()
        .map(|&(u, v)| route_one(frozen, &mut engine, &mut scratch, &mask, u, v))
        .collect()
}

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (5..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 7 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (NodeId::new(u), NodeId::new(v))))
        .collect()
}

/// Decodes one tenant's raw fault draw into a failure set in parent ids
/// (sized 0..3 — within and beyond the budget alike).
fn fault_set(model: FaultModel, raw: &[u32], g: &Graph) -> FaultSet {
    match model {
        FaultModel::Vertex => FaultSet::vertices(
            raw.iter()
                .map(|r| NodeId::new(*r as usize % g.node_count())),
        ),
        FaultModel::Edge => FaultSet::edges(
            raw.iter()
                .filter(|_| g.edge_count() > 0)
                .map(|r| EdgeId::new(*r as usize % g.edge_count().max(1))),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The cross-tenant isolation property: N sessions over one server,
    /// each under its own fault set, answering with their queries
    /// *interleaved* round-robin (so any state leak between handles or
    /// through the shared view table would surface), must each be
    /// bit-identical to the primitive reference served over a fresh
    /// artifact that only ever saw that tenant's faults.
    #[test]
    fn interleaved_tenants_match_fresh_sequential_reference(
        g in arb_graph(8, 4),
        f in 0usize..3,
        edge_model in any::<bool>(),
        tenant_raw in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..3), 2..5),
    ) {
        let model = if edge_model { FaultModel::Edge } else { FaultModel::Vertex };
        let ft = FtGreedy::new(&g, 3).faults(f).model(model).run();
        let spanner = ft.into_spanner();
        let fresh = spanner.freeze();
        let server = EpochServer::new(Arc::new(spanner.freeze()));
        let tenants: Vec<FaultSet> = tenant_raw
            .iter()
            .map(|raw| fault_set(model, raw, &g))
            .collect();
        let pairs = all_pairs(g.node_count());
        let mut sessions: Vec<_> = tenants.iter().map(|t| server.epoch(t)).collect();
        // Interleave: every pair is asked of every tenant, round-robin,
        // before moving to the next pair.
        let mut answers: Vec<Vec<Result<Route, RouteError>>> =
            vec![Vec::with_capacity(pairs.len()); sessions.len()];
        for &(u, v) in &pairs {
            for (tenant, session) in sessions.iter_mut().enumerate() {
                answers[tenant].push(session.route(u, v));
            }
        }
        for (tenant, faults) in tenants.iter().enumerate() {
            let expected = reference_answers(&fresh, faults, &pairs);
            prop_assert_eq!(&answers[tenant], &expected, "tenant {}", tenant);
        }
    }

    /// The delta regression: an epoch reached by deriving from an
    /// arbitrary parent must answer exactly like the epoch built from
    /// scratch for the same final fault set (vertex model; the edge
    /// translation is pinned by unit tests and the scenario engine).
    #[test]
    fn delta_derived_epoch_equals_from_scratch(
        g in arb_graph(8, 4),
        start_raw in proptest::collection::vec(any::<u32>(), 0..3),
        end_raw in proptest::collection::vec(any::<u32>(), 0..3),
    ) {
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let server = EpochServer::new(Arc::new(ft.into_spanner().freeze()));
        let n = g.node_count();
        let start: Vec<NodeId> =
            start_raw.iter().map(|r| NodeId::new(*r as usize % n)).collect();
        let end: Vec<NodeId> =
            end_raw.iter().map(|r| NodeId::new(*r as usize % n)).collect();
        // Delta = restore everything in start, fault everything in end
        // (overlaps and duplicates included — the delta must normalize).
        let mut delta = EpochDelta::new();
        for &v in &start {
            delta.restore_vertex(v);
        }
        for &v in &end {
            delta.fault_vertex(v);
        }
        let parent = server.epoch(&FaultSet::vertices(start));
        let mut derived = parent.step(&delta);
        let mut scratch = server.epoch(&FaultSet::vertices(end));
        prop_assert!(
            Arc::ptr_eq(derived.view(), scratch.view()),
            "derived and from-scratch epochs must intern to one view"
        );
        let pairs = all_pairs(n);
        prop_assert_eq!(derived.route_batch(&pairs), scratch.route_batch(&pairs));
    }

    /// The coalescer front-end: per-submission answers are exactly the
    /// submitting session's own `route_batch`, regardless of how many
    /// tenants (with shared or distinct views) flushed together.
    #[test]
    fn coalesced_flush_matches_private_batches(
        g in arb_graph(8, 4),
        tenant_raw in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..3), 2..5),
    ) {
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let server = EpochServer::new(Arc::new(ft.into_spanner().freeze()));
        let pairs = all_pairs(g.node_count());
        let sessions: Vec<_> = tenant_raw
            .iter()
            .map(|raw| server.epoch(&fault_set(FaultModel::Vertex, raw, &g)))
            .collect();
        let mut front = BatchCoalescer::new(&server);
        let tickets: Vec<_> = sessions
            .iter()
            .map(|session| front.submit(session, &pairs))
            .collect();
        let coalesced = front.flush();
        for (mut session, ticket) in sessions.into_iter().zip(tickets) {
            prop_assert_eq!(
                &coalesced[ticket.index()],
                &session.route_batch(&pairs)
            );
        }
    }
}

/// The O(Δ) instrumentation: stepping a session charges exactly the
/// delta's operation count to the server's counter — independent of how
/// many faults are already live (`|F|`) and of the graph size (`n`).
#[test]
fn delta_work_is_proportional_to_delta_not_fault_count_or_n() {
    for n in [12usize, 24] {
        let g = spanner_graph::generators::complete(n);
        let ft = FtGreedy::new(&g, 3).faults(2).run();
        let server = EpochServer::new(Arc::new(ft.into_spanner().freeze()));
        // Pile up a large standing fault set, then step by small deltas:
        // the counter must grow by Σ|Δ| only.
        let standing = FaultSet::vertices((0..n / 2).map(NodeId::new));
        let mut session = server.epoch(&standing);
        assert_eq!(server.stats().delta_component_ops, 0);
        let mut expected_ops = 0u64;
        for round in 0..5usize {
            let mut delta = EpochDelta::new();
            delta
                .fault_vertex(NodeId::new(n / 2 + (round % (n / 2 - 1))))
                .restore_vertex(NodeId::new(round % (n / 2)));
            expected_ops += delta.len() as u64;
            session.advance(&delta);
            assert_eq!(
                server.stats().delta_component_ops,
                expected_ops,
                "n={n} round={round}: delta work must equal Σ|Δ| exactly, \
                 not scale with |F|={} or n",
                n / 2
            );
        }
    }
}

/// Handles really are independent across threads: concurrent pooled and
/// sequential batches from different tenants agree with each tenant's
/// own sequential answers.
#[test]
fn concurrent_mixed_batches_are_isolated() {
    let g = spanner_graph::generators::complete(10);
    let ft = FtGreedy::new(&g, 3).faults(1).run();
    let server = EpochServer::new(Arc::new(ft.into_spanner().freeze())).with_threads(2);
    let pairs = all_pairs(10);
    let tenants: Vec<FaultSet> = (0..4)
        .map(|i| FaultSet::vertices([NodeId::new(i), NodeId::new(i + 4)]))
        .collect();
    let expected: Vec<Vec<Result<Route, RouteError>>> = tenants
        .iter()
        .map(|t| server.epoch(t).route_batch(&pairs))
        .collect();
    let got: Vec<Vec<Result<Route, RouteError>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut session = server.epoch(t);
                let pairs = &pairs;
                scope.spawn(move || {
                    if i % 2 == 0 {
                        session.par_route_batch(pairs)
                    } else {
                        session.route_batch(pairs)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(got, expected);
}
