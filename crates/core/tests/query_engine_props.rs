//! The freeze-and-serve read path must be invisible in the answers.
//!
//! PR 4 rebuilt query serving around an immutable [`FrozenSpanner`]
//! artifact and an epoch-based [`QueryEngine`] with sequential and
//! pooled batch entry points. None of that is allowed to change a single
//! bit of what a query returns: these property tests pin
//! [`QueryEngine::route_batch`] and [`QueryEngine::par_route_batch`] to
//! the one-query-per-epoch [`ResilientRouter`] — identical routes
//! (nodes *and* edges), identical distances, identical errors, in the
//! same order — across random weighted graphs, fault budgets `f ∈
//! {0, 1, 2}`, both fault models, and failure sets both within and
//! beyond the budget.
//!
//! `QueryEngine`'s mutate-then-query surface is deprecated in favor of
//! `EpochServer` sessions (`tests/epoch_server_props.rs` pins those);
//! this suite deliberately keeps exercising the deprecated shim so the
//! compatibility surface stays bit-identical for as long as it exists.
#![allow(deprecated)]

use proptest::prelude::*;
use spanner_core::routing::{ResilientRouter, Route, RouteError};
use spanner_core::{FtGreedy, QueryEngine};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{EdgeId, Graph, NodeId, Weight};
use std::sync::Arc;

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (5..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 7 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (NodeId::new(u), NodeId::new(v))))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batch_paths_match_sequential_router(
        g in arb_graph(9, 4),
        f in 0usize..3,
        edge_model in any::<bool>(),
        fault_raw in proptest::collection::vec(any::<u32>(), 0..4),
    ) {
        let model = if edge_model { FaultModel::Edge } else { FaultModel::Vertex };
        let ft = FtGreedy::new(&g, 3).faults(f).model(model).run();
        let spanner = ft.into_spanner();
        // Failure sets in *parent* ids, sized 0..4 — within and beyond
        // the budget alike (serving must agree either way; only the
        // in-budget case additionally guarantees reachability).
        let failures = match model {
            FaultModel::Vertex => FaultSet::vertices(
                fault_raw.iter().map(|r| NodeId::new(*r as usize % g.node_count())),
            ),
            FaultModel::Edge => FaultSet::edges(
                fault_raw
                    .iter()
                    .filter(|_| g.edge_count() > 0)
                    .map(|r| EdgeId::new(*r as usize % g.edge_count().max(1))),
            ),
        };
        let pairs = all_pairs(g.node_count());
        // Reference: the one-query-per-epoch compatibility router.
        let mut router = ResilientRouter::new(spanner.clone());
        let expected: Vec<Result<Route, RouteError>> = pairs
            .iter()
            .map(|&(u, v)| router.route(u, v, &failures))
            .collect();
        // Candidate 1: sequential batch over one shared frozen artifact.
        let frozen = Arc::new(spanner.freeze());
        let mut engine = QueryEngine::new(Arc::clone(&frozen));
        engine.epoch(&failures);
        prop_assert_eq!(&engine.route_batch(&pairs), &expected);
        // Candidate 2: pooled batch over the same artifact.
        let mut pooled = QueryEngine::new(frozen).with_threads(3);
        pooled.epoch(&failures);
        prop_assert_eq!(&pooled.par_route_batch(&pairs), &expected);
    }

    #[test]
    fn epoch_reuse_cannot_leak_between_fault_sets(
        g in arb_graph(8, 3),
        faults_a in proptest::collection::vec(any::<u32>(), 0..3),
        faults_b in proptest::collection::vec(any::<u32>(), 0..3),
    ) {
        let ft = FtGreedy::new(&g, 3).faults(1).run();
        let frozen = Arc::new(ft.into_spanner().freeze());
        let set_of = |raw: &[u32]| FaultSet::vertices(
            raw.iter().map(|r| NodeId::new(*r as usize % g.node_count())),
        );
        let pairs = all_pairs(g.node_count());
        // One long-lived engine cycling epochs A then B must answer B
        // exactly like a fresh engine that only ever saw B.
        let mut cycled = QueryEngine::new(Arc::clone(&frozen));
        cycled.epoch(&set_of(&faults_a));
        let _ = cycled.route_batch(&pairs);
        cycled.epoch(&set_of(&faults_b));
        let mut fresh = QueryEngine::new(frozen);
        fresh.epoch(&set_of(&faults_b));
        prop_assert_eq!(cycled.route_batch(&pairs), fresh.route_batch(&pairs));
    }
}

/// Regression: a poisoned (failed-endpoint) pair inside a batch yields
/// [`RouteError::EndpointFailed`] for exactly that slot, and every other
/// answer of the batch is exactly what it would have been without the
/// poisoned pair present.
#[test]
fn failed_endpoint_in_batch_is_isolated() {
    let g = spanner_graph::generators::complete(9);
    let ft = FtGreedy::new(&g, 3).faults(1).run();
    let frozen = Arc::new(ft.into_spanner().freeze());
    let failures = FaultSet::vertices([NodeId::new(4)]);

    let clean: Vec<(NodeId, NodeId)> = all_pairs(9)
        .into_iter()
        .filter(|&(u, v)| u.index() != 4 && v.index() != 4)
        .collect();
    let mut poisoned: Vec<(NodeId, NodeId)> = clean.clone();
    // Plant failed-endpoint pairs at the front, middle and back.
    poisoned.insert(0, (NodeId::new(4), NodeId::new(0)));
    poisoned.insert(poisoned.len() / 2, (NodeId::new(7), NodeId::new(4)));
    poisoned.push((NodeId::new(4), NodeId::new(8)));

    for threads in [1usize, 3] {
        let mut engine = QueryEngine::new(Arc::clone(&frozen)).with_threads(threads);
        engine.epoch(&failures);
        let with_poison = if threads == 1 {
            engine.route_batch(&poisoned)
        } else {
            engine.par_route_batch(&poisoned)
        };
        engine.epoch(&failures);
        let without = if threads == 1 {
            engine.route_batch(&clean)
        } else {
            engine.par_route_batch(&clean)
        };
        let mut clean_answers = with_poison.clone();
        for (slot, answer) in with_poison.iter().enumerate() {
            let (u, v) = poisoned[slot];
            if u.index() == 4 || v.index() == 4 {
                assert_eq!(
                    answer,
                    &Err(RouteError::EndpointFailed(NodeId::new(4))),
                    "threads={threads} slot {slot}"
                );
            }
        }
        clean_answers.retain(|a| a != &Err(RouteError::EndpointFailed(NodeId::new(4))));
        assert_eq!(
            clean_answers, without,
            "threads={threads}: poisoned pairs disturbed their neighbors"
        );
    }
}
