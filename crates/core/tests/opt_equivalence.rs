//! The optimized hot path must be invisible in the output.
//!
//! PR 2 rebuilt the FT-greedy oracle loop around an incremental CSR
//! spanner view, per-construction reusable scratch, a Zobrist-fingerprint
//! memo and a persistent parallel worker pool. None of that is allowed to
//! change a single bit of the result: these property tests pin both
//! optimized paths (sequential [`OracleKind::Branching`] and pooled
//! [`OracleKind::Parallel`]) to the frozen pre-optimization
//! [`ReferenceBranchingOracle`] — identical kept parent edges *and*
//! identical per-edge witness fault sets — across random weighted graphs,
//! stretches, fault budgets and both fault models.

use proptest::prelude::*;
use spanner_core::{FtGreedy, FtSpanner, OracleKind};
use spanner_faults::reference::ReferenceBranchingOracle;
use spanner_faults::FaultModel;
use spanner_graph::{Graph, NodeId, Weight};

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (4..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 7 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

fn assert_same_output(label: &str, reference: &FtSpanner, candidate: &FtSpanner) {
    assert_eq!(
        reference.spanner().parent_edge_ids(),
        candidate.spanner().parent_edge_ids(),
        "{label}: kept parent edges diverged"
    );
    assert_eq!(
        reference.witnesses(),
        candidate.witnesses(),
        "{label}: recorded witnesses diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn optimized_paths_match_reference(
        g in arb_graph(9, 4),
        f in 0usize..3,
        k in 1u64..3,
        edge_model in any::<bool>(),
    ) {
        let stretch = 2 * k - 1;
        let model = if edge_model { FaultModel::Edge } else { FaultModel::Vertex };
        let reference = {
            let mut oracle = ReferenceBranchingOracle::new();
            FtGreedy::new(&g, stretch)
                .faults(f)
                .model(model)
                .run_with_oracle(&mut oracle)
        };
        let sequential = FtGreedy::new(&g, stretch).faults(f).model(model).run();
        assert_same_output("sequential CSR path", &reference, &sequential);
        let pooled = FtGreedy::new(&g, stretch)
            .faults(f)
            .model(model)
            .oracle(OracleKind::Parallel(3))
            .run();
        assert_same_output("pooled parallel path", &reference, &pooled);
    }
}

#[test]
fn scratch_reuse_is_observable_in_run_stats() {
    // Across a whole construction the oracle mask grows only when the
    // spanner's bitset words do: rebuilds stay far below query count.
    let g = spanner_graph::generators::complete(16);
    let ft = FtGreedy::new(&g, 3).faults(2).run();
    let stats = ft.stats();
    assert!(stats.shortest_path_queries > 100, "workload too small");
    assert!(
        stats.scratch_rebuilds * 20 <= stats.shortest_path_queries,
        "scratch rebuilt too often: {} rebuilds / {} queries",
        stats.scratch_rebuilds,
        stats.shortest_path_queries
    );
}

#[test]
fn spanner_view_stays_in_lockstep() {
    use spanner_graph::GraphView;
    let g = spanner_graph::generators::complete(12);
    let ft = FtGreedy::new(&g, 3).faults(1).run();
    let spanner = ft.spanner();
    assert_eq!(spanner.view().node_count(), spanner.graph().node_count());
    assert_eq!(spanner.view().edge_count(), spanner.graph().edge_count());
    for v in spanner.graph().nodes() {
        let mut from_view = Vec::new();
        spanner
            .view()
            .for_each_neighbor(v, |to, eid, w| from_view.push((to, eid, w)));
        let from_graph: Vec<_> = spanner
            .graph()
            .neighbors(v)
            .map(|(to, eid)| (to, eid, spanner.graph().weight(eid)))
            .collect();
        assert_eq!(from_view, from_graph, "view diverged at {v}");
    }
}
