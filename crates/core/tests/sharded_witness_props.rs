//! The sharded witness map must be invisible in the answers and
//! fail-closed everywhere else.
//!
//! PR 10 added the v2 sharded witness layout: records padded to the
//! 8-byte grid, a per-edge offset index (tag 6), and a page-granular
//! `witnesses_for` that touches only the queried edge's bytes. These
//! tests pin the three contracts that make the layout trustworthy:
//!
//! * **round-trip** — across random graphs, both fault models, and
//!   budgets `f ∈ {0, 1, 2}`, the owned decode and the zero-copy open
//!   of a sharded artifact answer `witnesses_for(e)` bit-identically to
//!   the construction for every edge, re-encode canonically, and the
//!   migrate pair shard∘unshard is the byte-level identity;
//! * **hostile input** — every truncation and every bit flip of a
//!   sharded artifact is a typed error, never a panic, and directed
//!   probes on the offset index (out-of-range, non-monotone,
//!   misaligned, count skew, flag/section mismatches, dirty padding)
//!   land on the `artifact/witness-index` code;
//! * **page granularity** — the instrumented bytes-touched counter
//!   proves a single sharded lookup reads two index entries plus one
//!   record, while the monolithic path pays the whole section.

use proptest::prelude::*;
use spanner_core::frozen::{
    ArtifactError, FLAG_WITNESSES_DETACHED, FLAG_WITNESSES_SHARDED, SECTION_WITNESSES,
    SECTION_WITNESS_INDEX,
};
use spanner_core::{FrozenSpanner, FtGreedy, Spanner};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::io::binary::fnv1a64_words;
use spanner_graph::{EdgeId, Graph, NodeId, SharedBytes, Weight};

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (5..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 7 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

/// Finds `(offset, len)` of a section in a v2 container by walking the
/// section table directly (header: magic 8, version 4, flags 4,
/// count 8, then 24-byte entries).
fn section_range(bytes: &[u8], tag: u32) -> (usize, usize) {
    let count = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    for i in 0..count {
        let e = 24 + 24 * i;
        if u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap()) == tag {
            let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
            return (off, len);
        }
    }
    panic!("section {tag} not found");
}

/// Recomputes the trailing word-wise checksum after hostile surgery, so
/// the corruption reaches the section parsers instead of stopping at
/// `artifact/bit-flip`.
fn reseal(bytes: &mut [u8]) {
    let body = bytes.len() - 8;
    let sum = fnv1a64_words(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&sum);
}

/// A deterministic sharded artifact rich enough to probe: full
/// metadata, parent graph, nonempty witness sets.
fn sharded_fixture() -> (FrozenSpanner, Vec<u8>) {
    let g = spanner_graph::generators::complete(7);
    let frozen = FtGreedy::new(&g, 3).faults(1).run().freeze(&g);
    let bytes = frozen.to_v2_sharded().encode();
    (frozen, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_round_trip_is_bit_identical_and_canonical(
        g in arb_graph(9, 4),
        f in 0usize..3,
        edge_model in any::<bool>(),
    ) {
        let model = if edge_model { FaultModel::Edge } else { FaultModel::Vertex };
        let frozen = FtGreedy::new(&g, 3).faults(f).model(model).run().freeze(&g);
        let expected = frozen.witnesses().unwrap().to_vec();
        let mono = frozen.to_v2().encode();
        let sharded = frozen.to_v2_sharded().encode();
        prop_assert_ne!(&mono, &sharded, "the layouts must be distinguishable");

        // Owned decode: full eager validation, canonical re-encode.
        let owned = FrozenSpanner::decode(&sharded).expect("sharded v2 must decode");
        prop_assert!(owned.witnesses_sharded());
        prop_assert_eq!(owned.encode(), sharded.clone(), "re-encoding must be byte-identical");
        prop_assert_eq!(owned.witnesses().unwrap(), expected.as_slice());

        // Zero-copy open: per-edge lookups answer exactly the
        // construction's witness sets, on both paths, for every edge.
        let mapped = FrozenSpanner::open(SharedBytes::copy_aligned(&sharded))
            .expect("sharded v2 must open in place");
        prop_assert!(mapped.is_in_place(), "open() must borrow, not copy");
        prop_assert!(mapped.witnesses_sharded());
        for (e, wanted) in expected.iter().enumerate() {
            let id = EdgeId::new(e);
            let from_mapped = mapped.witnesses_for(id).unwrap();
            prop_assert_eq!(&from_mapped, wanted, "edge {} diverged (mapped)", e);
            prop_assert_eq!(
                &owned.witnesses_for(id).unwrap(),
                wanted,
                "edge {} diverged (owned)", e
            );
        }
        prop_assert_eq!(mapped.encode(), sharded, "mapped re-encode must be byte-identical");

        // The migrate pair: shard then unshard is the identity, in both
        // construction orders (from the in-process artifact and from a
        // decoded one).
        prop_assert_eq!(owned.to_v2().encode(), mono.clone(), "unshard(shard(a)) != a");
        let mono_decoded = FrozenSpanner::decode(&mono).expect("monolithic v2 must decode");
        prop_assert_eq!(
            mono_decoded.to_v2_sharded().encode(),
            frozen.to_v2_sharded().encode(),
            "shard must be canonical regardless of the artifact's provenance"
        );
    }
}

#[test]
fn every_truncation_and_bit_flip_of_a_sharded_artifact_is_rejected() {
    let (_, bytes) = sharded_fixture();
    for len in 0..bytes.len() {
        assert!(
            FrozenSpanner::decode(&bytes[..len]).is_err(),
            "truncation to {len} bytes must fail"
        );
    }
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << bit;
            assert!(
                FrozenSpanner::decode(&corrupt).is_err(),
                "flipping byte {i} bit {bit} must be detected"
            );
        }
    }
}

#[test]
fn directed_index_probes_land_on_the_witness_index_code() {
    let (_, bytes) = sharded_fixture();
    let (idx_at, idx_len) = section_range(&bytes, SECTION_WITNESS_INDEX);
    let (w_at, _) = section_range(&bytes, SECTION_WITNESSES);
    let count = u64::from_le_bytes(bytes[idx_at..idx_at + 8].try_into().unwrap()) as usize;
    assert!(count >= 2, "fixture must carry several records");
    assert_eq!(idx_len, 8 * (count + 2), "index payload length is exact");
    let offset_field = |i: usize| idx_at + 8 + 8 * i;

    let expect_code = |mutant: Vec<u8>, code: &str, what: &str| {
        let err = FrozenSpanner::decode(&mutant).unwrap_err();
        assert_eq!(err.code(), code, "{what}: {err}");
    };
    let resealed = |mutate: &dyn Fn(&mut Vec<u8>)| {
        let mut m = bytes.clone();
        mutate(&mut m);
        reseal(&mut m);
        m
    };

    // Offset off the 8-byte grid.
    expect_code(
        resealed(&|m| m[offset_field(1)] = m[offset_field(1)].wrapping_add(1)),
        "artifact/witness-index",
        "misaligned offset",
    );
    // Offsets not strictly increasing.
    expect_code(
        resealed(&|m| {
            let second = m[offset_field(2)..offset_field(2) + 8].to_vec();
            m[offset_field(1)..offset_field(1) + 8].copy_from_slice(&second);
        }),
        "artifact/witness-index",
        "non-monotone offsets",
    );
    // Final offset overshoots the witness payload.
    expect_code(
        resealed(&|m| {
            let at = offset_field(count);
            let v = u64::from_le_bytes(m[at..at + 8].try_into().unwrap()) + 8;
            m[at..at + 8].copy_from_slice(&v.to_le_bytes());
        }),
        "artifact/witness-index",
        "out-of-range final offset",
    );
    // Index count disagrees with the bytes present.
    expect_code(
        resealed(&|m| {
            let v = u64::from_le_bytes(m[idx_at..idx_at + 8].try_into().unwrap()) + 1;
            m[idx_at..idx_at + 8].copy_from_slice(&v.to_le_bytes());
        }),
        "artifact/witness-index",
        "index count skew",
    );
    // Witness map's count header disagrees with the (self-consistent)
    // index.
    expect_code(
        resealed(&|m| {
            let v = u64::from_le_bytes(m[w_at..w_at + 8].try_into().unwrap()) + 1;
            m[w_at..w_at + 8].copy_from_slice(&v.to_le_bytes());
        }),
        "artifact/witness-index",
        "payload count skew",
    );
    // Index section present, sharded flag cleared.
    expect_code(
        resealed(&|m| m[12..16].copy_from_slice(&0u32.to_le_bytes())),
        "artifact/witness-index",
        "index without flag",
    );
    // Contradictory flags: detached and sharded at once.
    expect_code(
        resealed(&|m| {
            m[12..16]
                .copy_from_slice(&(FLAG_WITNESSES_DETACHED | FLAG_WITNESSES_SHARDED).to_le_bytes());
        }),
        "artifact/malformed",
        "detached+sharded flags",
    );
}

#[test]
fn sharded_flag_without_the_index_section_is_missing_section() {
    let g = spanner_graph::generators::complete(7);
    let mut mono = FtGreedy::new(&g, 3)
        .faults(1)
        .run()
        .freeze(&g)
        .to_v2()
        .encode();
    mono[12..16].copy_from_slice(&FLAG_WITNESSES_SHARDED.to_le_bytes());
    reseal(&mut mono);
    let err = FrozenSpanner::decode(&mono).unwrap_err();
    assert_eq!(err.code(), "artifact/missing-section", "{err}");
}

#[test]
fn dirty_record_padding_is_rejected_eagerly_and_lazily() {
    let (_, bytes) = sharded_fixture();
    let (idx_at, _) = section_range(&bytes, SECTION_WITNESS_INDEX);
    let (w_at, _) = section_range(&bytes, SECTION_WITNESSES);
    // Record 0 spans [offsets[0], offsets[1]); its body length is
    // 9 + 4·len, which is odd, so the record always ends in padding —
    // dirty the final byte.
    let end = u64::from_le_bytes(bytes[idx_at + 16..idx_at + 24].try_into().unwrap()) as usize;
    let mut m = bytes.clone();
    m[w_at + end - 1] = 0xff;
    reseal(&mut m);
    // Eager decode forces every record and refuses the file.
    let err = FrozenSpanner::decode(&m).unwrap_err();
    assert_eq!(err.code(), "artifact/witness-index", "{err}");
    // The lazy open accepts the envelope (the index itself is valid),
    // then the per-edge read of the dirty record fails typed — and only
    // that record: other edges keep serving.
    let mapped = FrozenSpanner::open(SharedBytes::copy_aligned(&m))
        .expect("envelope and index are still valid");
    let err = mapped.witnesses_for(EdgeId::new(0)).unwrap_err();
    assert_eq!(err.code(), "artifact/witness-index", "{err}");
    mapped
        .witnesses_for(EdgeId::new(1))
        .expect("untouched records must keep serving");
}

#[test]
fn sharded_lookup_touches_only_the_indexed_record() {
    let g = spanner_graph::generators::complete(10);
    let frozen = FtGreedy::new(&g, 3).faults(2).run().freeze(&g);
    let sharded = frozen.to_v2_sharded().encode();
    let mono = frozen.to_v2().encode();
    let (idx_at, _) = section_range(&sharded, SECTION_WITNESS_INDEX);
    let (_, w_len) = section_range(&sharded, SECTION_WITNESSES);
    let (_, mono_w_len) = section_range(&mono, SECTION_WITNESSES);

    let mapped = FrozenSpanner::open(SharedBytes::copy_aligned(&sharded)).unwrap();
    assert_eq!(
        mapped.witness_bytes_touched(),
        0,
        "open must not scan the payload"
    );
    let e = 3usize;
    let off = |i: usize| {
        u64::from_le_bytes(
            sharded[idx_at + 8 + 8 * i..idx_at + 16 + 8 * i]
                .try_into()
                .unwrap(),
        )
    };
    let record = off(e + 1) - off(e);
    mapped.witnesses_for(EdgeId::new(e)).unwrap();
    let touched = mapped.witness_bytes_touched();
    assert_eq!(
        touched,
        16 + record,
        "one lookup = two index entries + one record extent"
    );
    assert!(
        touched < w_len as u64,
        "a single record must be a strict subset of the section"
    );

    // The monolithic artifact pays the whole section for the same
    // question.
    let mono_mapped = FrozenSpanner::open(SharedBytes::copy_aligned(&mono)).unwrap();
    mono_mapped.witnesses_for(EdgeId::new(e)).unwrap();
    let mono_touched = mono_mapped.witness_bytes_touched();
    assert_eq!(mono_touched, mono_w_len as u64);
    assert!(
        touched * 5 <= mono_touched,
        "sharded lookup must touch ≥5× fewer bytes ({touched} vs {mono_touched})"
    );
    // A second lookup on the monolithic path is free (memoized); the
    // sharded path meters each record it actually reads.
    mono_mapped.witnesses_for(EdgeId::new(e + 1)).unwrap();
    assert_eq!(mono_mapped.witness_bytes_touched(), mono_touched);
}

#[test]
fn bare_and_detached_artifacts_interact_sanely_with_sharding() {
    // A bare freeze has no witness map: the sharded artifact carries an
    // empty one, every lookup answers the empty set, and the round trip
    // stays canonical.
    let g = spanner_graph::generators::cycle(6);
    let bare = Spanner::from_parent_edges(&g, [EdgeId::new(1), EdgeId::new(4)], 5).freeze();
    let sharded = bare.to_v2_sharded().encode();
    let back = FrozenSpanner::decode(&sharded).unwrap();
    assert!(back.witnesses_sharded());
    assert_eq!(back.encode(), sharded);
    assert_eq!(
        back.witnesses_for(EdgeId::new(0)).unwrap(),
        FaultSet::empty(FaultModel::Vertex)
    );
    let mapped = FrozenSpanner::open(SharedBytes::copy_aligned(&sharded)).unwrap();
    assert!(mapped.witnesses_for(EdgeId::new(1)).unwrap().is_empty());

    // A routing-only replica has nothing to shard: the migrate is a
    // no-op and witness lookups keep refusing with the typed error.
    let (frozen, _) = sharded_fixture();
    let detached = frozen.detach_witnesses();
    let resharded = detached.to_v2_sharded();
    assert!(!resharded.witnesses_sharded());
    assert_eq!(resharded.encode(), detached.encode());
    assert!(matches!(
        resharded.witnesses_for(EdgeId::new(0)),
        Err(ArtifactError::WitnessesDetached)
    ));
}
