//! The partitioned construction must not leak approximation onto the
//! default path: for small instances we check the stretch contract
//! under **every** fault set of size ≤ f — both fault models, budgets
//! 1 and 2 — via the same exhaustive auditor the monolithic
//! construction is held to ([`verify_ft_exhaustive`]).
//!
//! Shard targets are chosen so each instance actually splits into
//! several shards with a non-trivial stitch; a sanity assertion keeps
//! that from silently degenerating into the single-shard case.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::partition::PartitionedFtGreedy;
use spanner_core::verify::verify_ft_exhaustive;
use spanner_faults::FaultModel;
use spanner_graph::generators::{complete, cycle, grid, random_geometric, with_uniform_weights};
use spanner_graph::Graph;

/// The n ≤ 12 instance zoo: name, graph, shard target.
fn instances() -> Vec<(&'static str, Graph, usize)> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    vec![
        (
            "complete-10-weighted",
            with_uniform_weights(&complete(10), 1, 25, &mut rng),
            3,
        ),
        ("grid-3x4", grid(3, 4), 4),
        ("cycle-12", cycle(12), 4),
        ("geometric-12", random_geometric(12, 0.45, &mut rng), 4),
        (
            "grid-2x6-weighted",
            with_uniform_weights(&grid(2, 6), 1, 9, &mut rng),
            3,
        ),
    ]
}

fn audit_all(model: FaultModel) {
    for (name, g, target) in instances() {
        for f in [1usize, 2] {
            let built = PartitionedFtGreedy::new(&g, 3)
                .faults(f)
                .model(model)
                .shard_target(target)
                .run();
            assert!(
                built.report().shards > 1,
                "{name}: instance must actually shard (got 1 shard)"
            );
            let audit = verify_ft_exhaustive(&g, built.ft().spanner(), f, model);
            assert!(
                audit.satisfied(),
                "{name} f={f} model={model:?}: exhaustive audit failed: {audit:?}"
            );
        }
    }
}

#[test]
fn vertex_model_contract_exhaustive() {
    audit_all(FaultModel::Vertex);
}

#[test]
fn edge_model_contract_exhaustive() {
    audit_all(FaultModel::Edge);
}

#[test]
fn stitch_actually_fires_on_these_instances() {
    // The audit above would pass vacuously if the stitch never kept an
    // edge; pin that at least one instance exercises it.
    let mut fired = false;
    for (_, g, target) in instances() {
        let built = PartitionedFtGreedy::new(&g, 3)
            .faults(1)
            .shard_target(target)
            .run();
        fired |= built.report().stitch_kept > 0;
    }
    assert!(fired, "no instance kept any stitch edge");
}
