//! Partitioned spanners must be first-class artifact citizens.
//!
//! The stitched union's witnesses are translated to union coordinates,
//! so it should freeze, encode to the VFTSPANR v2 in-place layout,
//! `open` without copying, and serve **bit-identically** to its owned
//! decode — exactly the property `mapped_serving_props.rs` pins for
//! monolithic constructions. These property tests run the same
//! owned-vs-mapped schedule over partitioned builds (random weighted
//! graphs, both fault models, budgets 1–2, shard targets small enough
//! to force several shards and a live stitch).

use proptest::prelude::*;
use spanner_core::partition::PartitionedFtGreedy;
use spanner_core::routing::{Route, RouteError};
use spanner_core::serve::EpochServer;
use spanner_core::FrozenSpanner;
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{EdgeId, Graph, NodeId, SharedBytes, Weight};
use std::sync::Arc;

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (6..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 7 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (NodeId::new(u), NodeId::new(v))))
        .collect()
}

type Answers = Vec<Result<Route, RouteError>>;

fn serve_both(
    server: &EpochServer,
    failures: &FaultSet,
    pairs: &[(NodeId, NodeId)],
) -> (Answers, Answers) {
    let mut session = server.epoch(failures);
    (session.route_batch(pairs), session.par_route_batch(pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn partitioned_artifact_round_trips_and_serves_identically(
        g in arb_graph(11, 5),
        f in 1usize..3,
        edge_model in any::<bool>(),
        shard_target in 3usize..6,
        fault_raw in proptest::collection::vec(any::<u32>(), 0..4),
    ) {
        let model = if edge_model { FaultModel::Edge } else { FaultModel::Vertex };
        let built = PartitionedFtGreedy::new(&g, 3)
            .faults(f)
            .model(model)
            .shard_target(shard_target)
            .run();
        let ft = built.ft();
        prop_assert_eq!(ft.witnesses().len(), ft.spanner().edge_count());

        // Freeze → v2 encode → open must round-trip the stitched union.
        let v2 = ft.freeze(&g).to_v2().encode();
        let owned = Arc::new(FrozenSpanner::decode(&v2).expect("v2 must decode"));
        prop_assert_eq!(owned.edge_count(), ft.spanner().edge_count());
        prop_assert_eq!(owned.budget(), Some(f));
        let mapped = FrozenSpanner::open(SharedBytes::copy_aligned(&v2))
            .expect("v2 must open in place");
        prop_assert!(mapped.is_in_place(), "open() must borrow, not copy");

        let served_owned = EpochServer::new(Arc::clone(&owned)).with_threads(3);
        let served_mapped = EpochServer::from_mapped(mapped).with_threads(3);

        let random_set = match model {
            FaultModel::Vertex => FaultSet::vertices(
                fault_raw.iter().map(|r| NodeId::new(*r as usize % g.node_count())),
            ),
            FaultModel::Edge => FaultSet::edges(
                fault_raw
                    .iter()
                    .filter(|_| g.edge_count() > 0)
                    .map(|r| EdgeId::new(*r as usize % g.edge_count().max(1))),
            ),
        };
        let pairs = all_pairs(g.node_count());
        for failures in &[random_set, FaultSet::empty(model)] {
            let (seq, pooled) = serve_both(&served_owned, failures, &pairs);
            prop_assert_eq!(
                &serve_both(&served_mapped, failures, &pairs),
                &(seq, pooled),
                "mapped serving of a partitioned spanner diverged under epoch {}", failures
            );
        }
    }
}
