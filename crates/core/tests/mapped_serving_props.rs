//! Zero-copy serving must be invisible in the answers.
//!
//! PR 8 added the VFTSPANR v2 in-place layout: [`FrozenSpanner::open`]
//! borrows the packed adjacency straight out of an aligned byte buffer
//! ([`MappedSpanner`]) instead of decoding it into owned tables. These
//! property tests pin the whole point of that machinery: across random
//! weighted graphs, both fault models, and budgets `f ∈ {0, 1, 2}`,
//! a server over the **mapped** artifact answers every epoch'd
//! `route_batch` and `par_route_batch` bit-identically (routes, edges,
//! distances, errors) to a server over the same artifact **eagerly
//! decoded** — and so does the routing-only detached-witness variant,
//! whose answers cannot depend on the witness section it no longer
//! carries.

use proptest::prelude::*;
use spanner_core::routing::{Route, RouteError};
use spanner_core::serve::EpochServer;
use spanner_core::{FrozenSpanner, FtGreedy};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{EdgeId, Graph, NodeId, SharedBytes, Weight};
use std::sync::Arc;

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (5..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 7 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (NodeId::new(u), NodeId::new(v))))
        .collect()
}

type Answers = Vec<Result<Route, RouteError>>;

/// One epoch'd batch per entry point: sequential and pooled.
fn serve_both(
    server: &EpochServer,
    failures: &FaultSet,
    pairs: &[(NodeId, NodeId)],
) -> (Answers, Answers) {
    let mut session = server.epoch(failures);
    (session.route_batch(pairs), session.par_route_batch(pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn mapped_artifact_serves_bit_identically_to_owned_decode(
        g in arb_graph(9, 4),
        f in 0usize..3,
        edge_model in any::<bool>(),
        fault_raw in proptest::collection::vec(any::<u32>(), 0..4),
    ) {
        let model = if edge_model { FaultModel::Edge } else { FaultModel::Vertex };
        let ft = FtGreedy::new(&g, 3).faults(f).model(model).run();
        let v2 = ft.freeze(&g).to_v2().encode();

        let owned = Arc::new(FrozenSpanner::decode(&v2).expect("v2 must decode"));
        let mapped = FrozenSpanner::open(SharedBytes::copy_aligned(&v2))
            .expect("v2 must open in place");
        prop_assert!(mapped.is_in_place(), "open() must borrow, not copy");

        // The detached routing-only replica: same bytes minus witnesses.
        let detached_bytes = owned.detach_witnesses().encode();
        let detached = FrozenSpanner::open(SharedBytes::copy_aligned(&detached_bytes))
            .expect("detached v2 must open in place");
        prop_assert!(detached.witnesses_detached());

        let served_owned = EpochServer::new(Arc::clone(&owned)).with_threads(3);
        let served_mapped = EpochServer::from_mapped(mapped).with_threads(3);
        let served_detached = EpochServer::from_mapped(detached).with_threads(3);

        // Epoch schedule: a random draw (within and beyond budget), and
        // the empty epoch.
        let random_set = match model {
            FaultModel::Vertex => FaultSet::vertices(
                fault_raw.iter().map(|r| NodeId::new(*r as usize % g.node_count())),
            ),
            FaultModel::Edge => FaultSet::edges(
                fault_raw
                    .iter()
                    .filter(|_| g.edge_count() > 0)
                    .map(|r| EdgeId::new(*r as usize % g.edge_count().max(1))),
            ),
        };
        let pairs = all_pairs(g.node_count());
        for failures in &[random_set, FaultSet::empty(model)] {
            let (seq, pooled) = serve_both(&served_owned, failures, &pairs);
            prop_assert_eq!(
                &serve_both(&served_mapped, failures, &pairs),
                &(seq.clone(), pooled.clone()),
                "mapped serving diverged under epoch {}", failures
            );
            prop_assert_eq!(
                &serve_both(&served_detached, failures, &pairs),
                &(seq, pooled),
                "detached serving diverged under epoch {}", failures
            );
        }
    }
}
