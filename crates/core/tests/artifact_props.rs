//! The persisted artifact must be invisible in the answers.
//!
//! PR 5 gave [`FrozenSpanner`] a versioned binary codec
//! ([`FrozenSpanner::encode`] / [`FrozenSpanner::decode`]) so serving
//! replicas can load an artifact instead of re-running FT-greedy. These
//! property tests pin the codec's whole contract, across random weighted
//! graphs, both fault models, and budgets `f ∈ {0, 1, 2}`:
//!
//! * **Canonical roundtrip** — `decode(encode(a))` re-encodes to the
//!   exact original bytes (so artifacts can be content-addressed);
//! * **Serving bit-identity** — an [`EpochServer`] over the decoded
//!   artifact answers every epoch'd `route_batch` identically (routes,
//!   edges, distances, errors) to an engine over the original, for
//!   failure epochs within and beyond the budget, including replays of
//!   the artifact's own witness fault sets;
//! * **Hostile-input safety** — truncating the byte stream at any point
//!   or flipping any byte yields a typed error, never a panic.

use proptest::prelude::*;
use spanner_core::routing::{Route, RouteError};
use spanner_core::{EpochServer, FrozenSpanner, FtGreedy};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{EdgeId, Graph, NodeId, Weight};
use std::sync::Arc;

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (5..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 7 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (NodeId::new(u), NodeId::new(v))))
        .collect()
}

/// Serves one epoch'd batch: apply `failures` once, answer all pairs.
fn serve(
    server: &EpochServer,
    failures: &FaultSet,
    pairs: &[(NodeId, NodeId)],
) -> Vec<Result<Route, RouteError>> {
    server.epoch(failures).route_batch(pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn decoded_artifact_reencodes_and_serves_bit_identically(
        g in arb_graph(9, 4),
        f in 0usize..3,
        edge_model in any::<bool>(),
        fault_raw in proptest::collection::vec(any::<u32>(), 0..4),
    ) {
        let model = if edge_model { FaultModel::Edge } else { FaultModel::Vertex };
        let ft = FtGreedy::new(&g, 3).faults(f).model(model).run();
        let original = Arc::new(ft.freeze(&g));

        // Canonical roundtrip: decode, then re-encode byte-identically.
        let bytes = original.encode();
        let decoded = Arc::new(FrozenSpanner::decode(&bytes).expect("own encoding must decode"));
        prop_assert_eq!(decoded.encode(), bytes);

        // Serving bit-identity over a schedule of epochs: the random
        // failure set (within or beyond budget), the empty epoch, and a
        // replay of every nonempty recorded witness set.
        let random_set = match model {
            FaultModel::Vertex => FaultSet::vertices(
                fault_raw.iter().map(|r| NodeId::new(*r as usize % g.node_count())),
            ),
            FaultModel::Edge => FaultSet::edges(
                fault_raw
                    .iter()
                    .filter(|_| g.edge_count() > 0)
                    .map(|r| EdgeId::new(*r as usize % g.edge_count().max(1))),
            ),
        };
        let mut epochs = vec![random_set, FaultSet::empty(model)];
        epochs.extend(
            original
                .witnesses()
                .unwrap()
                .iter()
                .filter(|w| !w.is_empty() && w.model() == FaultModel::Vertex)
                .take(4)
                .cloned(),
        );
        let pairs = all_pairs(g.node_count());
        let served_original = EpochServer::new(Arc::clone(&original));
        let served_decoded = EpochServer::new(Arc::clone(&decoded));
        for failures in &epochs {
            prop_assert_eq!(
                serve(&served_decoded, failures, &pairs),
                serve(&served_original, failures, &pairs),
                "decoded artifact diverged under epoch {}",
                failures
            );
        }
    }

    #[test]
    fn hostile_bytes_error_and_never_panic(
        g in arb_graph(7, 3),
        f in 0usize..2,
        cut_raw in any::<u32>(),
        flip_at_raw in any::<u32>(),
        flip_with_raw in any::<u32>(),
    ) {
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let bytes = ft.freeze(&g).encode();
        // Any truncation point: typed error, no panic.
        let cut = cut_raw as usize % bytes.len();
        prop_assert!(FrozenSpanner::decode(&bytes[..cut]).is_err());
        // Any single-byte corruption: typed error, no panic.
        let mut corrupt = bytes.clone();
        let at = flip_at_raw as usize % corrupt.len();
        corrupt[at] ^= (flip_with_raw % 255 + 1) as u8;
        prop_assert!(FrozenSpanner::decode(&corrupt).is_err());
    }
}

/// The decoded artifact also plugs into the *pooled* batch path
/// unchanged — `Arc`-shared into a multi-threaded server with answers
/// bit-identical to the original's sequential batches.
#[test]
fn decoded_artifact_drives_the_worker_pool() {
    let g = spanner_graph::generators::complete(10);
    let ft = FtGreedy::new(&g, 3).faults(1).run();
    let original = Arc::new(ft.freeze(&g));
    let decoded = Arc::new(FrozenSpanner::decode(&original.encode()).unwrap());
    let pairs = all_pairs(10);
    let seq = EpochServer::new(Arc::clone(&original));
    let pooled = EpochServer::new(Arc::clone(&decoded)).with_threads(3);
    for failed in [0usize, 3, 9] {
        let failures = FaultSet::vertices([NodeId::new(failed)]);
        assert_eq!(
            pooled.epoch(&failures).par_route_batch(&pairs),
            serve(&seq, &failures, &pairs),
            "pooled decoded artifact diverged failing v{failed}"
        );
    }
}

/// The decoder must refuse, with a typed error, an artifact whose
/// header claims a future version — even when everything else is valid.
/// And v1 bytes relabeled as v2 must fail the v2 structural checks,
/// never be misread as v1.
#[test]
fn future_versions_are_refused_not_guessed() {
    let g = spanner_graph::generators::cycle(5);
    let ft = FtGreedy::new(&g, 3).faults(1).run();
    let v1 = ft.freeze(&g).encode();
    // Reseal with the checksum the declared version's parser will
    // verify (byte-wise for the v1 lineage, word-wise for v2), so the
    // *version/framing* gate is what trips, not the checksum.
    let reseal = |mut bytes: Vec<u8>, version: u32| {
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        let body = bytes.len() - 8;
        let sum = if version == 2 {
            spanner_graph::io::binary::fnv1a64_words(&bytes[..body])
        } else {
            spanner_graph::io::binary::fnv1a64(&bytes[..body])
        }
        .to_le_bytes();
        bytes[body..].copy_from_slice(&sum);
        bytes
    };
    let err = FrozenSpanner::decode(&reseal(v1.clone(), 3)).unwrap_err();
    assert!(err.to_string().contains("version"), "{err}");
    // v1 section framing is not a valid v2 section table: typed error,
    // and decidedly not a silent fallback to the v1 parser.
    let err = FrozenSpanner::decode(&reseal(v1, 2)).unwrap_err();
    assert_eq!(err.code(), "artifact/malformed", "{err}");
}

/// Exhaustive single-corruption sweep over a complete v2 artifact:
/// *every* truncation point and *every* single-bit flip must yield a
/// typed error — never a panic, never an accept. The proptests above
/// sample this space; for the v2 envelope the artifact is small enough
/// to sweep it whole.
#[test]
fn v2_rejects_every_truncation_and_every_bit_flip() {
    let g = spanner_graph::generators::complete(6);
    let v2 = FtGreedy::new(&g, 3)
        .faults(1)
        .run()
        .freeze(&g)
        .to_v2()
        .encode();
    FrozenSpanner::decode(&v2).expect("the uncorrupted artifact decodes");
    for cut in 0..v2.len() {
        assert!(
            FrozenSpanner::decode(&v2[..cut]).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }
    for at in 0..v2.len() {
        for bit in 0..8 {
            let mut corrupt = v2.clone();
            corrupt[at] ^= 1 << bit;
            assert!(
                FrozenSpanner::decode(&corrupt).is_err(),
                "flipping bit {bit} of byte {at} was accepted"
            );
        }
    }
}

/// The in-place open path must refuse a buffer whose *base* misses the
/// 8-byte alignment — same bytes, wrong address — with the typed
/// alignment code, instead of reading the packed tables misaligned.
#[test]
fn open_rejects_an_offset_by_one_buffer() {
    use spanner_graph::SharedBytes;

    /// Serves its content from one byte past the first aligned position
    /// of its backing buffer, so the slice base is ≡ 1 (mod 8) wherever
    /// the allocator put the buffer.
    struct OffsetByOne {
        buf: Vec<u8>,
        len: usize,
    }
    impl AsRef<[u8]> for OffsetByOne {
        fn as_ref(&self) -> &[u8] {
            let start = (8 - self.buf.as_ptr() as usize % 8) % 8 + 1;
            &self.buf[start..start + self.len]
        }
    }

    let g = spanner_graph::generators::complete(6);
    let v2 = FtGreedy::new(&g, 3)
        .faults(1)
        .run()
        .freeze(&g)
        .to_v2()
        .encode();
    let mut buf = vec![0u8; v2.len() + 16];
    let start = (8 - buf.as_ptr() as usize % 8) % 8 + 1;
    buf[start..start + v2.len()].copy_from_slice(&v2);
    let shared = SharedBytes::from_source(Arc::new(OffsetByOne { buf, len: v2.len() }));
    // The bytes are pristine — only the base address is hostile.
    assert_eq!(shared.as_slice(), &v2[..]);
    let err = FrozenSpanner::open(shared).unwrap_err();
    assert_eq!(err.code(), "artifact/misaligned-section", "{err}");
}
