//! Property tests for the routing and simulation layers.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::routing::RouteError;
use spanner_core::simulation::{simulate, SimulationConfig};
use spanner_core::{EpochServer, FtGreedy};
use spanner_faults::{FaultModel, FaultSet};
use spanner_graph::{Graph, NodeId, Weight};
use std::sync::Arc;

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (5..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 7 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every route a serving session returns is structurally valid:
    /// consecutive nodes joined by the listed spanner edges, no faulted
    /// component used, weight adds up.
    #[test]
    fn routes_are_structurally_valid(
        g in arb_graph(9, 4),
        faults in proptest::collection::vec(any::<u32>(), 0..3),
    ) {
        let ft = FtGreedy::new(&g, 3).faults(faults.len()).run();
        let spanner = ft.into_spanner();
        let h = spanner.graph().clone();
        let server = EpochServer::new(Arc::new(spanner.freeze()));
        let fault_set = FaultSet::vertices(
            faults.iter().map(|f| NodeId::new(*f as usize % g.node_count())),
        );
        let mut session = server.epoch(&fault_set);
        for u in 0..g.node_count() {
            for v in (u + 1)..g.node_count() {
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                match session.route(u, v) {
                    Ok(route) => {
                        prop_assert_eq!(*route.nodes.first().unwrap(), u);
                        prop_assert_eq!(*route.nodes.last().unwrap(), v);
                        prop_assert_eq!(route.edges.len() + 1, route.nodes.len());
                        let mut total = 0u64;
                        for (i, e) in route.edges.iter().enumerate() {
                            let (a, b) = h.endpoints(*e);
                            let (x, y) = (route.nodes[i], route.nodes[i + 1]);
                            prop_assert!((a, b) == (x, y) || (a, b) == (y, x));
                            total += h.weight(*e).get();
                        }
                        prop_assert_eq!(route.dist.value(), Some(total));
                        for n in &route.nodes {
                            prop_assert!(!fault_set.vertex_faults().contains(n));
                        }
                    }
                    Err(RouteError::EndpointFailed(x)) => {
                        prop_assert!(x == u || x == v);
                        prop_assert!(fault_set.vertex_faults().contains(&x));
                    }
                    Err(RouteError::Unreachable { .. }) => {
                        // Allowed only when faults exceed what the spanner
                        // was built for OR the parent is disconnected too —
                        // checked by the FT property tests elsewhere.
                    }
                    // RouteError is #[non_exhaustive].
                    Err(other) => prop_assert!(false, "unexpected error {other}"),
                }
            }
        }
    }

    /// Simulation invariants hold for arbitrary (sane) configurations.
    #[test]
    fn simulation_counters_consistent(
        g in arb_graph(8, 3),
        steps in 5usize..40,
        fail_pct in 0u32..20,
        repair_pct in 10u32..90,
        seed in 0u64..1000,
    ) {
        let f = 1usize;
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = simulate(
            &g,
            ft.into_spanner(),
            f,
            SimulationConfig {
                steps,
                failure_probability: fail_pct as f64 / 100.0,
                repair_probability: repair_pct as f64 / 100.0,
                queries_per_step: 3,
                model: FaultModel::Vertex,
            },
            &mut rng,
        );
        prop_assert_eq!(outcome.steps, steps);
        prop_assert!(outcome.steps_within_budget <= steps);
        prop_assert!(outcome.routed <= outcome.queries);
        prop_assert!(outcome.served_within_stretch <= outcome.routed);
        prop_assert!(outcome.in_budget_queries <= outcome.queries);
        prop_assert!(outcome.in_budget_served_within_stretch <= outcome.in_budget_queries);
        prop_assert!(outcome.in_budget_hit_rate() <= 1.0 + 1e-9);
        prop_assert!(outcome.overall_hit_rate() <= 1.0 + 1e-9);
        // FT contract: a correct f-FT spanner never violates in budget,
        // so its in-budget hit rate is exactly 1.
        prop_assert_eq!(outcome.contract_violations, 0);
        prop_assert_eq!(outcome.in_budget_hit_rate(), 1.0);
        prop_assert!(outcome.events.iter().all(|e| !e.in_budget));
    }
}
