//! Regression and property tests for the failure scenario engine —
//! in particular the contract-accounting fixes:
//!
//! * the pre-engine simulator compared a *running maximum* stretch
//!   against the bound at the end of every step, so a single over-stretch
//!   query kept incrementing `contract_violations` on all later in-budget
//!   steps (and attributed them to the wrong steps). The engine counts
//!   each violating query exactly once, at the step and query where it
//!   occurred — pinned here with scripted `Trace` schedules;
//! * `contract_hit_rate` divided in-budget serves by *all* queries; the
//!   split `in_budget_hit_rate`/`overall_hit_rate` invariants are pinned
//!   across every process and both fault models;
//! * `IndependentBernoulli` must reproduce the pre-engine fault
//!   trajectory for a fixed seed, and the trajectory must not depend on
//!   the query plan (dedicated RNG streams).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spanner_core::simulation::{
    run_scenario, run_scripted_scenario, AdversarialWitnessReplay, BurstCascade,
    CorrelatedRegional, FailureProcess, IndependentBernoulli, ScenarioConfig, Trace,
};
use spanner_core::{FtGreedy, Spanner};
use spanner_faults::FaultModel;
use spanner_graph::generators::{complete, random_geometric};
use spanner_graph::{EdgeId, Graph, NodeId};

/// Unit triangle with the 0-2 edge dropped from the "spanner", which
/// claims stretch 1 — so exactly the scripted pair (0, 2) over-stretches
/// (achieved 2 > bound 1) and every other pair is served exactly.
fn planted_instance() -> (Graph, Spanner) {
    let g = Graph::from_weighted_edges(3, [(0, 1, 1), (1, 2, 1), (0, 2, 1)]).unwrap();
    let spanner = Spanner::from_parent_edges(&g, [EdgeId::new(0), EdgeId::new(1)], 1);
    (g, spanner)
}

#[test]
fn planted_over_stretch_query_counts_exactly_once() {
    let (g, spanner) = planted_instance();
    // One violating query at step 3, then 20 more steps of clean
    // in-budget queries. The pre-engine accounting would have counted
    // the stale worst-stretch maximum again on every one of those steps.
    let mut script: Vec<Vec<(NodeId, NodeId)>> = (0..24)
        .map(|_| {
            vec![
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(2)),
            ]
        })
        .collect();
    script[3].push((NodeId::new(0), NodeId::new(2)));
    let outcome = run_scripted_scenario(
        &g,
        spanner,
        1,
        &ScenarioConfig {
            steps: 24,
            model: FaultModel::Vertex,
            ..ScenarioConfig::default()
        },
        &mut Trace::new(Vec::new()),
        &script,
        0,
    );
    assert_eq!(
        outcome.contract_violations, 1,
        "the single planted over-stretch query must count exactly once"
    );
    assert_eq!(outcome.queries, 49);
    assert_eq!(outcome.served_within_stretch, 48);
    assert_eq!(outcome.events.len(), 1);
    assert_eq!(
        outcome.events[0].step, 3,
        "attributed to the step it occurred"
    );
    assert_eq!(outcome.events[0].pair, (NodeId::new(0), NodeId::new(2)));
    assert!(outcome.events[0].in_budget);
    // The worst in-budget stretch still remembers the excursion even
    // though the violation count does not keep growing.
    assert!(outcome.worst_stretch_within_budget > 1.0);
}

#[test]
fn violations_attributed_to_in_budget_steps_only() {
    let (g, spanner) = planted_instance();
    // Fail vertex 1 on even steps (budget 0 -> over budget there); query
    // the bad pair every step. Only odd (in-budget) steps may violate.
    let steps = 10usize;
    let frames: Vec<Vec<usize>> = (0..steps)
        .map(|t| if t % 2 == 0 { vec![1] } else { vec![] })
        .collect();
    let script: Vec<Vec<(NodeId, NodeId)>> = (0..steps)
        .map(|_| vec![(NodeId::new(0), NodeId::new(2))])
        .collect();
    let outcome = run_scripted_scenario(
        &g,
        spanner,
        0,
        &ScenarioConfig {
            steps,
            model: FaultModel::Vertex,
            ..ScenarioConfig::default()
        },
        &mut Trace::new(frames),
        &script,
        0,
    );
    // Even steps: vertex 1 down, over budget — the parent still serves
    // (0, 2) through its direct edge, so the query counts, goes
    // unreachable in the path spanner, and is logged as an over-budget
    // event, NOT a violation. Odd steps: in budget, over-stretch, one
    // violation each.
    assert_eq!(outcome.queries, 10);
    assert_eq!(outcome.in_budget_queries, 5);
    assert_eq!(outcome.contract_violations, 5);
    assert_eq!(outcome.events.len(), 10);
    assert!(outcome
        .events
        .iter()
        .all(|e| e.in_budget == (e.step % 2 == 1)));
    assert_eq!(outcome.steps_within_budget, 5);
    assert_eq!(outcome.routed, 5, "unreachable on every over-budget step");
}

/// The pre-engine per-component transition loop, verbatim: down
/// components repair with `repair_probability`, live ones fail with
/// `failure_probability`, visited in index order on a single stream.
fn reference_trajectory(
    seed: u64,
    components: usize,
    steps: usize,
    failure_probability: f64,
    repair_probability: f64,
) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut down = vec![false; components];
    let mut frames = Vec::with_capacity(steps);
    for _ in 0..steps {
        for state in down.iter_mut() {
            if *state {
                if rng.gen_bool(repair_probability) {
                    *state = false;
                }
            } else if rng.gen_bool(failure_probability) {
                *state = true;
            }
        }
        frames.push(down.clone());
    }
    frames
}

#[test]
fn bernoulli_reproduces_the_pre_engine_trajectory() {
    for seed in [0u64, 7, 365, 0xDEAD_BEEF] {
        let reference = reference_trajectory(seed, 40, 120, 0.05, 0.3);
        let mut process = IndependentBernoulli {
            failure_probability: 0.05,
            repair_probability: 0.3,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut down = vec![false; 40];
        process.begin(down.len());
        for (step, expected) in reference.iter().enumerate() {
            process.step(step, &mut down, &mut rng);
            assert_eq!(&down, expected, "seed {seed} diverged at step {step}");
        }
    }
}

#[test]
fn fault_trajectory_is_independent_of_the_query_plan() {
    // The engine derives a dedicated process stream from the seed, so
    // changing the query load must not change the fault path (this is
    // what makes budget sweeps paired comparisons).
    let mut rng = StdRng::seed_from_u64(12);
    let g = random_geometric(30, 0.4, &mut rng);
    let ft = FtGreedy::new(&g, 3).faults(1).run();
    let config = |queries| ScenarioConfig {
        steps: 80,
        queries_per_step: queries,
        model: FaultModel::Vertex,
        ..ScenarioConfig::default()
    };
    let run_with = |queries: usize| {
        let mut process = IndependentBernoulli {
            failure_probability: 0.04,
            repair_probability: 0.3,
        };
        run_scenario(
            &g,
            ft.spanner().clone(),
            1,
            &config(queries),
            &mut process,
            55,
        )
    };
    let light = run_with(0);
    let heavy = run_with(12);
    assert_eq!(light.peak_failures, heavy.peak_failures);
    assert_eq!(light.steps_within_budget, heavy.steps_within_budget);
    assert_eq!(light.queries, 0);
    assert!(heavy.queries > 0);
}

#[test]
fn scenario_runs_are_deterministic() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = random_geometric(30, 0.4, &mut rng);
    let ft = FtGreedy::new(&g, 3).faults(2).run();
    let config = ScenarioConfig {
        steps: 60,
        queries_per_step: 6,
        model: FaultModel::Vertex,
        ..ScenarioConfig::default()
    };
    let processes: Vec<Box<dyn Fn() -> Box<dyn FailureProcess>>> = vec![
        Box::new(|| {
            Box::new(IndependentBernoulli {
                failure_probability: 0.05,
                repair_probability: 0.3,
            })
        }),
        Box::new(|| {
            Box::new(CorrelatedRegional::new(
                &g,
                FaultModel::Vertex,
                1,
                0.06,
                0.3,
            ))
        }),
        Box::new(|| Box::new(AdversarialWitnessReplay::from_witnesses(&ft, 4))),
        Box::new(|| Box::new(BurstCascade::new(0.05, 4, 0.15))),
        Box::new(|| Box::new(Trace::new(vec![vec![0], vec![1, 2], vec![]]))),
    ];
    for make in &processes {
        let run = |seed| run_scenario(&g, ft.spanner().clone(), 2, &config, make().as_mut(), seed);
        let a = run(1234);
        let b = run(1234);
        assert_eq!(
            a, b,
            "{}: same seed must give the same outcome struct",
            a.scenario
        );
        // And the full struct, events included, is part of the equality.
        assert_eq!(a.events, b.events);
    }
}

fn process_under_test(
    index: usize,
    g: &Graph,
    ft: &spanner_core::FtSpanner,
    model: FaultModel,
) -> Box<dyn FailureProcess> {
    match index {
        0 => Box::new(IndependentBernoulli {
            failure_probability: 0.08,
            repair_probability: 0.3,
        }),
        1 => Box::new(CorrelatedRegional::new(g, model, 1, 0.1, 0.3)),
        2 => Box::new(AdversarialWitnessReplay::from_witnesses(ft, 3)),
        3 => Box::new(BurstCascade::new(0.1, 3, 0.2)),
        _ => Box::new(Trace::new(vec![vec![0], vec![], vec![0, 1]])),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counter consistency holds for every process and both fault
    /// models, and the event log reconciles exactly with the aggregate
    /// violation counter (each violating query once — the accounting
    /// contract the engine was rebuilt for).
    #[test]
    fn counters_consistent_across_processes_and_models(
        n in 6usize..12,
        process_index in 0usize..5,
        vertex_model in any::<bool>(),
        seed in 0u64..500,
    ) {
        let model = if vertex_model { FaultModel::Vertex } else { FaultModel::Edge };
        let g = complete(n);
        let f = 1usize;
        let ft = FtGreedy::new(&g, 3).faults(f).model(model).run();
        let mut process = process_under_test(process_index, &g, &ft, model);
        let outcome = run_scenario(
            &g,
            ft.spanner().clone(),
            f,
            &ScenarioConfig {
                steps: 30,
                queries_per_step: 4,
                model,
                // Large enough that nothing is dropped: the log must
                // then reconcile exactly.
                max_logged_events: 10_000,
            },
            process.as_mut(),
            seed,
        );
        prop_assert_eq!(outcome.steps, 30);
        prop_assert!(outcome.steps_within_budget <= outcome.steps);
        prop_assert!(outcome.routed <= outcome.queries);
        prop_assert!(outcome.in_budget_queries <= outcome.queries);
        prop_assert!(outcome.served_within_stretch <= outcome.routed);
        prop_assert!(outcome.in_budget_served_within_stretch <= outcome.served_within_stretch);
        prop_assert!(outcome.in_budget_served_within_stretch <= outcome.in_budget_queries);
        prop_assert!(outcome.contract_violations <= outcome.in_budget_queries);
        // Violations are exactly the unserved in-budget queries...
        prop_assert_eq!(
            outcome.contract_violations,
            outcome.in_budget_queries - outcome.in_budget_served_within_stretch
        );
        // ...and (with an unbounded log) exactly the in-budget events.
        prop_assert_eq!(outcome.events_dropped, 0);
        prop_assert_eq!(
            outcome.contract_violations,
            outcome.events.iter().filter(|e| e.in_budget).count()
        );
        // A correct f-FT spanner at its own budget never violates.
        prop_assert_eq!(outcome.contract_violations, 0);
        prop_assert_eq!(outcome.in_budget_hit_rate(), 1.0);
        prop_assert!(outcome.overall_hit_rate() <= 1.0 + 1e-9);
        prop_assert!(outcome.availability() >= outcome.overall_hit_rate() - 1e-9);
    }
}
