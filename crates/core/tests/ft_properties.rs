//! End-to-end property tests for the paper's claims on random instances.
//!
//! * Algorithm 1's output really is an f-FT spanner (exhaustive ∀F audit);
//! * Lemma 3's blocking set really blocks every ≤ (k+1)-cycle and respects
//!   the `|B| ≤ f·m` size bound;
//! * Lemma 4's peeling always produces girth > k+1;
//! * the greedy is existentially reasonable: never larger than the trivial
//!   spanner, monotone in `f`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spanner_core::{
    peel, verify::verify_ft_exhaustive, verify::verify_spanner, BlockingSet, FtGreedy,
};
use spanner_faults::FaultModel;
use spanner_graph::{Graph, NodeId, Weight};

fn arb_graph(max_n: usize, max_w: u64) -> impl Strategy<Value = Graph> {
    (4..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let m = pairs.len();
        (
            proptest::collection::vec(0..10u32, m),
            proptest::collection::vec(1..=max_w, m),
        )
            .prop_map(move |(keep, ws)| {
                let mut g = Graph::new(n);
                for (i, &(u, v)) in pairs.iter().enumerate() {
                    if keep[i] < 7 {
                        g.add_edge_unchecked(
                            NodeId::new(u),
                            NodeId::new(v),
                            Weight::new(ws[i]).unwrap(),
                        );
                    }
                }
                g
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ft_greedy_is_vertex_fault_tolerant(g in arb_graph(8, 4), f in 0usize..3, k in 1u64..4) {
        let stretch = 2 * k - 1;
        let ft = FtGreedy::new(&g, stretch).faults(f).run();
        let audit = verify_ft_exhaustive(&g, ft.spanner(), f, FaultModel::Vertex);
        prop_assert!(audit.satisfied(),
            "f={} k={} violations={}/{} first={:?}",
            f, stretch, audit.violations, audit.trials, audit.first_violation);
    }

    #[test]
    fn ft_greedy_is_edge_fault_tolerant(g in arb_graph(7, 3), f in 0usize..3) {
        let ft = FtGreedy::new(&g, 3).faults(f).model(FaultModel::Edge).run();
        let audit = verify_ft_exhaustive(&g, ft.spanner(), f, FaultModel::Edge);
        prop_assert!(audit.satisfied(),
            "f={} violations={}/{}", f, audit.violations, audit.trials);
    }

    #[test]
    fn lemma3_blocking_set_on_random_graphs(g in arb_graph(8, 1), f in 1usize..3) {
        lemma3_check(&g, f)?;
    }

    /// Weighted variant: Lemma 3's proof is weight-aware (the last edge of
    /// a short cycle considered by greedy has maximum weight), so the
    /// blocking property must hold on weighted inputs too.
    #[test]
    fn lemma3_blocking_set_on_weighted_graphs(g in arb_graph(7, 4), f in 1usize..3) {
        lemma3_check(&g, f)?;
    }
}

fn lemma3_check(g: &Graph, f: usize) -> Result<(), proptest::test_runner::TestCaseError> {
    {
        let stretch = 3u64;
        let ft = FtGreedy::new(g, stretch).faults(f).run();
        let b = BlockingSet::from_witnesses(&ft);
        // Size bound.
        prop_assert!(b.len() <= f * ft.spanner().edge_count());
        prop_assert!(b.is_well_formed(ft.spanner().graph()));
        // Blocking property over all (k+1)-cycles.
        let report = spanner_core::verify_blocking_set(
            ft.spanner().graph(),
            &b,
            (stretch + 1) as usize,
            100_000,
        );
        prop_assert!(
            report.is_valid(),
            "unblocked={} of {}",
            report.unblocked.len(),
            report.cycles_checked
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lemma4_peel_girth_on_random_graphs(g in arb_graph(10, 1), f in 1usize..3, seed in 0u64..1000) {
        let stretch = 3u64;
        let ft = FtGreedy::new(&g, stretch).faults(f).run();
        let b = BlockingSet::from_witnesses(&ft);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = peel(ft.spanner().graph(), &b, f, (stretch + 1) as usize, &mut rng);
        prop_assert!(out.girth_ok);
        prop_assert_eq!(out.final_edges(), out.induced_edges - out.deleted_edges);
    }

    #[test]
    fn greedy_size_is_monotone_in_f(g in arb_graph(8, 3)) {
        let mut last = 0usize;
        for f in 0..3 {
            let ft = FtGreedy::new(&g, 3).faults(f).run();
            let size = ft.spanner().edge_count();
            prop_assert!(size >= last, "size dropped from {} to {} at f={}", last, size, f);
            prop_assert!(size <= g.edge_count());
            last = size;
        }
    }

    #[test]
    fn ft_spanner_is_also_plain_spanner(g in arb_graph(8, 4), f in 0usize..3) {
        let ft = FtGreedy::new(&g, 3).faults(f).run();
        let report = verify_spanner(&g, ft.spanner());
        prop_assert!(report.satisfied, "max stretch {}", report.max_stretch);
    }
}
