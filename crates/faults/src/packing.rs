//! Disjoint short-path packing: a sound pruning bound for fault search.
//!
//! If `H ∖ F₀` contains `c` pairwise disjoint `u→v` paths of weight at most
//! `bound` (internally vertex-disjoint in the vertex model, edge-disjoint in
//! the edge model), then any fault set blocking all of them needs at least
//! `c` faults beyond `F₀`: a single vertex fault can only hit one path's
//! interior, and a single edge fault only one path's edges. The converse is
//! *not* true (length-bounded Menger fails), so the packing count is a
//! lower bound for pruning, never a decision procedure.

use crate::FaultModel;
use spanner_graph::{DijkstraEngine, Dist, FaultMask, Graph, GraphView, NodeId, PathScratch};

/// The outcome of a packing probe: how many disjoint paths were packed
/// and how many bounded Dijkstras that actually took.
///
/// The query count is exact (one per loop iteration, including the final
/// miss), so [`crate::OracleStats::shortest_path_queries`] charged from it
/// reflects real work — the pre-PR-2 accounting over-charged a flat
/// `packed + 1` even when the probe stopped early at its cap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackingProbe {
    /// Number of pairwise disjoint short paths found (at most the cap).
    pub packed: usize,
    /// Number of bounded shortest-path queries the probe issued.
    pub queries: u64,
}

/// Reusable buffers for [`disjoint_path_packing_counted`]: the working
/// fault mask (a copy of the caller's mask that the probe extends) and the
/// path extraction buffer. Owned by long-lived oracles so the probe
/// allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct PackingScratch {
    mask: FaultMask,
    path: PathScratch,
}

impl PackingScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        PackingScratch::default()
    }
}

/// Like [`disjoint_path_packing`], but generic over the graph layout,
/// allocation-free via `scratch`, and reporting its true query count.
#[allow(clippy::too_many_arguments)]
pub fn disjoint_path_packing_counted<V: GraphView>(
    view: &V,
    engine: &mut DijkstraEngine,
    mask: &FaultMask,
    u: NodeId,
    v: NodeId,
    bound: Dist,
    model: FaultModel,
    cap: usize,
    scratch: &mut PackingScratch,
) -> PackingProbe {
    let mut probe = PackingProbe::default();
    if cap == 0 {
        return probe;
    }
    scratch.mask.copy_from(mask);
    while probe.packed < cap {
        probe.queries += 1;
        if !engine.shortest_path_bounded_into(view, u, v, bound, &scratch.mask, &mut scratch.path) {
            break;
        }
        probe.packed += 1;
        if probe.packed >= cap {
            break;
        }
        match model {
            FaultModel::Vertex => {
                let interior = scratch.path.interior_nodes();
                if interior.is_empty() {
                    // Direct edge: no vertex fault can ever block it.
                    probe.packed = cap;
                    return probe;
                }
                for n in interior {
                    scratch.mask.fault_vertex(*n);
                }
            }
            FaultModel::Edge => {
                for e in scratch.path.edges() {
                    scratch.mask.fault_edge(*e);
                }
            }
        }
    }
    probe
}

/// Greedily packs pairwise disjoint `u→v` paths of weight at most `bound`
/// in `graph ∖ mask`, stopping at `cap`.
///
/// Returns the number of paths packed (at most `cap`). In the vertex model,
/// a direct `u-v` edge of weight ≤ `bound` cannot be blocked by vertex
/// faults at all, so it forces the return value to `cap` immediately.
///
/// # Examples
///
/// ```
/// use spanner_faults::{packing, FaultModel};
/// use spanner_graph::{DijkstraEngine, Dist, FaultMask, Graph, NodeId};
///
/// // Three disjoint 2-hop routes from 0 to 4.
/// let g = Graph::from_edges(5, [(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)])?;
/// let mut engine = DijkstraEngine::new();
/// let mask = FaultMask::for_graph(&g);
/// let c = packing::disjoint_path_packing(
///     &g, &mut engine, &mask,
///     NodeId::new(0), NodeId::new(4),
///     Dist::finite(2), FaultModel::Vertex, 10,
/// );
/// assert_eq!(c, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn disjoint_path_packing(
    graph: &Graph,
    engine: &mut DijkstraEngine,
    mask: &FaultMask,
    u: NodeId,
    v: NodeId,
    bound: Dist,
    model: FaultModel,
    cap: usize,
) -> usize {
    let mut scratch = PackingScratch::new();
    disjoint_path_packing_counted(graph, engine, mask, u, v, bound, model, cap, &mut scratch).packed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta(routes: usize, hops: usize) -> Graph {
        // `routes` internally disjoint u→v paths of `hops` edges each.
        let mut g = Graph::new(2 + routes * (hops - 1));
        let u = NodeId::new(0);
        let v = NodeId::new(1);
        for r in 0..routes {
            let mut prev = u;
            for h in 0..hops - 1 {
                let mid = NodeId::new(2 + r * (hops - 1) + h);
                g.add_edge(prev, mid, spanner_graph::Weight::UNIT);
                prev = mid;
            }
            g.add_edge(prev, v, spanner_graph::Weight::UNIT);
        }
        g
    }

    #[test]
    fn counts_disjoint_routes() {
        for routes in 1..5 {
            let g = theta(routes, 3);
            let mut engine = DijkstraEngine::new();
            let mask = FaultMask::for_graph(&g);
            let c = disjoint_path_packing(
                &g,
                &mut engine,
                &mask,
                NodeId::new(0),
                NodeId::new(1),
                Dist::finite(3),
                FaultModel::Vertex,
                10,
            );
            assert_eq!(c, routes);
        }
    }

    #[test]
    fn bound_excludes_long_routes() {
        let g = theta(3, 4); // all routes have 4 hops
        let mut engine = DijkstraEngine::new();
        let mask = FaultMask::for_graph(&g);
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(3),
            FaultModel::Vertex,
            10,
        );
        assert_eq!(c, 0);
    }

    #[test]
    fn cap_truncates() {
        let g = theta(4, 3);
        let mut engine = DijkstraEngine::new();
        let mask = FaultMask::for_graph(&g);
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(3),
            FaultModel::Vertex,
            2,
        );
        assert_eq!(c, 2);
    }

    #[test]
    fn direct_edge_saturates_vertex_model() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut engine = DijkstraEngine::new();
        let mask = FaultMask::for_graph(&g);
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(1),
            FaultModel::Vertex,
            7,
        );
        assert_eq!(c, 7, "direct edge is unblockable, must saturate the cap");
        // In the edge model the same edge is one blockable path.
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(1),
            FaultModel::Edge,
            7,
        );
        assert_eq!(c, 1);
    }

    #[test]
    fn edge_model_counts_edge_disjoint() {
        // Two routes sharing a middle vertex but not edges:
        // 0-2-1 and 0-3-1 share nothing; plus 0-4, 4-1.
        let g = Graph::from_edges(5, [(0, 2), (2, 1), (0, 3), (3, 1), (0, 4), (4, 1)]).unwrap();
        let mut engine = DijkstraEngine::new();
        let mask = FaultMask::for_graph(&g);
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(2),
            FaultModel::Edge,
            10,
        );
        assert_eq!(c, 3);
    }

    #[test]
    fn counted_probe_reports_true_query_count() {
        // 3 disjoint routes, cap 10: probe packs 3 then misses once — the
        // true cost is 4 queries (the flat pre-fix accounting said 3 + 1
        // here, but over-charged whenever the cap truncated the loop).
        let g = theta(3, 3);
        let mut engine = DijkstraEngine::new();
        let mask = FaultMask::for_graph(&g);
        let mut scratch = PackingScratch::new();
        let probe = disjoint_path_packing_counted(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(3),
            FaultModel::Vertex,
            10,
            &mut scratch,
        );
        assert_eq!(
            probe,
            PackingProbe {
                packed: 3,
                queries: 4
            }
        );
        // Cap truncation: stops right at the cap, no trailing miss query.
        let probe = disjoint_path_packing_counted(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(3),
            FaultModel::Vertex,
            2,
            &mut scratch,
        );
        assert_eq!(
            probe,
            PackingProbe {
                packed: 2,
                queries: 2
            }
        );
        // Direct-edge saturation costs exactly one query.
        let direct = Graph::from_edges(2, [(0, 1)]).unwrap();
        let dmask = FaultMask::for_graph(&direct);
        let probe = disjoint_path_packing_counted(
            &direct,
            &mut engine,
            &dmask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(1),
            FaultModel::Vertex,
            7,
            &mut scratch,
        );
        assert_eq!(
            probe,
            PackingProbe {
                packed: 7,
                queries: 1
            }
        );
    }

    #[test]
    fn respects_existing_mask() {
        let g = theta(3, 3);
        let mut engine = DijkstraEngine::new();
        let mut mask = FaultMask::for_graph(&g);
        // Kill one route's interior vertex.
        mask.fault_vertex(NodeId::new(2));
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(3),
            FaultModel::Vertex,
            10,
        );
        assert_eq!(c, 2);
    }
}
