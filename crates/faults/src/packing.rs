//! Disjoint short-path packing: a sound pruning bound for fault search.
//!
//! If `H ∖ F₀` contains `c` pairwise disjoint `u→v` paths of weight at most
//! `bound` (internally vertex-disjoint in the vertex model, edge-disjoint in
//! the edge model), then any fault set blocking all of them needs at least
//! `c` faults beyond `F₀`: a single vertex fault can only hit one path's
//! interior, and a single edge fault only one path's edges. The converse is
//! *not* true (length-bounded Menger fails), so the packing count is a
//! lower bound for pruning, never a decision procedure.

use crate::FaultModel;
use spanner_graph::{DijkstraEngine, Dist, FaultMask, Graph, NodeId};

/// Greedily packs pairwise disjoint `u→v` paths of weight at most `bound`
/// in `graph ∖ mask`, stopping at `cap`.
///
/// Returns the number of paths packed (at most `cap`). In the vertex model,
/// a direct `u-v` edge of weight ≤ `bound` cannot be blocked by vertex
/// faults at all, so it forces the return value to `cap` immediately.
///
/// # Examples
///
/// ```
/// use spanner_faults::{packing, FaultModel};
/// use spanner_graph::{DijkstraEngine, Dist, FaultMask, Graph, NodeId};
///
/// // Three disjoint 2-hop routes from 0 to 4.
/// let g = Graph::from_edges(5, [(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)])?;
/// let mut engine = DijkstraEngine::new();
/// let mask = FaultMask::for_graph(&g);
/// let c = packing::disjoint_path_packing(
///     &g, &mut engine, &mask,
///     NodeId::new(0), NodeId::new(4),
///     Dist::finite(2), FaultModel::Vertex, 10,
/// );
/// assert_eq!(c, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn disjoint_path_packing(
    graph: &Graph,
    engine: &mut DijkstraEngine,
    mask: &FaultMask,
    u: NodeId,
    v: NodeId,
    bound: Dist,
    model: FaultModel,
    cap: usize,
) -> usize {
    if cap == 0 {
        return 0;
    }
    let mut scratch = mask.clone();
    let mut count = 0;
    while count < cap {
        let Some(path) = engine.shortest_path_bounded(graph, u, v, bound, &scratch) else {
            break;
        };
        count += 1;
        if count >= cap {
            break;
        }
        match model {
            FaultModel::Vertex => {
                let interior = path.interior_nodes();
                if interior.is_empty() {
                    // Direct edge: no vertex fault can ever block it.
                    return cap;
                }
                for n in interior {
                    scratch.fault_vertex(*n);
                }
            }
            FaultModel::Edge => {
                for e in &path.edges {
                    scratch.fault_edge(*e);
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta(routes: usize, hops: usize) -> Graph {
        // `routes` internally disjoint u→v paths of `hops` edges each.
        let mut g = Graph::new(2 + routes * (hops - 1));
        let u = NodeId::new(0);
        let v = NodeId::new(1);
        for r in 0..routes {
            let mut prev = u;
            for h in 0..hops - 1 {
                let mid = NodeId::new(2 + r * (hops - 1) + h);
                g.add_edge(prev, mid, spanner_graph::Weight::UNIT);
                prev = mid;
            }
            g.add_edge(prev, v, spanner_graph::Weight::UNIT);
        }
        g
    }

    #[test]
    fn counts_disjoint_routes() {
        for routes in 1..5 {
            let g = theta(routes, 3);
            let mut engine = DijkstraEngine::new();
            let mask = FaultMask::for_graph(&g);
            let c = disjoint_path_packing(
                &g,
                &mut engine,
                &mask,
                NodeId::new(0),
                NodeId::new(1),
                Dist::finite(3),
                FaultModel::Vertex,
                10,
            );
            assert_eq!(c, routes);
        }
    }

    #[test]
    fn bound_excludes_long_routes() {
        let g = theta(3, 4); // all routes have 4 hops
        let mut engine = DijkstraEngine::new();
        let mask = FaultMask::for_graph(&g);
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(3),
            FaultModel::Vertex,
            10,
        );
        assert_eq!(c, 0);
    }

    #[test]
    fn cap_truncates() {
        let g = theta(4, 3);
        let mut engine = DijkstraEngine::new();
        let mask = FaultMask::for_graph(&g);
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(3),
            FaultModel::Vertex,
            2,
        );
        assert_eq!(c, 2);
    }

    #[test]
    fn direct_edge_saturates_vertex_model() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut engine = DijkstraEngine::new();
        let mask = FaultMask::for_graph(&g);
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(1),
            FaultModel::Vertex,
            7,
        );
        assert_eq!(c, 7, "direct edge is unblockable, must saturate the cap");
        // In the edge model the same edge is one blockable path.
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(1),
            FaultModel::Edge,
            7,
        );
        assert_eq!(c, 1);
    }

    #[test]
    fn edge_model_counts_edge_disjoint() {
        // Two routes sharing a middle vertex but not edges:
        // 0-2-1 and 0-3-1 share nothing; plus 0-4, 4-1.
        let g = Graph::from_edges(5, [(0, 2), (2, 1), (0, 3), (3, 1), (0, 4), (4, 1)]).unwrap();
        let mut engine = DijkstraEngine::new();
        let mask = FaultMask::for_graph(&g);
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(2),
            FaultModel::Edge,
            10,
        );
        assert_eq!(c, 3);
    }

    #[test]
    fn respects_existing_mask() {
        let g = theta(3, 3);
        let mut engine = DijkstraEngine::new();
        let mut mask = FaultMask::for_graph(&g);
        // Kill one route's interior vertex.
        mask.fault_vertex(NodeId::new(2));
        let c = disjoint_path_packing(
            &g,
            &mut engine,
            &mask,
            NodeId::new(0),
            NodeId::new(1),
            Dist::finite(3),
            FaultModel::Vertex,
            10,
        );
        assert_eq!(c, 2);
    }
}
