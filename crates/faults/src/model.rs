//! The fault model: what can fail, and concrete failure sets.

use spanner_graph::{EdgeId, FaultMask, NodeId};
use std::fmt;

/// Which kind of component the adversary may remove.
///
/// The paper proves its upper bound for both models (Theorem 1); only the
/// vertex bound is known to be tight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Vertex faults: removing a vertex also removes its incident edges.
    Vertex,
    /// Edge faults: only the listed edges disappear.
    Edge,
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::Vertex => write!(f, "vertex"),
            FaultModel::Edge => write!(f, "edge"),
        }
    }
}

/// A concrete set of faults, matching one [`FaultModel`].
///
/// Contents are kept sorted and deduplicated, so equal sets compare equal.
///
/// # Examples
///
/// ```
/// use spanner_faults::FaultSet;
/// use spanner_graph::NodeId;
///
/// let f = FaultSet::vertices([NodeId::new(3), NodeId::new(1), NodeId::new(3)]);
/// assert_eq!(f.len(), 2);
/// assert_eq!(format!("{f}"), "{v1, v3}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultSet {
    /// A set of faulted vertices.
    Vertices(Vec<NodeId>),
    /// A set of faulted edges.
    Edges(Vec<EdgeId>),
}

impl FaultSet {
    /// An empty fault set in the given model.
    pub fn empty(model: FaultModel) -> Self {
        match model {
            FaultModel::Vertex => FaultSet::Vertices(Vec::new()),
            FaultModel::Edge => FaultSet::Edges(Vec::new()),
        }
    }

    /// A vertex fault set (sorted, deduplicated).
    pub fn vertices<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let mut v: Vec<NodeId> = nodes.into_iter().collect();
        v.sort();
        v.dedup();
        FaultSet::Vertices(v)
    }

    /// An edge fault set (sorted, deduplicated).
    pub fn edges<I: IntoIterator<Item = EdgeId>>(edges: I) -> Self {
        let mut e: Vec<EdgeId> = edges.into_iter().collect();
        e.sort();
        e.dedup();
        FaultSet::Edges(e)
    }

    /// The model this set belongs to.
    pub fn model(&self) -> FaultModel {
        match self {
            FaultSet::Vertices(_) => FaultModel::Vertex,
            FaultSet::Edges(_) => FaultModel::Edge,
        }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        match self {
            FaultSet::Vertices(v) => v.len(),
            FaultSet::Edges(e) => e.len(),
        }
    }

    /// Returns `true` for the empty set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The faulted vertices (empty slice in the edge model).
    pub fn vertex_faults(&self) -> &[NodeId] {
        match self {
            FaultSet::Vertices(v) => v,
            FaultSet::Edges(_) => &[],
        }
    }

    /// The faulted edges (empty slice in the vertex model).
    pub fn edge_faults(&self) -> &[EdgeId] {
        match self {
            FaultSet::Vertices(_) => &[],
            FaultSet::Edges(e) => e,
        }
    }

    /// The raw component indices of this set under its own model: node
    /// indices for vertex faults, edge indices for edge faults. This is
    /// the bridge to component-indexed consumers (the failure scenario
    /// engine's per-component `down` state, witness replay schedules).
    pub fn component_indices(&self) -> impl Iterator<Item = usize> + '_ {
        let (vertices, edges) = match self {
            FaultSet::Vertices(v) => (Some(v), None),
            FaultSet::Edges(e) => (None, Some(e)),
        };
        vertices
            .into_iter()
            .flatten()
            .map(|n| n.index())
            .chain(edges.into_iter().flatten().map(|e| e.index()))
    }

    /// Applies this fault set to a mask.
    pub fn apply_to(&self, mask: &mut FaultMask) {
        match self {
            FaultSet::Vertices(v) => {
                for n in v {
                    mask.fault_vertex(*n);
                }
            }
            FaultSet::Edges(e) => {
                for id in e {
                    mask.fault_edge(*id);
                }
            }
        }
    }

    /// Removes this fault set from a mask (inverse of
    /// [`FaultSet::apply_to`]).
    pub fn remove_from(&self, mask: &mut FaultMask) {
        match self {
            FaultSet::Vertices(v) => {
                for n in v {
                    mask.restore_vertex(*n);
                }
            }
            FaultSet::Edges(e) => {
                for id in e {
                    mask.restore_edge(*id);
                }
            }
        }
    }

    /// Builds a fresh mask over `node_count`/`edge_count` with these faults.
    pub fn to_mask(&self, node_count: usize, edge_count: usize) -> FaultMask {
        let mut mask = FaultMask::with_capacity(node_count, edge_count);
        self.apply_to(&mut mask);
        mask
    }
}

impl fmt::Display for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        match self {
            FaultSet::Vertices(v) => {
                for (i, n) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
            }
            FaultSet::Edges(e) => {
                for (i, id) in e.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{id}")?;
                }
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::Graph;

    #[test]
    fn normalization() {
        let f = FaultSet::vertices([NodeId::new(5), NodeId::new(2), NodeId::new(5)]);
        assert_eq!(f.vertex_faults(), &[NodeId::new(2), NodeId::new(5)]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.model(), FaultModel::Vertex);
        let e = FaultSet::edges([EdgeId::new(1), EdgeId::new(0), EdgeId::new(1)]);
        assert_eq!(e.edge_faults(), &[EdgeId::new(0), EdgeId::new(1)]);
        assert_eq!(e.model(), FaultModel::Edge);
    }

    #[test]
    fn equal_sets_compare_equal() {
        let a = FaultSet::vertices([NodeId::new(1), NodeId::new(2)]);
        let b = FaultSet::vertices([NodeId::new(2), NodeId::new(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn apply_and_remove_round_trip() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut mask = FaultMask::for_graph(&g);
        let f = FaultSet::vertices([NodeId::new(1)]);
        f.apply_to(&mut mask);
        assert!(mask.is_vertex_faulted(NodeId::new(1)));
        f.remove_from(&mut mask);
        assert!(mask.is_empty());
    }

    #[test]
    fn to_mask_builds_fresh() {
        let f = FaultSet::edges([EdgeId::new(2)]);
        let mask = f.to_mask(5, 4);
        assert!(mask.is_edge_faulted(EdgeId::new(2)));
        assert_eq!(mask.fault_count(), 1);
    }

    #[test]
    fn component_indices_match_model() {
        let v = FaultSet::vertices([NodeId::new(4), NodeId::new(1)]);
        assert_eq!(v.component_indices().collect::<Vec<_>>(), vec![1, 4]);
        let e = FaultSet::edges([EdgeId::new(7), EdgeId::new(0)]);
        assert_eq!(e.component_indices().collect::<Vec<_>>(), vec![0, 7]);
        assert_eq!(
            FaultSet::empty(FaultModel::Vertex)
                .component_indices()
                .count(),
            0
        );
    }

    #[test]
    fn empty_sets() {
        assert!(FaultSet::empty(FaultModel::Vertex).is_empty());
        assert_eq!(FaultSet::empty(FaultModel::Edge).model(), FaultModel::Edge);
    }

    #[test]
    fn display_forms() {
        let f = FaultSet::vertices([NodeId::new(1), NodeId::new(3)]);
        assert_eq!(f.to_string(), "{v1, v3}");
        let e = FaultSet::edges([EdgeId::new(0)]);
        assert_eq!(e.to_string(), "{e0}");
        assert_eq!(FaultModel::Vertex.to_string(), "vertex");
    }
}
