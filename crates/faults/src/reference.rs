//! The frozen pre-optimization branching oracle.
//!
//! [`ReferenceBranchingOracle`] is a byte-for-byte behavioral snapshot of
//! [`crate::BranchingOracle`] as it stood before the PR-2 hot-path work:
//! per query it allocates a fresh [`FaultMask`], memoizes on sorted
//! `Vec<usize>` clones, collects branching candidates into fresh vectors,
//! and runs its Dijkstras over the pointer-chasing [`Graph`] adjacency
//! list. It exists for two jobs:
//!
//! 1. **Equivalence testing** — the optimized oracle (CSR view, reusable
//!    scratch, Zobrist memo, pooled parallel fan-out) must produce
//!    identical spanners *and witnesses*; the property tests in
//!    `spanner-core` pin that.
//! 2. **Benchmark baseline** — `perf_ftgreedy` and the `perfbench`
//!    harness command report speedups against this implementation, so the
//!    perf trajectory in `BENCH_*.json` has a stable "before".
//!
//! It deliberately keeps the old flat `packed + 1` stats charge for the
//! packing probe (the accounting drift fixed in the live oracle), because
//! a reference that silently improves stops being a reference.

use crate::packing::disjoint_path_packing;
use crate::{FaultModel, FaultOracle, FaultSet, OracleQuery, OracleStats};
use spanner_graph::{DijkstraEngine, EdgeId, FaultMask, Graph, NodeId};
use std::collections::HashSet;

/// The frozen naive-allocation branching oracle. See the module docs.
///
/// # Examples
///
/// ```
/// use spanner_faults::reference::ReferenceBranchingOracle;
/// use spanner_faults::{FaultModel, FaultOracle, OracleQuery};
/// use spanner_graph::{Dist, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mut oracle = ReferenceBranchingOracle::new();
/// let query = OracleQuery {
///     u: NodeId::new(0),
///     v: NodeId::new(3),
///     bound: Dist::finite(2),
///     budget: 2,
///     model: FaultModel::Vertex,
/// };
/// assert_eq!(oracle.find_blocking_faults(&g, query).unwrap().len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct ReferenceBranchingOracle {
    engine: DijkstraEngine,
    stats: OracleStats,
}

impl ReferenceBranchingOracle {
    /// Creates a reference oracle (always the full default feature set:
    /// packing prune, memoization, min-cut shortcut).
    pub fn new() -> Self {
        ReferenceBranchingOracle::default()
    }

    fn search(
        &mut self,
        graph: &Graph,
        q: &OracleQuery,
        mask: &mut FaultMask,
        current: &mut Vec<usize>,
        memo: &mut HashSet<Vec<usize>>,
    ) -> bool {
        self.stats.nodes_explored += 1;
        self.stats.shortest_path_queries += 1;
        let Some(path) = self
            .engine
            .shortest_path_bounded(graph, q.u, q.v, q.bound, mask)
        else {
            return true; // dist already exceeds the bound
        };
        let remaining = q.budget - current.len();
        if remaining == 0 {
            return false;
        }
        let candidates: Vec<usize> = match q.model {
            FaultModel::Vertex => path.interior_nodes().iter().map(|n| n.index()).collect(),
            FaultModel::Edge => path.edges.iter().map(|e| e.index()).collect(),
        };
        if candidates.is_empty() {
            // Vertex model, direct u-v edge: unblockable.
            return false;
        }
        let pack = disjoint_path_packing(
            graph,
            &mut self.engine,
            mask,
            q.u,
            q.v,
            q.bound,
            q.model,
            remaining + 1,
        );
        // The historical flat charge (see the module docs).
        self.stats.shortest_path_queries += pack as u64 + 1;
        if pack > remaining {
            self.stats.packing_prunes += 1;
            return false;
        }
        for c in candidates {
            match q.model {
                FaultModel::Vertex => {
                    mask.fault_vertex(NodeId::new(c));
                }
                FaultModel::Edge => {
                    mask.fault_edge(EdgeId::new(c));
                }
            }
            current.push(c);
            let mut key = current.clone();
            key.sort_unstable();
            let skip = if memo.insert(key) {
                false
            } else {
                self.stats.memo_hits += 1;
                true
            };
            if !skip && self.search(graph, q, mask, current, memo) {
                return true;
            }
            current.pop();
            match q.model {
                FaultModel::Vertex => {
                    mask.restore_vertex(NodeId::new(c));
                }
                FaultModel::Edge => {
                    mask.restore_edge(EdgeId::new(c));
                }
            }
        }
        false
    }
}

impl FaultOracle for ReferenceBranchingOracle {
    fn find_blocking_faults(&mut self, graph: &Graph, query: OracleQuery) -> Option<FaultSet> {
        let mut mask = FaultMask::for_graph(graph);
        if query.budget > 0 {
            // A global cut within budget blocks all paths, short or long.
            match query.model {
                FaultModel::Vertex => {
                    if let Some(cut) = spanner_graph::connectivity::min_vertex_cut_st(
                        graph,
                        &mask,
                        query.u,
                        query.v,
                        query.budget as u32,
                    ) {
                        self.stats.cut_shortcuts += 1;
                        return Some(FaultSet::vertices(cut));
                    }
                }
                FaultModel::Edge => {
                    if let Some(cut) = spanner_graph::connectivity::min_edge_cut_st(
                        graph,
                        &mask,
                        query.u,
                        query.v,
                        query.budget as u32,
                    ) {
                        self.stats.cut_shortcuts += 1;
                        return Some(FaultSet::edges(cut));
                    }
                }
            }
        }
        let mut current = Vec::with_capacity(query.budget);
        let mut memo: HashSet<Vec<usize>> = HashSet::new();
        if self.search(graph, &query, &mut mask, &mut current, &mut memo) {
            Some(match query.model {
                FaultModel::Vertex => FaultSet::vertices(current.into_iter().map(NodeId::new)),
                FaultModel::Edge => FaultSet::edges(current.into_iter().map(EdgeId::new)),
            })
        } else {
            None
        }
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BranchingOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spanner_graph::generators::erdos_renyi;
    use spanner_graph::Dist;

    #[test]
    fn reference_and_optimized_agree_on_random_queries() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..25 {
            let g = erdos_renyi(14, 0.3, &mut rng);
            let mut reference = ReferenceBranchingOracle::new();
            let mut optimized = BranchingOracle::new();
            for budget in 0..3 {
                for model in [FaultModel::Vertex, FaultModel::Edge] {
                    let query = OracleQuery {
                        u: NodeId::new(0),
                        v: NodeId::new(1),
                        bound: Dist::finite(3),
                        budget,
                        model,
                    };
                    assert_eq!(
                        reference.find_blocking_faults(&g, query),
                        optimized.find_blocking_faults(&g, query),
                        "trial {trial} budget {budget} model {model}"
                    );
                }
            }
        }
    }
}
