//! A parallel exact fault oracle.
//!
//! The branching search is embarrassingly parallel at the root: any
//! blocking fault set must contain one of the current shortest path's
//! candidates, and the per-candidate subtrees are independent. This
//! oracle fans those subtrees out over scoped worker threads, each running
//! a sequential [`BranchingOracle`], and keeps the answer deterministic by
//! preferring the lowest-index successful candidate regardless of thread
//! timing.
//!
//! Memoization cannot be shared across workers (it would race and the
//! subtrees rarely overlap at the root split), so each worker memoizes
//! locally; the packing and min-cut prunes run once, up front.

use crate::packing::disjoint_path_packing;
use crate::{
    BranchingConfig, BranchingOracle, FaultModel, FaultOracle, FaultSet, OracleQuery, OracleStats,
};
use spanner_graph::{DijkstraEngine, EdgeId, FaultMask, Graph, NodeId};
use std::sync::Mutex;

/// Parallel exact oracle. Agrees with [`BranchingOracle`] on every query
/// (property-tested); worthwhile when single queries dominate, e.g. large
/// `f` on dense instances.
///
/// # Examples
///
/// ```
/// use spanner_faults::{FaultModel, FaultOracle, OracleQuery, ParallelBranchingOracle};
/// use spanner_graph::{Dist, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mut oracle = ParallelBranchingOracle::new(4);
/// let found = oracle.find_blocking_faults(&g, OracleQuery {
///     u: NodeId::new(0),
///     v: NodeId::new(3),
///     bound: Dist::finite(2),
///     budget: 2,
///     model: FaultModel::Vertex,
/// });
/// assert!(found.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ParallelBranchingOracle {
    threads: usize,
    config: BranchingConfig,
    engine: DijkstraEngine,
    stats: OracleStats,
}

impl ParallelBranchingOracle {
    /// Creates an oracle using up to `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        ParallelBranchingOracle {
            threads: threads.max(1),
            config: BranchingConfig::default(),
            engine: DijkstraEngine::new(),
            stats: OracleStats::default(),
        }
    }

    /// Sets the per-worker branching configuration.
    pub fn with_config(mut self, config: BranchingConfig) -> Self {
        self.config = config;
        self
    }
}

impl FaultOracle for ParallelBranchingOracle {
    fn find_blocking_faults(&mut self, graph: &Graph, query: OracleQuery) -> Option<FaultSet> {
        let mask = FaultMask::for_graph(graph);
        // Root-level shortcuts, identical to the sequential oracle.
        if self.config.use_cut_shortcut && query.budget > 0 {
            match query.model {
                FaultModel::Vertex => {
                    if let Some(cut) = spanner_graph::connectivity::min_vertex_cut_st(
                        graph,
                        &mask,
                        query.u,
                        query.v,
                        query.budget as u32,
                    ) {
                        self.stats.cut_shortcuts += 1;
                        return Some(FaultSet::vertices(cut));
                    }
                }
                FaultModel::Edge => {
                    if let Some(cut) = spanner_graph::connectivity::min_edge_cut_st(
                        graph,
                        &mask,
                        query.u,
                        query.v,
                        query.budget as u32,
                    ) {
                        self.stats.cut_shortcuts += 1;
                        return Some(FaultSet::edges(cut));
                    }
                }
            }
        }
        self.stats.nodes_explored += 1;
        self.stats.shortest_path_queries += 1;
        let Some(path) =
            self.engine
                .shortest_path_bounded(graph, query.u, query.v, query.bound, &mask)
        else {
            return Some(FaultSet::empty(query.model));
        };
        if query.budget == 0 {
            return None;
        }
        let candidates: Vec<usize> = match query.model {
            FaultModel::Vertex => path.interior_nodes().iter().map(|n| n.index()).collect(),
            FaultModel::Edge => path.edges.iter().map(|e| e.index()).collect(),
        };
        if candidates.is_empty() {
            return None;
        }
        if self.config.use_packing {
            let pack = disjoint_path_packing(
                graph,
                &mut self.engine,
                &mask,
                query.u,
                query.v,
                query.bound,
                query.model,
                query.budget + 1,
            );
            self.stats.shortest_path_queries += pack as u64 + 1;
            if pack > query.budget {
                self.stats.packing_prunes += 1;
                return None;
            }
        }
        // Fan the root candidates out; keep (index, result, stats) records.
        let results: Mutex<Vec<(usize, Option<FaultSet>, OracleStats)>> =
            Mutex::new(Vec::with_capacity(candidates.len()));
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = self.threads.min(candidates.len());
        let config = self.config;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut worker = BranchingOracle::with_config(BranchingConfig {
                        // The root-level cut shortcut already ran; workers
                        // skip it (per-subtree cuts rarely pay off).
                        use_cut_shortcut: false,
                        ..config
                    });
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= candidates.len() {
                            break;
                        }
                        let initial = match query.model {
                            FaultModel::Vertex => FaultSet::vertices([NodeId::new(candidates[i])]),
                            FaultModel::Edge => FaultSet::edges([EdgeId::new(candidates[i])]),
                        };
                        let found =
                            worker.find_blocking_faults_with_initial(graph, query, &initial);
                        results
                            .lock()
                            .expect("results lock")
                            .push((i, found, worker.stats()));
                        worker.reset_stats();
                    }
                });
            }
        });
        let mut records = results.into_inner().expect("results lock");
        records.sort_by_key(|(i, _, _)| *i);
        let mut answer = None;
        for (_, found, stats) in records {
            self.stats.absorb(stats);
            if answer.is_none() {
                if let Some(f) = found {
                    answer = Some(f);
                }
            }
        }
        answer
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::Dist;

    fn q(u: usize, v: usize, bound: u64, budget: usize, model: FaultModel) -> OracleQuery {
        OracleQuery {
            u: NodeId::new(u),
            v: NodeId::new(v),
            bound: Dist::finite(bound),
            budget,
            model,
        }
    }

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn agrees_with_sequential_on_diamond() {
        let g = diamond();
        let mut par = ParallelBranchingOracle::new(4);
        let mut seq = BranchingOracle::new();
        for budget in 0..3 {
            for model in [FaultModel::Vertex, FaultModel::Edge] {
                let query = q(0, 3, 2, budget, model);
                assert_eq!(
                    par.find_blocking_faults(&g, query).is_some(),
                    seq.find_blocking_faults(&g, query).is_some(),
                    "budget={budget} model={model}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_sequential_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use spanner_graph::generators::erdos_renyi;
        let mut rng = StdRng::seed_from_u64(55);
        for trial in 0..20 {
            let g = erdos_renyi(12, 0.35, &mut rng);
            for budget in 0..3 {
                let query = q(0, 1, 3, budget, FaultModel::Vertex);
                let mut par = ParallelBranchingOracle::new(3);
                let mut seq = BranchingOracle::new();
                let a = par.find_blocking_faults(&g, query);
                let b = seq.find_blocking_faults(&g, query);
                assert_eq!(a.is_some(), b.is_some(), "trial {trial} budget {budget}");
                if let Some(w) = a {
                    let mask = w.to_mask(g.node_count(), g.edge_count());
                    let d = spanner_graph::dijkstra::dist(&g, query.u, query.v, &mask);
                    assert!(d > query.bound);
                }
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = diamond();
        let query = q(0, 3, 2, 2, FaultModel::Vertex);
        let mut answers = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut o = ParallelBranchingOracle::new(threads);
            answers.push(o.find_blocking_faults(&g, query));
        }
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn stats_aggregate_from_workers() {
        let g = diamond();
        let mut o = ParallelBranchingOracle::new(2).with_config(BranchingConfig {
            use_cut_shortcut: false,
            ..BranchingConfig::default()
        });
        let _ = o.find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex));
        assert!(o.stats().shortest_path_queries > 0);
        o.reset_stats();
        assert_eq!(o.stats(), OracleStats::default());
    }
}
