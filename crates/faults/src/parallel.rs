//! A parallel exact fault oracle with a persistent worker pool.
//!
//! The branching search is embarrassingly parallel at the root: any
//! blocking fault set must contain one of the current shortest path's
//! candidates, and the per-candidate subtrees are independent. This
//! oracle fans those subtrees out over a pool of long-lived worker
//! threads, each running a sequential [`BranchingOracle`] whose scratch
//! (mask, memo, Dijkstra arrays) persists across *all* queries of a
//! construction — the pre-PR-2 implementation spawned fresh
//! `std::thread::scope` threads (and fresh oracle state) per query, which
//! dominated small-query workloads.
//!
//! The pool cannot borrow a caller's graph (workers outlive any one
//! query), so workers share an [`IncrementalCsr`] spanner view behind an
//! `Arc<RwLock<…>>`. FT-greedy drives that view directly: it appends each
//! kept edge via [`ParallelBranchingOracle::view_push_edge`] and queries
//! via [`ParallelBranchingOracle::find_blocking_faults_in_view`], so the
//! view stays current for the whole run with no per-query setup. The
//! plain [`FaultOracle`] entry point remains correct for arbitrary graphs
//! by resynchronizing the view (O(n + m)) before querying — still cheaper
//! than the thread spawns it replaced.
//!
//! Determinism: workers report per-candidate results which are re-ordered
//! by candidate index, and the lowest-index success wins regardless of
//! thread timing — the same answer the sequential oracle's DFS returns.
//! Memoization stays worker-local (sharing it would race and the root
//! subtrees rarely overlap); the packing and min-cut prunes run once, up
//! front, on the main thread.

use crate::packing::{disjoint_path_packing_counted, PackingScratch};
use crate::{
    BranchingConfig, BranchingOracle, FaultModel, FaultOracle, FaultSet, OracleQuery, OracleStats,
};
use spanner_graph::connectivity::CutScratch;
use spanner_graph::{
    DijkstraEngine, EdgeId, FaultMask, Graph, GraphView, IncrementalCsr, NodeId, PathScratch,
    Weight,
};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// One root-candidate search job handed to a pool worker.
struct Job {
    seq: u64,
    index: usize,
    candidate: usize,
    query: OracleQuery,
}

/// A worker's answer for one job.
type JobResult = (u64, usize, Option<FaultSet>, OracleStats);

/// The long-lived worker pool: a shared job queue, a result channel and
/// the thread handles (joined on drop).
struct Pool {
    jobs: mpsc::Sender<Job>,
    results: mpsc::Receiver<JobResult>,
    handles: Vec<JoinHandle<()>>,
}

/// Parallel exact oracle. Agrees with [`BranchingOracle`] on every query
/// (property-tested); worthwhile when single queries dominate, e.g. large
/// `f` on dense instances.
///
/// # Examples
///
/// ```
/// use spanner_faults::{FaultModel, FaultOracle, OracleQuery, ParallelBranchingOracle};
/// use spanner_graph::{Dist, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mut oracle = ParallelBranchingOracle::new(4);
/// let found = oracle.find_blocking_faults(&g, OracleQuery {
///     u: NodeId::new(0),
///     v: NodeId::new(3),
///     bound: Dist::finite(2),
///     budget: 2,
///     model: FaultModel::Vertex,
/// });
/// assert!(found.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ParallelBranchingOracle {
    threads: usize,
    config: BranchingConfig,
    engine: DijkstraEngine,
    stats: OracleStats,
    view: Arc<RwLock<IncrementalCsr>>,
    // Root-phase scratch, reused across queries.
    root_mask: FaultMask,
    root_path: PathScratch,
    root_candidates: Vec<usize>,
    packing: PackingScratch,
    cuts: CutScratch,
    pool: Option<PoolHandle>,
    seq: u64,
}

/// Wrapper so the pool (whose channels are not `Debug`) can live inside a
/// `#[derive(Debug)]` struct.
struct PoolHandle(Pool);

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.0.handles.len())
            .finish()
    }
}

impl ParallelBranchingOracle {
    /// Creates an oracle using `threads` persistent workers (at least 1).
    /// Workers are spawned lazily on the first query, so configuring the
    /// oracle first costs nothing.
    pub fn new(threads: usize) -> Self {
        ParallelBranchingOracle {
            threads: threads.max(1),
            config: BranchingConfig::default(),
            engine: DijkstraEngine::new(),
            stats: OracleStats::default(),
            view: Arc::new(RwLock::new(IncrementalCsr::new(0))),
            root_mask: FaultMask::default(),
            root_path: PathScratch::new(),
            root_candidates: Vec::new(),
            packing: PackingScratch::new(),
            cuts: CutScratch::new(),
            pool: None,
            seq: 0,
        }
    }

    /// Sets the per-worker branching configuration.
    ///
    /// # Panics
    ///
    /// Panics if the pool already started working (workers bake the
    /// configuration in at spawn time).
    pub fn with_config(mut self, config: BranchingConfig) -> Self {
        assert!(
            self.pool.is_none(),
            "configure the oracle before its first query"
        );
        self.config = config;
        self
    }

    /// Enables or disables the *root-level* min-cut shortcut for
    /// subsequent queries.
    ///
    /// Unlike [`ParallelBranchingOracle::with_config`] this is safe after
    /// the pool has spawned: workers never run the root shortcut (they
    /// bake `use_cut_shortcut: false` at spawn), so the flag only affects
    /// the root phase executed on the calling thread. All configurations
    /// are exact; the shortcut is a performance trade. Partitioned
    /// construction turns it off for the boundary stitch, where the
    /// shortcut's unbounded whole-graph packing probes dominate the cost
    /// of the (ball-bounded) search they would prune.
    pub fn set_root_cut_shortcut(&mut self, enabled: bool) {
        self.config.use_cut_shortcut = enabled;
    }

    /// Resets the shared spanner view to `node_count` isolated vertices.
    /// FT-greedy calls this once per construction, then grows the view
    /// with [`ParallelBranchingOracle::view_push_edge`].
    pub fn view_reset(&mut self, node_count: usize) {
        self.view.write().expect("view lock").reset(node_count);
    }

    /// Appends a kept edge to the shared spanner view, returning its
    /// dense id (which matches the spanner's own edge id).
    pub fn view_push_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> EdgeId {
        self.view
            .write()
            .expect("view lock")
            .push_edge(u, v, weight)
    }

    /// Answers a query against the shared spanner view (the hot path —
    /// no per-query graph sync). Root shortcuts run on the calling
    /// thread; candidate subtrees fan out across the pool.
    pub fn find_blocking_faults_in_view(&mut self, query: OracleQuery) -> Option<FaultSet> {
        self.ensure_pool();
        let view = Arc::clone(&self.view);
        let guard = view.read().expect("view lock");
        match self.root_phase(&guard, query) {
            Some(answer) => answer,
            None => {
                // Release the read lock before blocking on worker
                // results: workers take their own read locks, and a
                // queued writer must never find this thread holding one
                // while it waits on the pool (reader-writer deadlock).
                drop(guard);
                self.fan_out(query)
            }
        }
    }

    /// The sequential root of the search: min-cut shortcut, root shortest
    /// path, packing prune, candidate extraction. Returns `Some(answer)`
    /// when the query is decided without fanning out; on `None` the
    /// candidates are staged in `self.root_candidates`.
    fn root_phase(
        &mut self,
        view: &IncrementalCsr,
        query: OracleQuery,
    ) -> Option<Option<FaultSet>> {
        if self
            .root_mask
            .reset_for(view.node_count(), view.edge_count())
        {
            self.stats.scratch_rebuilds += 1;
        }
        self.root_candidates.clear();
        // Root-level shortcuts: the exact same Menger-prefiltered min-cut
        // front the sequential oracle runs (shared implementation, so the
        // two paths cannot drift).
        if self.config.use_cut_shortcut && query.budget > 0 {
            if let Some(cut) = crate::branching::cut_shortcut_with_prefilter(
                view,
                &mut self.engine,
                &self.root_mask,
                &mut self.packing,
                &mut self.cuts,
                &mut self.stats,
                query,
            ) {
                return Some(Some(cut));
            }
        }
        self.stats.nodes_explored += 1;
        self.stats.shortest_path_queries += 1;
        if !self.engine.shortest_path_bounded_into(
            view,
            query.u,
            query.v,
            query.bound,
            &self.root_mask,
            &mut self.root_path,
        ) {
            return Some(Some(FaultSet::empty(query.model)));
        }
        if query.budget == 0 {
            return Some(None);
        }
        match query.model {
            FaultModel::Vertex => {
                for n in self.root_path.interior_nodes() {
                    self.root_candidates.push(n.index());
                }
            }
            FaultModel::Edge => {
                for e in self.root_path.edges() {
                    self.root_candidates.push(e.index());
                }
            }
        }
        if self.root_candidates.is_empty() {
            return Some(None);
        }
        if self.config.use_packing {
            let probe = disjoint_path_packing_counted(
                view,
                &mut self.engine,
                &self.root_mask,
                query.u,
                query.v,
                query.bound,
                query.model,
                query.budget + 1,
                &mut self.packing,
            );
            self.stats.shortest_path_queries += probe.queries;
            if probe.packed > query.budget {
                self.stats.packing_prunes += 1;
                return Some(None);
            }
        }
        None
    }

    /// Distributes the staged root candidates over the pool and reduces
    /// the answers deterministically (lowest candidate index wins).
    fn fan_out(&mut self, query: OracleQuery) -> Option<FaultSet> {
        let pool = &self.pool.as_ref().expect("pool spawned").0;
        self.seq += 1;
        for (index, &candidate) in self.root_candidates.iter().enumerate() {
            pool.jobs
                .send(Job {
                    seq: self.seq,
                    index,
                    candidate,
                    query,
                })
                .expect("worker pool alive");
        }
        let mut records: Vec<(usize, Option<FaultSet>, OracleStats)> =
            Vec::with_capacity(self.root_candidates.len());
        while records.len() < self.root_candidates.len() {
            // recv_timeout + liveness check rather than a bare recv: if a
            // worker dies mid-job (panic), its result never arrives but
            // the channel stays open through the survivors' senders — a
            // bare recv would hang the whole construction. The old
            // thread::scope design re-raised worker panics; this restores
            // that loud failure.
            match pool.results.recv_timeout(Duration::from_millis(100)) {
                Ok((seq, index, found, stats)) => {
                    debug_assert_eq!(seq, self.seq, "stale job result");
                    records.push((index, found, stats));
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    assert!(
                        !pool.handles.iter().any(|h| h.is_finished()),
                        "a pool worker died mid-query"
                    );
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("worker pool shut down mid-query");
                }
            }
        }
        records.sort_by_key(|(index, _, _)| *index);
        let mut answer = None;
        for (_, found, stats) in records {
            self.stats.absorb(stats);
            if answer.is_none() {
                if let Some(f) = found {
                    answer = Some(f);
                }
            }
        }
        answer
    }

    /// Spawns the persistent workers on first use.
    fn ensure_pool(&mut self) {
        if self.pool.is_some() {
            return;
        }
        self.stats.pool_spawns += 1;
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let (result_tx, result_rx) = mpsc::channel::<JobResult>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let config = BranchingConfig {
            // The root-level cut shortcut already ran; workers skip it
            // (per-subtree cuts rarely pay off).
            use_cut_shortcut: false,
            ..self.config
        };
        let mut handles = Vec::with_capacity(self.threads);
        for _ in 0..self.threads {
            let jobs = Arc::clone(&job_rx);
            let results = result_tx.clone();
            let view = Arc::clone(&self.view);
            handles.push(std::thread::spawn(move || {
                // One sequential oracle per worker, alive for the whole
                // pool lifetime: its scratch persists across every query
                // of the construction.
                let mut oracle = BranchingOracle::with_config(config);
                loop {
                    let job = {
                        let rx = jobs.lock().expect("job queue lock");
                        match rx.recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped
                        }
                    };
                    let initial = match job.query.model {
                        FaultModel::Vertex => FaultSet::vertices([NodeId::new(job.candidate)]),
                        FaultModel::Edge => FaultSet::edges([EdgeId::new(job.candidate)]),
                    };
                    let found = {
                        let guard = view.read().expect("view lock");
                        oracle.find_blocking_faults_with_initial_in(&*guard, job.query, &initial)
                    };
                    let stats = oracle.stats();
                    oracle.reset_stats();
                    if results.send((job.seq, job.index, found, stats)).is_err() {
                        return; // pool dropped mid-flight
                    }
                }
            }));
        }
        self.pool = Some(PoolHandle(Pool {
            jobs: job_tx,
            results: result_rx,
            handles,
        }));
    }
}

impl Drop for ParallelBranchingOracle {
    fn drop(&mut self) {
        if let Some(PoolHandle(pool)) = self.pool.take() {
            drop(pool.jobs); // closes the queue; workers exit their loop
            drop(pool.results);
            for handle in pool.handles {
                let _ = handle.join();
            }
        }
    }
}

impl FaultOracle for ParallelBranchingOracle {
    fn find_blocking_faults(&mut self, graph: &Graph, query: OracleQuery) -> Option<FaultSet> {
        // Arbitrary-graph entry point: resynchronize the shared view
        // (reusing its allocations), then query it. FT-greedy avoids this
        // O(n + m) sync by growing the view incrementally instead.
        self.view.write().expect("view lock").sync_from_graph(graph);
        self.find_blocking_faults_in_view(query)
    }

    fn stats(&self) -> OracleStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::Dist;

    fn q(u: usize, v: usize, bound: u64, budget: usize, model: FaultModel) -> OracleQuery {
        OracleQuery {
            u: NodeId::new(u),
            v: NodeId::new(v),
            bound: Dist::finite(bound),
            budget,
            model,
        }
    }

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn agrees_with_sequential_on_diamond() {
        let g = diamond();
        let mut par = ParallelBranchingOracle::new(4);
        let mut seq = BranchingOracle::new();
        for budget in 0..3 {
            for model in [FaultModel::Vertex, FaultModel::Edge] {
                let query = q(0, 3, 2, budget, model);
                assert_eq!(
                    par.find_blocking_faults(&g, query).is_some(),
                    seq.find_blocking_faults(&g, query).is_some(),
                    "budget={budget} model={model}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_sequential_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use spanner_graph::generators::erdos_renyi;
        let mut rng = StdRng::seed_from_u64(55);
        for trial in 0..20 {
            let g = erdos_renyi(12, 0.35, &mut rng);
            for budget in 0..3 {
                let query = q(0, 1, 3, budget, FaultModel::Vertex);
                let mut par = ParallelBranchingOracle::new(3);
                let mut seq = BranchingOracle::new();
                let a = par.find_blocking_faults(&g, query);
                let b = seq.find_blocking_faults(&g, query);
                assert_eq!(a.is_some(), b.is_some(), "trial {trial} budget {budget}");
                if let Some(w) = a {
                    let mask = w.to_mask(g.node_count(), g.edge_count());
                    let d = spanner_graph::dijkstra::dist(&g, query.u, query.v, &mask);
                    assert!(d > query.bound);
                }
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = diamond();
        let query = q(0, 3, 2, 2, FaultModel::Vertex);
        let mut answers = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut o = ParallelBranchingOracle::new(threads);
            answers.push(o.find_blocking_faults(&g, query));
        }
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn stats_aggregate_from_workers() {
        let g = diamond();
        let mut o = ParallelBranchingOracle::new(2).with_config(BranchingConfig {
            use_cut_shortcut: false,
            ..BranchingConfig::default()
        });
        let _ = o.find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex));
        assert!(o.stats().shortest_path_queries > 0);
        o.reset_stats();
        assert_eq!(o.stats(), OracleStats::default());
    }

    #[test]
    fn pool_persists_across_queries() {
        // Many queries through one oracle: the same workers serve all of
        // them (the pool is spawned once), and the shared view keeps up
        // with incremental growth.
        let mut o = ParallelBranchingOracle::new(2);
        o.view_reset(4);
        let g = diamond();
        let mut seq = BranchingOracle::new();
        let mut view_edges = 0usize;
        for (_, e) in g.edges() {
            o.view_push_edge(e.u(), e.v(), e.weight());
            view_edges += 1;
            for budget in 0..3 {
                let query = q(0, 3, 2, budget, FaultModel::Vertex);
                // Compare against a sequential oracle over the same prefix.
                let mut prefix = Graph::new(4);
                for (_, pe) in g.edges().take(view_edges) {
                    prefix.add_edge_unchecked(pe.u(), pe.v(), pe.weight());
                }
                assert_eq!(
                    o.find_blocking_faults_in_view(query),
                    seq.find_blocking_faults(&prefix, query),
                    "prefix of {view_edges} edges, budget {budget}"
                );
            }
        }
    }

    #[test]
    fn view_reset_starts_fresh_construction() {
        let mut o = ParallelBranchingOracle::new(2);
        o.view_reset(3);
        o.view_push_edge(NodeId::new(0), NodeId::new(1), Weight::UNIT);
        o.view_push_edge(NodeId::new(1), NodeId::new(2), Weight::UNIT);
        // 0-2 runs through vertex 1 only: one fault blocks it.
        let found = o.find_blocking_faults_in_view(q(0, 2, 2, 1, FaultModel::Vertex));
        assert_eq!(found, Some(FaultSet::vertices([NodeId::new(1)])));
        // Reset and rebuild a triangle: now 0-2 is direct, unblockable.
        o.view_reset(3);
        o.view_push_edge(NodeId::new(0), NodeId::new(1), Weight::UNIT);
        o.view_push_edge(NodeId::new(1), NodeId::new(2), Weight::UNIT);
        o.view_push_edge(NodeId::new(0), NodeId::new(2), Weight::UNIT);
        assert_eq!(
            o.find_blocking_faults_in_view(q(0, 2, 2, 1, FaultModel::Vertex)),
            None
        );
    }
}
