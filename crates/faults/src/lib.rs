//! Fault model and fault-set search oracles for the `vft-spanner`
//! workspace.
//!
//! The FT greedy algorithm of Bodwin–Patel keeps an edge `(u, v)` exactly
//! when some fault set `F` with `|F| ≤ f` satisfies
//! `dist_{H∖F}(u, v) > k·w(u, v)`. Deciding that is the *length-bounded
//! cut* problem; a naive implementation is exponential in `f`, which the
//! paper leaves open to improve. This crate provides:
//!
//! * [`FaultModel`] / [`FaultSet`] — vertex vs edge faults and concrete,
//!   normalized failure sets;
//! * [`FaultOracle`] — the common exact-decision interface, with
//!   [`OracleStats`] work counters for the runtime experiments;
//! * [`ExhaustiveOracle`] — `O(n^f)` brute force (ground truth for tests);
//! * [`BranchingOracle`] — `O(k^f)` bounded search tree with sound
//!   disjoint-path-packing pruning and fault-set memoization (the oracle
//!   FT-greedy actually uses);
//! * [`HittingSetOracle`] — an independent exact formulation via explicit
//!   short-path enumeration ([`paths`]) and hitting-set branch & bound,
//!   used to cross-validate the branching oracle;
//! * [`reference::ReferenceBranchingOracle`] — the frozen pre-optimization
//!   branching implementation, kept as the equivalence and benchmark
//!   baseline for the zero-allocation hot path;
//! * [`GreedyHeuristicOracle`] — a *polynomial-time, inexact* oracle
//!   probing the paper's open problem: its witnesses are always genuine,
//!   but it may miss blocking sets (ablation experiment E11);
//! * [`fingerprint`] — the order-independent Zobrist set fingerprints
//!   shared by the branching oracle's memoization and the serving side's
//!   epoch-view interning (`spanner_core::serve`).
//!
//! # Example
//!
//! ```
//! use spanner_faults::{BranchingOracle, FaultModel, FaultOracle, OracleQuery};
//! use spanner_graph::{Dist, Graph, NodeId};
//!
//! let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
//! let mut oracle = BranchingOracle::new();
//! let found = oracle.find_blocking_faults(&g, OracleQuery {
//!     u: NodeId::new(0),
//!     v: NodeId::new(3),
//!     bound: Dist::finite(2),
//!     budget: 2,
//!     model: FaultModel::Vertex,
//! });
//! assert!(found.is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branching;
mod exhaustive;
mod heuristic;
mod hitting;
mod model;
mod oracle;
mod parallel;

pub mod fingerprint;
pub mod packing;
pub mod paths;
pub mod reference;

pub use branching::{BranchingConfig, BranchingOracle};
pub use exhaustive::ExhaustiveOracle;
pub use heuristic::{GreedyHeuristicOracle, PickRule};
pub use hitting::HittingSetOracle;
pub use model::{FaultModel, FaultSet};
pub use oracle::{FaultOracle, OracleQuery, OracleStats};
pub use parallel::ParallelBranchingOracle;
