//! The hitting-set fault oracle: an independent exact formulation.
//!
//! Blocking all `u→v` paths of weight ≤ bound with ≤ f faults is exactly a
//! *minimum hitting set* question: enumerate the short paths, then choose
//! at most `f` elements (interior vertices or edges) covering all of them.
//! This oracle materializes the path list ([`crate::paths`]) and runs a
//! branch-and-bound over it.
//!
//! Its purpose is **cross-validation**: it shares no search code with
//! [`BranchingOracle`](crate::BranchingOracle), so agreement between the
//! two (and the brute-force oracle) on random instances is strong evidence
//! of correctness. When the path list would exceed its cap it falls back to
//! the branching oracle, keeping the contract exact.

use crate::paths::enumerate_bounded_paths;
use crate::{BranchingOracle, FaultModel, FaultOracle, FaultSet, OracleQuery, OracleStats};
use spanner_graph::{EdgeId, FaultMask, Graph, NodeId};
use std::collections::HashSet;

/// Default cap on materialized paths before falling back to branching.
const DEFAULT_MAX_PATHS: usize = 20_000;

/// The hitting-set oracle. See the module docs.
///
/// # Examples
///
/// ```
/// use spanner_faults::{FaultModel, FaultOracle, HittingSetOracle, OracleQuery};
/// use spanner_graph::{Dist, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)])?;
/// let mut oracle = HittingSetOracle::new();
/// let query = OracleQuery {
///     u: NodeId::new(0),
///     v: NodeId::new(3),
///     bound: Dist::finite(2),
///     budget: 2,
///     model: FaultModel::Vertex,
/// };
/// assert!(oracle.find_blocking_faults(&g, query).is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct HittingSetOracle {
    max_paths: usize,
    fallback: BranchingOracle,
    stats: OracleStats,
}

impl Default for HittingSetOracle {
    fn default() -> Self {
        HittingSetOracle {
            max_paths: DEFAULT_MAX_PATHS,
            fallback: BranchingOracle::new(),
            stats: OracleStats::default(),
        }
    }
}

impl HittingSetOracle {
    /// Creates an oracle with the default path cap.
    pub fn new() -> Self {
        HittingSetOracle::default()
    }

    /// Creates an oracle that materializes at most `max_paths` paths before
    /// falling back to the branching oracle.
    pub fn with_max_paths(max_paths: usize) -> Self {
        HittingSetOracle {
            max_paths,
            ..HittingSetOracle::default()
        }
    }

    fn hit_search(
        &mut self,
        paths: &[Vec<usize>],
        budget: usize,
        chosen: &mut Vec<usize>,
        covered: &mut Vec<usize>, // per-path count of chosen elements on it
        memo: &mut HashSet<Vec<usize>>,
    ) -> bool {
        self.stats.nodes_explored += 1;
        let Some(first_unhit) = covered.iter().position(|c| *c == 0) else {
            return true; // all paths hit
        };
        if budget == 0 {
            return false;
        }
        // Lower bound: greedily count pairwise element-disjoint unhit paths.
        let mut used: HashSet<usize> = HashSet::new();
        let mut disjoint = 0usize;
        for (i, path) in paths.iter().enumerate() {
            if covered[i] > 0 {
                continue;
            }
            if path.iter().all(|e| !used.contains(e)) {
                disjoint += 1;
                if disjoint > budget {
                    self.stats.packing_prunes += 1;
                    return false;
                }
                used.extend(path.iter().copied());
            }
        }
        for &cand in &paths[first_unhit] {
            chosen.push(cand);
            let mut key = chosen.clone();
            key.sort_unstable();
            if !memo.insert(key) {
                self.stats.memo_hits += 1;
                chosen.pop();
                continue;
            }
            for (i, path) in paths.iter().enumerate() {
                if path.contains(&cand) {
                    covered[i] += 1;
                }
            }
            if self.hit_search(paths, budget - 1, chosen, covered, memo) {
                return true;
            }
            for (i, path) in paths.iter().enumerate() {
                if path.contains(&cand) {
                    covered[i] -= 1;
                }
            }
            chosen.pop();
        }
        false
    }
}

impl FaultOracle for HittingSetOracle {
    fn find_blocking_faults(&mut self, graph: &Graph, query: OracleQuery) -> Option<FaultSet> {
        let mask = FaultMask::for_graph(graph);
        let enumeration =
            enumerate_bounded_paths(graph, &mask, query.u, query.v, query.bound, self.max_paths);
        self.stats.shortest_path_queries += 1;
        if enumeration.truncated {
            // Too many short paths to materialize: stay exact via fallback.
            return self.fallback.find_blocking_faults(graph, query);
        }
        let paths: Vec<Vec<usize>> = enumeration
            .paths
            .iter()
            .map(|p| match query.model {
                FaultModel::Vertex => p.interior_nodes().iter().map(|n| n.index()).collect(),
                FaultModel::Edge => p.edges.iter().map(|e| e.index()).collect(),
            })
            .collect();
        if paths.iter().any(|p| p.is_empty()) {
            // A path with no candidate elements (direct edge, vertex model)
            // can never be hit.
            return None;
        }
        let mut chosen = Vec::new();
        let mut covered = vec![0usize; paths.len()];
        let mut memo = HashSet::new();
        if self.hit_search(&paths, query.budget, &mut chosen, &mut covered, &mut memo) {
            Some(match query.model {
                FaultModel::Vertex => FaultSet::vertices(chosen.into_iter().map(NodeId::new)),
                FaultModel::Edge => FaultSet::edges(chosen.into_iter().map(EdgeId::new)),
            })
        } else {
            None
        }
    }

    fn stats(&self) -> OracleStats {
        let mut s = self.stats;
        s.absorb(self.fallback.stats());
        s
    }

    fn reset_stats(&mut self) {
        self.stats = OracleStats::default();
        self.fallback.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spanner_graph::Dist;

    fn q(u: usize, v: usize, bound: u64, budget: usize, model: FaultModel) -> OracleQuery {
        OracleQuery {
            u: NodeId::new(u),
            v: NodeId::new(v),
            bound: Dist::finite(bound),
            budget,
            model,
        }
    }

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn agrees_with_expected_cut() {
        let g = diamond();
        let mut o = HittingSetOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex))
            .unwrap();
        assert_eq!(f, FaultSet::vertices([NodeId::new(1), NodeId::new(2)]));
        assert!(o
            .find_blocking_faults(&g, q(0, 3, 2, 1, FaultModel::Vertex))
            .is_none());
    }

    #[test]
    fn direct_edge_blocks_vertex_model() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut o = HittingSetOracle::new();
        assert!(o
            .find_blocking_faults(&g, q(0, 1, 1, 3, FaultModel::Vertex))
            .is_none());
        assert!(o
            .find_blocking_faults(&g, q(0, 1, 1, 1, FaultModel::Edge))
            .is_some());
    }

    #[test]
    fn zero_paths_means_empty_fault_set() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut o = HittingSetOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 2, 1, 0, FaultModel::Vertex))
            .unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn fallback_on_truncation_stays_exact() {
        // Cap of 1 path forces the fallback on any 2-route instance.
        let g = diamond();
        let mut o = HittingSetOracle::with_max_paths(1);
        let f = o.find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Vertex));
        assert!(f.is_some());
        let none = o.find_blocking_faults(&g, q(0, 3, 2, 1, FaultModel::Vertex));
        assert!(none.is_none());
    }

    #[test]
    fn edge_model_cut() {
        let g = diamond();
        let mut o = HittingSetOracle::new();
        let f = o
            .find_blocking_faults(&g, q(0, 3, 2, 2, FaultModel::Edge))
            .unwrap();
        let mask = f.to_mask(g.node_count(), g.edge_count());
        let d = spanner_graph::dijkstra::dist(&g, NodeId::new(0), NodeId::new(3), &mask);
        assert!(d > Dist::finite(2));
    }
}
