//! Bounded-weight simple path enumeration.
//!
//! The hitting-set oracle reformulates the fault search as "hit every
//! `u→v` path of weight ≤ bound". That needs the explicit path list. The
//! number of such paths can be exponential, so enumeration takes a hard cap
//! and reports truncation; the DFS is pruned by exact distance-to-target
//! potentials, so it never wanders into hopeless branches.

use spanner_graph::{BitSet, DijkstraEngine, Dist, EdgeId, FaultMask, Graph, NodeId};

/// A simple `u→v` path of bounded total weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundedPath {
    /// Vertices from `u` to `v` inclusive.
    pub nodes: Vec<NodeId>,
    /// Edges in order (`nodes.len() - 1` of them).
    pub edges: Vec<EdgeId>,
    /// Total weight.
    pub dist: Dist,
}

impl BoundedPath {
    /// The vertices strictly between the endpoints.
    pub fn interior_nodes(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }
}

/// Result of [`enumerate_bounded_paths`].
#[derive(Clone, Debug, Default)]
pub struct PathEnumeration {
    /// The paths found (complete iff `!truncated`).
    pub paths: Vec<BoundedPath>,
    /// `true` if the cap was hit before the enumeration finished.
    pub truncated: bool,
}

/// Enumerates every simple `u→v` path of total weight at most `bound` in
/// `graph ∖ mask`, up to `limit` paths.
///
/// # Examples
///
/// ```
/// use spanner_faults::paths::enumerate_bounded_paths;
/// use spanner_graph::{Dist, FaultMask, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)])?;
/// let mask = FaultMask::for_graph(&g);
/// let found = enumerate_bounded_paths(&g, &mask, NodeId::new(0), NodeId::new(3), Dist::finite(2), 100);
/// assert!(!found.truncated);
/// assert_eq!(found.paths.len(), 3); // direct edge + two 2-hop routes
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn enumerate_bounded_paths(
    graph: &Graph,
    mask: &FaultMask,
    u: NodeId,
    v: NodeId,
    bound: Dist,
    limit: usize,
) -> PathEnumeration {
    let mut out = PathEnumeration::default();
    if limit == 0 || mask.is_vertex_faulted(u) || mask.is_vertex_faulted(v) || u == v {
        return out;
    }
    // Exact distance-to-target potentials for pruning.
    let mut engine = DijkstraEngine::new();
    let to_target = engine.sssp_bounded(graph, v, bound, mask);
    if !to_target[u.index()].is_finite() {
        return out;
    }
    let mut on_path = BitSet::new(graph.node_count());
    on_path.insert(u.index());
    let mut nodes = vec![u];
    let mut edges: Vec<EdgeId> = Vec::new();
    dfs(
        graph,
        mask,
        v,
        bound,
        &to_target,
        &mut on_path,
        &mut nodes,
        &mut edges,
        Dist::ZERO,
        limit,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    graph: &Graph,
    mask: &FaultMask,
    target: NodeId,
    bound: Dist,
    to_target: &[Dist],
    on_path: &mut BitSet,
    nodes: &mut Vec<NodeId>,
    edges: &mut Vec<EdgeId>,
    acc: Dist,
    limit: usize,
    out: &mut PathEnumeration,
) -> bool {
    let cur = *nodes.last().expect("path never empty");
    if cur == target {
        out.paths.push(BoundedPath {
            nodes: nodes.clone(),
            edges: edges.clone(),
            dist: acc,
        });
        if out.paths.len() >= limit {
            out.truncated = true;
            return false;
        }
        return true;
    }
    for (to, eid) in graph.neighbors(cur) {
        if !mask.allows(to, eid) || on_path.contains(to.index()) {
            continue;
        }
        let next_acc = acc + graph.weight(eid);
        // Prune: even the best continuation overshoots the bound.
        if next_acc + to_target[to.index()] > bound {
            continue;
        }
        on_path.insert(to.index());
        nodes.push(to);
        edges.push(eid);
        let keep_going = dfs(
            graph, mask, target, bound, to_target, on_path, nodes, edges, next_acc, limit, out,
        );
        edges.pop();
        nodes.pop();
        on_path.remove(to.index());
        if !keep_going {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_paths_in_diamond_with_chord() {
        let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let r = enumerate_bounded_paths(
            &g,
            &mask,
            NodeId::new(0),
            NodeId::new(3),
            Dist::finite(1),
            100,
        );
        assert_eq!(r.paths.len(), 1); // just the chord
        let r = enumerate_bounded_paths(
            &g,
            &mask,
            NodeId::new(0),
            NodeId::new(3),
            Dist::finite(3),
            100,
        );
        // chord, 0-1-3, 0-2-3, 0-1-3 via... plus 3-hop paths 0-1-3? no:
        // 3-hop simple paths: 0-2-... none reach 3 in exactly 3 without repeat
        // except 0-1-... wait: 0-2-3 uses 2 edges; 3-edge paths: none exist
        // (0-1-3 and 0-2-3 are the only branches). Total: 3.
        assert_eq!(r.paths.len(), 3);
    }

    #[test]
    fn weighted_bound_respected() {
        let g =
            Graph::from_weighted_edges(4, [(0, 1, 5), (1, 3, 5), (0, 2, 1), (2, 3, 1)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let r = enumerate_bounded_paths(
            &g,
            &mask,
            NodeId::new(0),
            NodeId::new(3),
            Dist::finite(2),
            100,
        );
        assert_eq!(r.paths.len(), 1);
        assert_eq!(r.paths[0].dist, Dist::finite(2));
        let r = enumerate_bounded_paths(
            &g,
            &mask,
            NodeId::new(0),
            NodeId::new(3),
            Dist::finite(10),
            100,
        );
        assert_eq!(r.paths.len(), 2);
    }

    #[test]
    fn paths_are_simple_and_consistent() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let r = enumerate_bounded_paths(
            &g,
            &mask,
            NodeId::new(0),
            NodeId::new(4),
            Dist::finite(4),
            1000,
        );
        assert!(!r.truncated);
        for p in &r.paths {
            assert_eq!(*p.nodes.first().unwrap(), NodeId::new(0));
            assert_eq!(*p.nodes.last().unwrap(), NodeId::new(4));
            let mut sorted = p.nodes.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), p.nodes.len(), "simple path");
            let total: Dist = p.edges.iter().map(|e| g.weight(*e).to_dist()).sum();
            assert_eq!(total, p.dist);
            assert!(p.dist <= Dist::finite(4));
        }
    }

    #[test]
    fn truncation_reported() {
        let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3), (0, 3)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let r = enumerate_bounded_paths(
            &g,
            &mask,
            NodeId::new(0),
            NodeId::new(3),
            Dist::finite(3),
            2,
        );
        assert!(r.truncated);
        assert_eq!(r.paths.len(), 2);
    }

    #[test]
    fn mask_excludes_paths() {
        let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        let mut mask = FaultMask::for_graph(&g);
        mask.fault_vertex(NodeId::new(1));
        let r = enumerate_bounded_paths(
            &g,
            &mask,
            NodeId::new(0),
            NodeId::new(3),
            Dist::finite(5),
            100,
        );
        assert_eq!(r.paths.len(), 1);
        assert_eq!(r.paths[0].interior_nodes(), &[NodeId::new(2)]);
    }

    #[test]
    fn unreachable_or_degenerate_cases() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mask = FaultMask::for_graph(&g);
        let r = enumerate_bounded_paths(
            &g,
            &mask,
            NodeId::new(0),
            NodeId::new(3),
            Dist::finite(9),
            100,
        );
        assert!(r.paths.is_empty());
        // u == v yields nothing by contract.
        let r = enumerate_bounded_paths(
            &g,
            &mask,
            NodeId::new(0),
            NodeId::new(0),
            Dist::finite(9),
            100,
        );
        assert!(r.paths.is_empty());
    }
}
