//! Order-independent Zobrist fingerprints of fault sets.
//!
//! The branching oracle's memoization and the serving side's epoch
//! interning both need the same primitive: a cheap, incrementally
//! maintainable identity for "this set of faulted components", built so
//! that inserting and removing a component are O(1) and the result does
//! not depend on insertion order. The scheme is classic Zobrist hashing
//! with two independent combiners:
//!
//! * every component gets a fixed pseudo-random 64-bit hash
//!   ([`component_hash`]: the SplitMix64 finalizer over the component
//!   index, tagged with the [`FaultModel`] so vertex `i` and edge `i`
//!   can never collide);
//! * a set is summarized by the **xor** and the **wrapping sum** of its
//!   members' hashes ([`SetFingerprint`]). Xor alone is weak (any
//!   element twice cancels out); the sum half breaks exactly those
//!   cancellation patterns, giving an effectively 128-bit key.
//!
//! Two distinct sets colliding requires both halves to collide at once;
//! with SplitMix64-quality hashes that is a ~2⁻¹²⁸ event per pair, which
//! is the same trust the construction-side memo has always placed in
//! these keys. Callers that cannot tolerate even that may additionally
//! compare the materialized sets on a key hit.

use crate::FaultModel;

/// The per-element hash both fingerprint halves are built from: the
/// SplitMix64 finalizer over the component index, tagged with the fault
/// model so a vertex id and an equal edge id never share a hash.
#[inline]
pub fn component_hash(model: FaultModel, component: usize) -> u64 {
    let tag = match model {
        FaultModel::Vertex => 0x517C_C1B7_2722_0A95u64,
        FaultModel::Edge => 0x2545_F491_4F6C_DD1Du64,
    };
    let mut z = (component as u64 ^ tag).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An incrementally maintained, order-independent fingerprint of a set
/// of component hashes (see the module docs for the xor + sum scheme).
///
/// [`SetFingerprint::add`] and [`SetFingerprint::remove`] are exact
/// inverses, so a caller can walk a search tree (or an epoch timeline)
/// toggling components and always hold the fingerprint of the *current*
/// set in O(1) per toggle.
///
/// # Examples
///
/// ```
/// use spanner_faults::fingerprint::{component_hash, SetFingerprint};
/// use spanner_faults::FaultModel;
///
/// let mut a = SetFingerprint::EMPTY;
/// a.add(component_hash(FaultModel::Vertex, 3));
/// a.add(component_hash(FaultModel::Vertex, 7));
/// let mut b = SetFingerprint::EMPTY;
/// b.add(component_hash(FaultModel::Vertex, 7));
/// b.add(component_hash(FaultModel::Vertex, 3));
/// assert_eq!(a, b, "order must not matter");
/// b.remove(component_hash(FaultModel::Vertex, 3));
/// b.remove(component_hash(FaultModel::Vertex, 7));
/// assert_eq!(b, SetFingerprint::EMPTY);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SetFingerprint {
    xor: u64,
    sum: u64,
    len: u64,
}

impl SetFingerprint {
    /// The fingerprint of the empty set.
    pub const EMPTY: SetFingerprint = SetFingerprint {
        xor: 0,
        sum: 0,
        len: 0,
    };

    /// Folds one component hash into the set.
    #[inline]
    pub fn add(&mut self, hash: u64) {
        self.xor ^= hash;
        self.sum = self.sum.wrapping_add(hash);
        self.len += 1;
    }

    /// Removes one component hash from the set (the exact inverse of
    /// [`SetFingerprint::add`]; the caller is responsible for only
    /// removing hashes that were added).
    #[inline]
    pub fn remove(&mut self, hash: u64) {
        self.xor ^= hash;
        self.sum = self.sum.wrapping_sub(hash);
        self.len -= 1;
    }

    /// The two 64-bit halves, the map-key form used by memo tables that
    /// key on content only (the length is implied by the sum half for
    /// honest inputs, but [`SetFingerprint::key`] carries it explicitly).
    #[inline]
    pub fn pair(&self) -> (u64, u64) {
        (self.xor, self.sum)
    }

    /// The full interning key: both halves plus the set size.
    #[inline]
    pub fn key(&self) -> (u64, u64, u64) {
        (self.xor, self.sum, self.len)
    }

    /// Number of component hashes currently folded in.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the fingerprint is the empty set's.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tags_separate_vertex_and_edge_hashes() {
        for c in [0usize, 1, 17, 100_000] {
            assert_ne!(
                component_hash(FaultModel::Vertex, c),
                component_hash(FaultModel::Edge, c),
                "component {c}"
            );
        }
    }

    #[test]
    fn add_remove_round_trips_through_any_interleaving() {
        let hashes: Vec<u64> = (0..8)
            .map(|c| component_hash(FaultModel::Vertex, c))
            .collect();
        let mut fp = SetFingerprint::EMPTY;
        // Build {0..8}, remove evens, re-add 0: fingerprint must equal
        // the directly built {odds} ∪ {0}.
        for &h in &hashes {
            fp.add(h);
        }
        for c in [0usize, 2, 4, 6] {
            fp.remove(hashes[c]);
        }
        fp.add(hashes[0]);
        let mut direct = SetFingerprint::EMPTY;
        for c in [1usize, 3, 5, 7, 0] {
            direct.add(hashes[c]);
        }
        assert_eq!(fp, direct);
        assert_eq!(fp.len(), 5);
        assert!(!fp.is_empty());
    }

    #[test]
    fn sum_half_breaks_xor_cancellation() {
        // {a, a, b} and {b} collide on the xor half by construction; the
        // sum half (and the length) must keep them apart.
        let a = component_hash(FaultModel::Vertex, 1);
        let b = component_hash(FaultModel::Vertex, 2);
        let mut twice = SetFingerprint::EMPTY;
        twice.add(a);
        twice.add(a);
        twice.add(b);
        let mut once = SetFingerprint::EMPTY;
        once.add(b);
        assert_eq!(twice.pair().0, once.pair().0, "xor half collides");
        assert_ne!(twice.key(), once.key(), "full key must not");
    }
}
